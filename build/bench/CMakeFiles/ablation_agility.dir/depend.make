# Empty dependencies file for ablation_agility.
# This may be replaced when dependencies are built.
