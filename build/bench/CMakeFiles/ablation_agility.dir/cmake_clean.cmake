file(REMOVE_RECURSE
  "CMakeFiles/ablation_agility.dir/ablation_agility.cpp.o"
  "CMakeFiles/ablation_agility.dir/ablation_agility.cpp.o.d"
  "ablation_agility"
  "ablation_agility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_agility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
