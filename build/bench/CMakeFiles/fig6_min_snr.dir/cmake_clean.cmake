file(REMOVE_RECURSE
  "CMakeFiles/fig6_min_snr.dir/fig6_min_snr.cpp.o"
  "CMakeFiles/fig6_min_snr.dir/fig6_min_snr.cpp.o.d"
  "fig6_min_snr"
  "fig6_min_snr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_min_snr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
