# Empty compiler generated dependencies file for fig6_min_snr.
# This may be replaced when dependencies are built.
