file(REMOVE_RECURSE
  "CMakeFiles/fig4_link_enhancement.dir/fig4_link_enhancement.cpp.o"
  "CMakeFiles/fig4_link_enhancement.dir/fig4_link_enhancement.cpp.o.d"
  "fig4_link_enhancement"
  "fig4_link_enhancement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_link_enhancement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
