# Empty dependencies file for fig4_link_enhancement.
# This may be replaced when dependencies are built.
