# Empty dependencies file for fig5_null_movement.
# This may be replaced when dependencies are built.
