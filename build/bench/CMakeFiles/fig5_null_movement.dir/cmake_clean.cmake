file(REMOVE_RECURSE
  "CMakeFiles/fig5_null_movement.dir/fig5_null_movement.cpp.o"
  "CMakeFiles/fig5_null_movement.dir/fig5_null_movement.cpp.o.d"
  "fig5_null_movement"
  "fig5_null_movement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_null_movement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
