# Empty compiler generated dependencies file for ablation_array_active.
# This may be replaced when dependencies are built.
