file(REMOVE_RECURSE
  "CMakeFiles/ablation_array_active.dir/ablation_array_active.cpp.o"
  "CMakeFiles/ablation_array_active.dir/ablation_array_active.cpp.o.d"
  "ablation_array_active"
  "ablation_array_active.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_array_active.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
