# Empty compiler generated dependencies file for ablation_phase_granularity.
# This may be replaced when dependencies are built.
