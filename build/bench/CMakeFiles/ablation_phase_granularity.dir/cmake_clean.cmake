file(REMOVE_RECURSE
  "CMakeFiles/ablation_phase_granularity.dir/ablation_phase_granularity.cpp.o"
  "CMakeFiles/ablation_phase_granularity.dir/ablation_phase_granularity.cpp.o.d"
  "ablation_phase_granularity"
  "ablation_phase_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_phase_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
