file(REMOVE_RECURSE
  "CMakeFiles/fig7_harmonization.dir/fig7_harmonization.cpp.o"
  "CMakeFiles/fig7_harmonization.dir/fig7_harmonization.cpp.o.d"
  "fig7_harmonization"
  "fig7_harmonization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_harmonization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
