# Empty dependencies file for fig7_harmonization.
# This may be replaced when dependencies are built.
