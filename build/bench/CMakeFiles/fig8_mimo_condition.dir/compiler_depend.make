# Empty compiler generated dependencies file for fig8_mimo_condition.
# This may be replaced when dependencies are built.
