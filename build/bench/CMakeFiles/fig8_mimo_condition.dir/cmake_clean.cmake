file(REMOVE_RECURSE
  "CMakeFiles/fig8_mimo_condition.dir/fig8_mimo_condition.cpp.o"
  "CMakeFiles/fig8_mimo_condition.dir/fig8_mimo_condition.cpp.o.d"
  "fig8_mimo_condition"
  "fig8_mimo_condition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_mimo_condition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
