# Empty compiler generated dependencies file for text_los_limit.
# This may be replaced when dependencies are built.
