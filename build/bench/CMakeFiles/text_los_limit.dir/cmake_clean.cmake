file(REMOVE_RECURSE
  "CMakeFiles/text_los_limit.dir/text_los_limit.cpp.o"
  "CMakeFiles/text_los_limit.dir/text_los_limit.cpp.o.d"
  "text_los_limit"
  "text_los_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_los_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
