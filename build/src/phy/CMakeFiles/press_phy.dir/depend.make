# Empty dependencies file for press_phy.
# This may be replaced when dependencies are built.
