file(REMOVE_RECURSE
  "libpress_phy.a"
)
