
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/chanest.cpp" "src/phy/CMakeFiles/press_phy.dir/chanest.cpp.o" "gcc" "src/phy/CMakeFiles/press_phy.dir/chanest.cpp.o.d"
  "/root/repo/src/phy/frame.cpp" "src/phy/CMakeFiles/press_phy.dir/frame.cpp.o" "gcc" "src/phy/CMakeFiles/press_phy.dir/frame.cpp.o.d"
  "/root/repo/src/phy/mimo.cpp" "src/phy/CMakeFiles/press_phy.dir/mimo.cpp.o" "gcc" "src/phy/CMakeFiles/press_phy.dir/mimo.cpp.o.d"
  "/root/repo/src/phy/modulation.cpp" "src/phy/CMakeFiles/press_phy.dir/modulation.cpp.o" "gcc" "src/phy/CMakeFiles/press_phy.dir/modulation.cpp.o.d"
  "/root/repo/src/phy/ofdm.cpp" "src/phy/CMakeFiles/press_phy.dir/ofdm.cpp.o" "gcc" "src/phy/CMakeFiles/press_phy.dir/ofdm.cpp.o.d"
  "/root/repo/src/phy/preamble.cpp" "src/phy/CMakeFiles/press_phy.dir/preamble.cpp.o" "gcc" "src/phy/CMakeFiles/press_phy.dir/preamble.cpp.o.d"
  "/root/repo/src/phy/rate.cpp" "src/phy/CMakeFiles/press_phy.dir/rate.cpp.o" "gcc" "src/phy/CMakeFiles/press_phy.dir/rate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/press_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
