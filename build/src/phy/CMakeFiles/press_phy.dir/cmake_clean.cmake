file(REMOVE_RECURSE
  "CMakeFiles/press_phy.dir/chanest.cpp.o"
  "CMakeFiles/press_phy.dir/chanest.cpp.o.d"
  "CMakeFiles/press_phy.dir/frame.cpp.o"
  "CMakeFiles/press_phy.dir/frame.cpp.o.d"
  "CMakeFiles/press_phy.dir/mimo.cpp.o"
  "CMakeFiles/press_phy.dir/mimo.cpp.o.d"
  "CMakeFiles/press_phy.dir/modulation.cpp.o"
  "CMakeFiles/press_phy.dir/modulation.cpp.o.d"
  "CMakeFiles/press_phy.dir/ofdm.cpp.o"
  "CMakeFiles/press_phy.dir/ofdm.cpp.o.d"
  "CMakeFiles/press_phy.dir/preamble.cpp.o"
  "CMakeFiles/press_phy.dir/preamble.cpp.o.d"
  "CMakeFiles/press_phy.dir/rate.cpp.o"
  "CMakeFiles/press_phy.dir/rate.cpp.o.d"
  "libpress_phy.a"
  "libpress_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
