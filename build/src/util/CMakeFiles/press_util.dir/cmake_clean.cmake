file(REMOVE_RECURSE
  "CMakeFiles/press_util.dir/cvec.cpp.o"
  "CMakeFiles/press_util.dir/cvec.cpp.o.d"
  "CMakeFiles/press_util.dir/fft.cpp.o"
  "CMakeFiles/press_util.dir/fft.cpp.o.d"
  "CMakeFiles/press_util.dir/matrix.cpp.o"
  "CMakeFiles/press_util.dir/matrix.cpp.o.d"
  "CMakeFiles/press_util.dir/rng.cpp.o"
  "CMakeFiles/press_util.dir/rng.cpp.o.d"
  "CMakeFiles/press_util.dir/stats.cpp.o"
  "CMakeFiles/press_util.dir/stats.cpp.o.d"
  "libpress_util.a"
  "libpress_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
