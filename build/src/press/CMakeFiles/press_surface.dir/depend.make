# Empty dependencies file for press_surface.
# This may be replaced when dependencies are built.
