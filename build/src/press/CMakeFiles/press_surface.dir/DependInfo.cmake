
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/press/array.cpp" "src/press/CMakeFiles/press_surface.dir/array.cpp.o" "gcc" "src/press/CMakeFiles/press_surface.dir/array.cpp.o.d"
  "/root/repo/src/press/config.cpp" "src/press/CMakeFiles/press_surface.dir/config.cpp.o" "gcc" "src/press/CMakeFiles/press_surface.dir/config.cpp.o.d"
  "/root/repo/src/press/element.cpp" "src/press/CMakeFiles/press_surface.dir/element.cpp.o" "gcc" "src/press/CMakeFiles/press_surface.dir/element.cpp.o.d"
  "/root/repo/src/press/load.cpp" "src/press/CMakeFiles/press_surface.dir/load.cpp.o" "gcc" "src/press/CMakeFiles/press_surface.dir/load.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/em/CMakeFiles/press_em.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/press_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
