file(REMOVE_RECURSE
  "libpress_surface.a"
)
