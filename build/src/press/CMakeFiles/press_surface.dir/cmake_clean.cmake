file(REMOVE_RECURSE
  "CMakeFiles/press_surface.dir/array.cpp.o"
  "CMakeFiles/press_surface.dir/array.cpp.o.d"
  "CMakeFiles/press_surface.dir/config.cpp.o"
  "CMakeFiles/press_surface.dir/config.cpp.o.d"
  "CMakeFiles/press_surface.dir/element.cpp.o"
  "CMakeFiles/press_surface.dir/element.cpp.o.d"
  "CMakeFiles/press_surface.dir/load.cpp.o"
  "CMakeFiles/press_surface.dir/load.cpp.o.d"
  "libpress_surface.a"
  "libpress_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
