file(REMOVE_RECURSE
  "CMakeFiles/press_em.dir/antenna.cpp.o"
  "CMakeFiles/press_em.dir/antenna.cpp.o.d"
  "CMakeFiles/press_em.dir/channel.cpp.o"
  "CMakeFiles/press_em.dir/channel.cpp.o.d"
  "CMakeFiles/press_em.dir/environment.cpp.o"
  "CMakeFiles/press_em.dir/environment.cpp.o.d"
  "CMakeFiles/press_em.dir/geometry.cpp.o"
  "CMakeFiles/press_em.dir/geometry.cpp.o.d"
  "CMakeFiles/press_em.dir/room.cpp.o"
  "CMakeFiles/press_em.dir/room.cpp.o.d"
  "CMakeFiles/press_em.dir/statistical.cpp.o"
  "CMakeFiles/press_em.dir/statistical.cpp.o.d"
  "libpress_em.a"
  "libpress_em.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
