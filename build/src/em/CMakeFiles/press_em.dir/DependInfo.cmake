
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/em/antenna.cpp" "src/em/CMakeFiles/press_em.dir/antenna.cpp.o" "gcc" "src/em/CMakeFiles/press_em.dir/antenna.cpp.o.d"
  "/root/repo/src/em/channel.cpp" "src/em/CMakeFiles/press_em.dir/channel.cpp.o" "gcc" "src/em/CMakeFiles/press_em.dir/channel.cpp.o.d"
  "/root/repo/src/em/environment.cpp" "src/em/CMakeFiles/press_em.dir/environment.cpp.o" "gcc" "src/em/CMakeFiles/press_em.dir/environment.cpp.o.d"
  "/root/repo/src/em/geometry.cpp" "src/em/CMakeFiles/press_em.dir/geometry.cpp.o" "gcc" "src/em/CMakeFiles/press_em.dir/geometry.cpp.o.d"
  "/root/repo/src/em/room.cpp" "src/em/CMakeFiles/press_em.dir/room.cpp.o" "gcc" "src/em/CMakeFiles/press_em.dir/room.cpp.o.d"
  "/root/repo/src/em/statistical.cpp" "src/em/CMakeFiles/press_em.dir/statistical.cpp.o" "gcc" "src/em/CMakeFiles/press_em.dir/statistical.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/press_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
