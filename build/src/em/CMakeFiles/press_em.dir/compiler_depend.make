# Empty compiler generated dependencies file for press_em.
# This may be replaced when dependencies are built.
