file(REMOVE_RECURSE
  "libpress_em.a"
)
