file(REMOVE_RECURSE
  "libpress_sdr.a"
)
