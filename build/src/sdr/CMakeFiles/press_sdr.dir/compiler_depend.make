# Empty compiler generated dependencies file for press_sdr.
# This may be replaced when dependencies are built.
