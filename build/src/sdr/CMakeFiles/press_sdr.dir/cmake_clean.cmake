file(REMOVE_RECURSE
  "CMakeFiles/press_sdr.dir/medium.cpp.o"
  "CMakeFiles/press_sdr.dir/medium.cpp.o.d"
  "CMakeFiles/press_sdr.dir/profile.cpp.o"
  "CMakeFiles/press_sdr.dir/profile.cpp.o.d"
  "CMakeFiles/press_sdr.dir/timedomain.cpp.o"
  "CMakeFiles/press_sdr.dir/timedomain.cpp.o.d"
  "libpress_sdr.a"
  "libpress_sdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_sdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
