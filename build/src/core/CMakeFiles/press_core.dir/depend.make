# Empty dependencies file for press_core.
# This may be replaced when dependencies are built.
