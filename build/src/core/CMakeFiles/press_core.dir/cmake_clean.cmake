file(REMOVE_RECURSE
  "CMakeFiles/press_core.dir/experiments.cpp.o"
  "CMakeFiles/press_core.dir/experiments.cpp.o.d"
  "CMakeFiles/press_core.dir/report.cpp.o"
  "CMakeFiles/press_core.dir/report.cpp.o.d"
  "CMakeFiles/press_core.dir/scenarios.cpp.o"
  "CMakeFiles/press_core.dir/scenarios.cpp.o.d"
  "CMakeFiles/press_core.dir/system.cpp.o"
  "CMakeFiles/press_core.dir/system.cpp.o.d"
  "libpress_core.a"
  "libpress_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
