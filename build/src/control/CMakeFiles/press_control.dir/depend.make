# Empty dependencies file for press_control.
# This may be replaced when dependencies are built.
