file(REMOVE_RECURSE
  "CMakeFiles/press_control.dir/controller.cpp.o"
  "CMakeFiles/press_control.dir/controller.cpp.o.d"
  "CMakeFiles/press_control.dir/message.cpp.o"
  "CMakeFiles/press_control.dir/message.cpp.o.d"
  "CMakeFiles/press_control.dir/objective.cpp.o"
  "CMakeFiles/press_control.dir/objective.cpp.o.d"
  "CMakeFiles/press_control.dir/plane.cpp.o"
  "CMakeFiles/press_control.dir/plane.cpp.o.d"
  "CMakeFiles/press_control.dir/scheduler.cpp.o"
  "CMakeFiles/press_control.dir/scheduler.cpp.o.d"
  "CMakeFiles/press_control.dir/search.cpp.o"
  "CMakeFiles/press_control.dir/search.cpp.o.d"
  "CMakeFiles/press_control.dir/transport.cpp.o"
  "CMakeFiles/press_control.dir/transport.cpp.o.d"
  "CMakeFiles/press_control.dir/wire.cpp.o"
  "CMakeFiles/press_control.dir/wire.cpp.o.d"
  "libpress_control.a"
  "libpress_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
