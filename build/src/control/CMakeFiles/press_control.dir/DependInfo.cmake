
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/controller.cpp" "src/control/CMakeFiles/press_control.dir/controller.cpp.o" "gcc" "src/control/CMakeFiles/press_control.dir/controller.cpp.o.d"
  "/root/repo/src/control/message.cpp" "src/control/CMakeFiles/press_control.dir/message.cpp.o" "gcc" "src/control/CMakeFiles/press_control.dir/message.cpp.o.d"
  "/root/repo/src/control/objective.cpp" "src/control/CMakeFiles/press_control.dir/objective.cpp.o" "gcc" "src/control/CMakeFiles/press_control.dir/objective.cpp.o.d"
  "/root/repo/src/control/plane.cpp" "src/control/CMakeFiles/press_control.dir/plane.cpp.o" "gcc" "src/control/CMakeFiles/press_control.dir/plane.cpp.o.d"
  "/root/repo/src/control/scheduler.cpp" "src/control/CMakeFiles/press_control.dir/scheduler.cpp.o" "gcc" "src/control/CMakeFiles/press_control.dir/scheduler.cpp.o.d"
  "/root/repo/src/control/search.cpp" "src/control/CMakeFiles/press_control.dir/search.cpp.o" "gcc" "src/control/CMakeFiles/press_control.dir/search.cpp.o.d"
  "/root/repo/src/control/transport.cpp" "src/control/CMakeFiles/press_control.dir/transport.cpp.o" "gcc" "src/control/CMakeFiles/press_control.dir/transport.cpp.o.d"
  "/root/repo/src/control/wire.cpp" "src/control/CMakeFiles/press_control.dir/wire.cpp.o" "gcc" "src/control/CMakeFiles/press_control.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/press_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/press/CMakeFiles/press_surface.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/press_em.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/press_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
