file(REMOVE_RECURSE
  "libpress_control.a"
)
