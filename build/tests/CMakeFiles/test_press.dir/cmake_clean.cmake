file(REMOVE_RECURSE
  "CMakeFiles/test_press.dir/test_press.cpp.o"
  "CMakeFiles/test_press.dir/test_press.cpp.o.d"
  "test_press"
  "test_press.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_press.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
