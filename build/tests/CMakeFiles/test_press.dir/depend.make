# Empty dependencies file for test_press.
# This may be replaced when dependencies are built.
