# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_util "/root/repo/build/tests/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;press_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_em "/root/repo/build/tests/test_em")
set_tests_properties(test_em PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;press_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_press "/root/repo/build/tests/test_press")
set_tests_properties(test_press PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;press_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_phy "/root/repo/build/tests/test_phy")
set_tests_properties(test_phy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;press_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sdr "/root/repo/build/tests/test_sdr")
set_tests_properties(test_sdr PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;press_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_control "/root/repo/build/tests/test_control")
set_tests_properties(test_control PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;press_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;press_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_transport "/root/repo/build/tests/test_transport")
set_tests_properties(test_transport PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;press_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_scheduler "/root/repo/build/tests/test_scheduler")
set_tests_properties(test_scheduler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;press_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;press_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;press_test;/root/repo/tests/CMakeLists.txt;0;")
