file(REMOVE_RECURSE
  "CMakeFiles/probe2.dir/probe2.cpp.o"
  "CMakeFiles/probe2.dir/probe2.cpp.o.d"
  "probe2"
  "probe2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
