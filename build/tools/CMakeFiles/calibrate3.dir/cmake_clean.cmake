file(REMOVE_RECURSE
  "CMakeFiles/calibrate3.dir/calibrate3.cpp.o"
  "CMakeFiles/calibrate3.dir/calibrate3.cpp.o.d"
  "calibrate3"
  "calibrate3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
