
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/pickplacement.cpp" "tools/CMakeFiles/pickplacement.dir/pickplacement.cpp.o" "gcc" "tools/CMakeFiles/pickplacement.dir/pickplacement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/press_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sdr/CMakeFiles/press_sdr.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/press_control.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/press_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/press/CMakeFiles/press_surface.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/press_em.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/press_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
