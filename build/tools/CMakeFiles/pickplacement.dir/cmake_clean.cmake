file(REMOVE_RECURSE
  "CMakeFiles/pickplacement.dir/pickplacement.cpp.o"
  "CMakeFiles/pickplacement.dir/pickplacement.cpp.o.d"
  "pickplacement"
  "pickplacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pickplacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
