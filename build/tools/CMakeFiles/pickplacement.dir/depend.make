# Empty dependencies file for pickplacement.
# This may be replaced when dependencies are built.
