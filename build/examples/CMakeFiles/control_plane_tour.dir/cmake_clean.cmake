file(REMOVE_RECURSE
  "CMakeFiles/control_plane_tour.dir/control_plane_tour.cpp.o"
  "CMakeFiles/control_plane_tour.dir/control_plane_tour.cpp.o.d"
  "control_plane_tour"
  "control_plane_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_plane_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
