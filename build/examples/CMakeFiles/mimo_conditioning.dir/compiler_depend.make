# Empty compiler generated dependencies file for mimo_conditioning.
# This may be replaced when dependencies are built.
