file(REMOVE_RECURSE
  "CMakeFiles/mimo_conditioning.dir/mimo_conditioning.cpp.o"
  "CMakeFiles/mimo_conditioning.dir/mimo_conditioning.cpp.o.d"
  "mimo_conditioning"
  "mimo_conditioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimo_conditioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
