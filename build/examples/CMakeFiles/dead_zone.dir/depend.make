# Empty dependencies file for dead_zone.
# This may be replaced when dependencies are built.
