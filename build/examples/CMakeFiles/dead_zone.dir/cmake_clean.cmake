file(REMOVE_RECURSE
  "CMakeFiles/dead_zone.dir/dead_zone.cpp.o"
  "CMakeFiles/dead_zone.dir/dead_zone.cpp.o.d"
  "dead_zone"
  "dead_zone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dead_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
