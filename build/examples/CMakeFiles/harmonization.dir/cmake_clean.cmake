file(REMOVE_RECURSE
  "CMakeFiles/harmonization.dir/harmonization.cpp.o"
  "CMakeFiles/harmonization.dir/harmonization.cpp.o.d"
  "harmonization"
  "harmonization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmonization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
