# Empty dependencies file for harmonization.
# This may be replaced when dependencies are built.
