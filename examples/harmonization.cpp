// Network harmonization at building scale: the paper's Figure-2 vision
// grown to a multi-user scene.
//
// Four APs each serve eight clients — 32 links — through one shared
// 16-element field. A single configuration must serve everyone at once,
// so "best" stops being a number and becomes a policy choice. This
// example runs the same scene under the two canonical composite
// objectives (control::MultiLinkProblem, scored through the shared
// multi-link basis of System::optimize_multilink) and prints the
// Pareto-style trade between them:
//
//   weighted-sum  maximize the aggregate mean SNR: highest total
//                 capacity, free to starve a straggler link.
//   max-min       maximize the worst link's mean SNR: harmonization /
//                 fairness, pays aggregate for the tail.
//
// docs/OBJECTIVES.md documents the combinator algebra; EXPERIMENTS.md
// cross-links the fig-harmonization bench scene that tracks this path.
#include <algorithm>
#include <iostream>
#include <vector>

#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/search.hpp"
#include "core/report.hpp"
#include "core/scenarios.hpp"
#include "util/stats.hpp"

namespace {

/// Per-link mean SNR (dB) under the currently applied configuration.
std::vector<double> link_means(press::core::System& system,
                               press::util::Rng& rng) {
    const press::control::Observation obs = system.observe(rng);
    std::vector<double> means;
    means.reserve(obs.link_snr_db.size());
    for (const std::vector<double>& snr : obs.link_snr_db)
        means.push_back(press::util::mean(snr));
    return means;
}

double aggregate(const std::vector<double>& means) {
    return press::util::mean(means);
}

double worst(const std::vector<double>& means) {
    return press::util::min_value(means);
}

}  // namespace

int main() {
    using namespace press;

    core::MultiLinkScenario scenario = core::make_multi_link_scenario(302);
    const std::size_t n = scenario.num_links;
    std::cout << scenario.num_aps << " APs x " << scenario.clients_per_ap
              << " clients = " << n << " links over one "
              << scenario.system.medium()
                     .array(scenario.array_id)
                     .size()
              << "-element field\n\n";

    // Both policies get the same simulated coherence-time budget, priced
    // for a 32-link sounding cycle.
    const control::ControlPlaneModel plane = control::ControlPlaneModel::fast();
    control::SetConfig probe;
    probe.config.assign(
        scenario.system.medium().array(scenario.array_id).size(), 0);
    const double budget_s =
        256.0 * plane.config_trial_time_s(
                    probe, n, scenario.system.medium().ofdm().num_used());

    // Both presets expand to a control::MultiLinkProblem — the fluent
    // builder (serve/qos_floor/null + weighted_sum/max_min) composes the
    // same terms by hand when a scene needs mixed policies.
    const auto sum_objective = control::make_sum_mean_objective(n);
    const auto maxmin_objective = control::make_max_min_objective(n);

    std::vector<std::vector<std::string>> rows;
    const auto run_policy = [&](const char* name,
                                const control::Objective* objective) {
        core::MultiLinkScenario fresh = core::make_multi_link_scenario(302);
        util::Rng rng(5);
        std::size_t evals = 0;
        if (objective != nullptr) {
            const auto outcome = fresh.system.optimize_multilink(
                fresh.array_id, *objective,
                control::GreedyCoordinateDescent(), plane, budget_s, rng);
            evals = outcome.search.evaluations;
        }
        std::vector<double> means = link_means(fresh.system, rng);
        std::vector<double> sorted = means;
        std::sort(sorted.begin(), sorted.end());
        rows.push_back({name, core::fmt(aggregate(means), 1),
                        core::fmt(worst(means), 1),
                        core::sparkline(sorted),
                        std::to_string(evals)});
    };
    run_policy("baseline (all elements state 0)", nullptr);
    run_policy("weighted sum (aggregate capacity)", sum_objective.get());
    run_policy("max-min (harmonization/fairness)", maxmin_objective.get());

    core::print_table(std::cout,
                      {"policy", "aggregate mean (dB)", "worst link (dB)",
                       "links sorted worst->best", "trials"},
                      rows);
    std::cout << "\nThe Pareto trade in one table: the weighted sum buys "
                 "aggregate capacity,\nmax-min lifts the worst link. Both "
                 "score all " << n
              << " links per candidate through\nthe shared basis — one "
                 "row selection per AP, not per link "
                 "(docs/OBJECTIVES.md).\n";
    return 0;
}
