// Network harmonization: the paper's Figure-2 vision, end to end.
//
// Two co-located networks (AP1 -> client1, AP2 -> client2) share a band.
// The controller reshapes the environment so each network's communication
// channel is strongest in its own half of the spectrum while the
// cross-network interference channels are suppressed there — frequency
// partitioning done by the walls, not the transmitters.
#include <iostream>

#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/search.hpp"
#include "core/report.hpp"
#include "core/scenarios.hpp"
#include "util/stats.hpp"

namespace {

double band_mean(const std::vector<double>& snr, bool low_half) {
    const std::size_t half = snr.size() / 2;
    std::vector<double> band(low_half ? snr.begin() : snr.begin() + half,
                             low_half ? snr.begin() + half : snr.end());
    return press::util::mean(band);
}

}  // namespace

int main() {
    using namespace press;

    core::HarmonizationScenario scenario =
        core::make_harmonization_scenario(302);
    const std::size_t n_sc = scenario.system.medium().ofdm().num_used();

    util::Rng rng(5);
    const control::Observation before = scenario.system.observe(rng);

    const auto objective =
        control::make_harmonization_objective(n_sc, true);
    const auto outcome = scenario.system.optimize(
        scenario.array_id, *objective, control::SimulatedAnnealingSearcher(),
        control::ControlPlaneModel::fast(), 80e-3, rng);
    const control::Observation after = scenario.system.observe(rng);

    std::cout << "Two networks, one band: PRESS assigns the LOW half to "
                 "network A and the HIGH half to network B.\n\n";
    const char* names[] = {"A: AP1->client1", "B: AP2->client2",
                           "X: AP1->client2 (interference)",
                           "X: AP2->client1 (interference)"};
    const bool own_low[] = {true, false, false, true};
    std::vector<std::vector<std::string>> rows;
    for (std::size_t l = 0; l < 4; ++l) {
        rows.push_back(
            {names[l],
             core::fmt(band_mean(before.link_snr_db[l], own_low[l]), 1),
             core::fmt(band_mean(after.link_snr_db[l], own_low[l]), 1),
             core::sparkline(after.link_snr_db[l])});
    }
    core::print_table(std::cout,
                      {"channel", "scored band before (dB)",
                       "after (dB)", "profile after"},
                      rows);
    std::cout << "\nharmonization score " << core::fmt(
                     objective->score(before), 1)
              << " -> " << core::fmt(outcome.search.best_score, 1) << " in "
              << outcome.search.evaluations << " trials\n";
    return 0;
}
