// Observability tour: run a search with telemetry on, then inspect what
// the instrumentation recorded — counters, gauges, convergence series,
// trace spans — and export the whole run as a press.telemetry/v1 document.
//
//   $ ./build/examples/observability_tour
//
// The tour covers the three layers of src/obs:
//   1. MetricsRegistry — named counters/gauges/histograms/series that the
//      instrumented hot paths (em tracer, link cache, batch evaluator,
//      searchers, transport, health monitor) report into,
//   2. TraceSpan      — RAII scoped timers priced on wall clock and, where
//      a SimClock is attached, on simulated control-plane time,
//   3. export         — RunManifest + JSON/table rendering, the same
//      document benches emit and CI validates against docs/TELEMETRY.md.
#include <iostream>

#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/search.hpp"
#include "core/scenarios.hpp"
#include "core/system.hpp"
#include "obs/export.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

int main() {
    using namespace press;

    // --- 1. Turn collection on (PRESS_TELEMETRY=0 would disable it). ---
    obs::set_enabled(true);
    constexpr std::uint64_t kSeed = 100;

    // --- 2. Do real work: a fault probe and two budgeted searches. ---
    core::LinkScenario scenario =
        core::make_link_scenario(kSeed, /*line_of_sight=*/false);
    core::System& system = scenario.system;
    util::Rng rng(42);

    const control::ControlPlaneModel plane =
        control::ControlPlaneModel::fast();
    const fault::HealthReport health =
        system.probe_health(scenario.array_id, plane, rng, {});
    std::cout << "health probe: " << health.probes << " probes, "
              << health.num_suspect() << " suspect elements\n";

    const control::MinSnrObjective objective(0);
    const control::GreedyCoordinateDescent searcher;
    const auto serial = system.optimize(scenario.array_id, objective,
                                        searcher, plane, 0.1, rng);
    const auto fast = system.optimize_fast(scenario.array_id, objective,
                                           searcher, plane, 0.5, rng);
    std::cout << "serial search: " << serial.search.evaluations
              << " trials, best " << serial.search.best_score << " dB\n"
              << "batched search: " << fast.search.evaluations
              << " trials, best " << fast.search.best_score << " dB\n\n";

    // --- 3. Ad-hoc inspection: read single metrics straight off the
    //        registry (handles are stable; updates are atomic). ---
    auto& registry = obs::MetricsRegistry::global();
    std::cout << "em.environment.traces      = "
              << registry.counter("em.environment.traces").value() << "\n"
              << "core.link_cache.hits       = "
              << registry.counter("core.link_cache.hits").value() << "\n"
              << "core.link_cache.misses     = "
              << registry.counter("core.link_cache.misses").value() << "\n"
              << "control.batch.evaluations  = "
              << registry.counter("control.batch.evaluations").value()
              << "\n\n";

    // --- 4. The full document: manifest + metrics + spans. The same
    //        call path the benches use; validate_telemetry() is the
    //        schema gate CI runs on every export. ---
    const obs::RunManifest manifest =
        obs::RunManifest::capture("observability_tour", kSeed);
    const obs::Json telemetry = obs::build_telemetry(manifest);
    const std::string violation = obs::validate_telemetry(telemetry);
    std::cout << "schema check: "
              << (violation.empty() ? "ok" : violation) << "\n\n";

    // --- 5. Human-readable rendering of the same document. ---
    std::cout << obs::render_table(telemetry);

    // Exports normally go through obs::write_telemetry(name, manifest),
    // which lands telemetry_<name>.json in PRESS_TELEMETRY's directory
    // (or the working directory); see docs/TELEMETRY.md for the schema.
    return violation.empty() ? 0 : 1;
}
