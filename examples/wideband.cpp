// Wideband Wi-Fi 6E tour: optimize a 996-tone 160 MHz link per-RU —
// the regime where per-eval cost is set by the subcarrier axis, not the
// element count.
//
//   $ ./build/examples/wideband
//
// At 52 tones the factored-cache evaluation is row-gather bound; at 996
// (Wi-Fi 6E 160 MHz) and 1960 (Wi-Fi 7 320 MHz) used tones the tone
// axis dominates every kernel. This example shows the wideband
// machinery (DESIGN.md §15):
//
//   - phy::OfdmParams::wifi6e_160 builds the 2048-point 6 GHz
//     numerology and core::make_wideband_scenario the scene around it,
//   - phy::RuMask partitions the used tones into RUs and punctures the
//     incumbent-occupied ones (preamble puncturing),
//   - control::MaskedSnrObjective scores only the active tones, and
//     System::optimize_fast bounds the basis accumulation and the
//     sounding to the subcarrier tiles the mask intersects.
#include <cstdio>

#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/search.hpp"
#include "core/link_cache.hpp"
#include "core/scenarios.hpp"
#include "core/system.hpp"
#include "util/rng.hpp"

int main() {
    using namespace press;

    core::WidebandScenario scenario =
        core::make_wideband_scenario(/*seed=*/8101);
    const sdr::Medium& medium = scenario.system.medium();
    const std::size_t num_used = medium.ofdm().num_used();
    std::printf("scene: %zu used tones at %.3f GHz, %zu-element panel\n",
                num_used, medium.ofdm().carrier_hz() / 1e9,
                medium.array(scenario.array_id).size());
    std::printf("mask: %zu RUs, %zu of %zu tones active\n",
                scenario.mask.num_ru(), scenario.mask.num_active(),
                scenario.mask.num_used());

    // The factored basis the searches run on: at 996 tones the rows are
    // wide enough that the blocked tiles — not the row count — set the
    // footprint and the per-candidate cost.
    core::LinkCache cache;
    cache.warm(medium, scenario.link_id,
               scenario.system.link(scenario.link_id));
    const core::LinkCache::BasisLayout layout =
        cache.basis_layout(scenario.link_id, scenario.array_id);
    std::printf("basis: %zu rows x %zu-wide [re|im] blocks = %.1f MiB\n",
                layout.rows, layout.row_stride,
                static_cast<double>(layout.bytes) / (1024.0 * 1024.0));

    const control::ControlPlaneModel plane =
        control::ControlPlaneModel::fast();
    control::SetConfig probe;
    probe.config.assign(medium.array(scenario.array_id).size(), 0);
    const double trial_s = plane.config_trial_time_s(
        probe, /*num_links=*/1, num_used);

    // Masked objective: min SNR over the active tones only. The fused
    // path touches only the basis tiles the mask intersects.
    const control::MaskedSnrObjective masked(
        scenario.mask, control::FusedSpec::Kind::kMinSnr,
        scenario.link_id);
    // Unmasked twin for comparison: same reduction over all tones.
    const control::MinSnrObjective full(scenario.link_id);

    const auto run = [&](const control::Objective& objective,
                         const char* label) {
        util::Rng rng(2024);
        const auto outcome = scenario.system.optimize_fast(
            scenario.array_id, objective, control::GreedyCoordinateDescent(),
            plane, 2048.0 * trial_s, rng);
        std::printf(
            "%-12s %5zu evals -> min-SNR %6.2f dB  (%.2f s wall)\n", label,
            outcome.search.evaluations,
            outcome.search.best_score_remeasured, outcome.search.compute_s);
    };

    run(masked, "masked");
    run(full, "full-band");
    return 0;
}
