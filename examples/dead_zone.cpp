// Dead-zone elimination: the paper's first motivating application.
//
// A client walks through a room; behind an obstruction its link falls into
// a multipath "dead zone" (deep frequency nulls, low MCS). For each client
// position this example compares the do-nothing channel against a
// PRESS-optimized one and prints the recovered data rate — the environment
// adapts to the user instead of the user hunting for a better spot.
#include <iostream>

#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/search.hpp"
#include "core/report.hpp"
#include "core/scenarios.hpp"
#include "phy/rate.hpp"
#include "util/stats.hpp"

int main() {
    using namespace press;

    std::cout << "Dead-zone walk: client moves behind the screen; PRESS "
                 "re-optimizes per position.\n\n";

    std::vector<std::vector<std::string>> rows;
    for (int step = 0; step < 6; ++step) {
        // Rebuild the scenario so each position starts from the same
        // passive environment (seeded; see core/scenarios.hpp).
        core::LinkScenario scenario = core::make_link_scenario(100, false);
        // IoT-class transmit power: the rate ladder reacts to the nulls.
        scenario.system.link(scenario.link_id).profile.tx_power_dbm = -26.0;
        // Move the client along the far side of the blocker.
        em::RadiatingEndpoint& rx =
            scenario.system.link(scenario.link_id).rx;
        rx.position.y += 0.4 * (step - 2.5);

        util::Rng rng(300 + step);
        scenario.system.apply(scenario.array_id, {3, 3, 3});  // array off
        const auto before =
            scenario.system.measured_snr_db(scenario.link_id, rng);

        const control::ThroughputObjective objective(0);
        scenario.system.optimize(
            scenario.array_id, objective, control::ExhaustiveSearcher(),
            control::ControlPlaneModel::fast(), 80e-3, rng);
        const auto after =
            scenario.system.measured_snr_db(scenario.link_id, rng);

        const double rate_before = phy::expected_throughput_mbps(before);
        const double rate_after = phy::expected_throughput_mbps(after);
        rows.push_back(
            {core::fmt(rx.position.y, 2),
             core::fmt(util::min_value(before), 1) + " / " +
                 core::fmt(util::min_value(after), 1),
             core::fmt(rate_before, 0) + " -> " +
                 core::fmt(rate_after, 0),
             core::sparkline(after)});
    }
    core::print_table(std::cout,
                      {"client y (m)", "min SNR off/on (dB)",
                       "rate (Mb/s)", "optimized profile"},
                      rows);
    std::cout << "\nEvery position gets its own wall configuration; the "
                 "dead zone disappears without touching the endpoints.\n";
    return 0;
}
