// Fault tolerance: break a few wall elements, watch the naive controller
// degrade, then detect the damage and search around it.
//
//   $ ./build/examples/fault_tolerance
//
// The walk: build the exploratory-study room with an 8-element wall,
// inject a fault model (stuck switch, dead element, flaky actuation),
// optimize once while trusting every element, then run the health-probe
// sweep, freeze the suspects, and optimize again over the healthy
// dimensions only. Scores are the noise-free ground truth, so the gap
// between what the controller believes and what the hardware did is
// visible.
#include <iostream>

#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/search.hpp"
#include "core/report.hpp"
#include "core/scenarios.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"

int main() {
    using namespace press;

    core::StudyParams params;
    params.num_elements = 8;
    const std::uint64_t seed = 312;

    const control::MinSnrObjective objective(0);
    const control::GreedyCoordinateDescent searcher;
    const auto plane = control::ControlPlaneModel::fast();
    const double budget_s = 0.06;

    // --- 1. A healthy wall, as a reference. ---
    {
        core::LinkScenario healthy =
            core::make_link_scenario(seed, /*line_of_sight=*/false, params);
        healthy.system.set_sounding_repeats(24);
        util::Rng rng(42);
        (void)healthy.system.optimize(healthy.array_id, objective, searcher,
                                      plane, budget_s, rng);
        std::cout << "healthy wall        true min-SNR "
                  << core::fmt(objective.score(
                         healthy.system.observe_true()), 2)
                  << " dB\n";
    }

    // --- 2. Break three of the eight elements. ---
    core::LinkScenario scenario =
        core::make_link_scenario(seed, /*line_of_sight=*/false, params);
    scenario.system.set_sounding_repeats(24);
    fault::FaultModel model(util::Rng(9));
    model.add({1, fault::FaultType::kStuckAt, 2, 0.0, 0.0});
    model.add({4, fault::FaultType::kDead, 0, 0.0, 0.0});
    model.add({6, fault::FaultType::kFlaky, 0, 0.0, 0.6});
    scenario.system.inject_faults(scenario.array_id, std::move(model));

    // --- 3. Optimize while trusting every element. ---
    {
        util::Rng rng(42);
        const auto outcome = scenario.system.optimize(
            scenario.array_id, objective, searcher, plane, budget_s, rng);
        std::cout << "faulty, no monitor  true min-SNR "
                  << core::fmt(objective.score(
                         scenario.system.observe_true()), 2)
                  << " dB   (" << outcome.search.evaluations
                  << " trials, believed score "
                  << core::fmt(outcome.search.best_score, 2) << " dB)\n";
    }

    // --- 4. Probe, freeze the suspects, search the rest. ---
    // A maintenance probe can average far more soundings than a live
    // search trial, pushing estimator noise well below the response
    // threshold.
    util::Rng rng(43);
    fault::ProbeOptions options;
    options.response_threshold_db = 0.25;
    scenario.system.set_sounding_repeats(96);
    const fault::HealthReport report = scenario.system.probe_health(
        scenario.array_id, plane, rng, options);
    scenario.system.set_sounding_repeats(24);
    std::cout << "health probe        flagged elements { ";
    for (std::size_t e : report.suspect_elements()) std::cout << e << " ";
    std::cout << "} in " << core::fmt(report.elapsed_s * 1e3, 0)
              << " ms of maintenance window (" << report.probes
              << " probes)\n";

    const auto outcome = scenario.system.optimize_degraded(
        scenario.array_id, objective, searcher, plane, budget_s, report,
        rng);
    std::cout << "faulty, monitored   true min-SNR "
              << core::fmt(objective.score(
                     scenario.system.observe_true()), 2)
              << " dB   (" << outcome.search.evaluations
              << " trials over the healthy dimensions)\n";
    return 0;
}
