// Large-MIMO conditioning: the paper's third application.
//
// A 2x2 MIMO link in non-line-of-sight suffers a poorly conditioned
// channel matrix on some subcarriers. This example sweeps the PRESS
// configurations, compares the best and worst by condition number, and
// translates the difference into spatial-multiplexing capacity — "restoring
// performance without additional AP processing complexity".
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "phy/mimo.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

int main() {
    using namespace press;

    core::MimoScenario scenario = core::make_mimo_scenario(500);
    util::Rng rng(9);

    std::cout << "Sweeping 64 PRESS configurations over a 2x2 NLoS "
                 "channel (50 measurements each)...\n\n";
    const core::MimoSweep sweep = core::sweep_mimo(scenario, 50, rng);

    std::vector<std::vector<std::string>> rows;
    for (std::size_t c : {sweep.best_config, sweep.worst_config}) {
        const auto& cond = sweep.condition_db[c];
        rows.push_back(
            {c == sweep.best_config ? "best" : "worst",
             sweep.config_labels[c],
             core::fmt(util::median(cond), 2),
             core::fmt(util::percentile(cond, 90.0), 2),
             core::sparkline(cond)});
    }
    core::print_table(std::cout,
                      {"setting", "config", "median cond (dB)",
                       "p90 (dB)", "per-subcarrier"},
                      rows);

    // Capacity view at a nominal operating SNR.
    surface::Array& array = scenario.medium.array(scenario.array_id);
    const auto space = array.config_space();
    const double snr = util::db_to_linear(20.0);
    array.apply(space.at(sweep.best_config));
    const auto best = scenario.medium.sound_mimo(
        scenario.tx_antennas, scenario.rx_antennas, scenario.profile, 50,
        rng);
    array.apply(space.at(sweep.worst_config));
    const auto worst = scenario.medium.sound_mimo(
        scenario.tx_antennas, scenario.rx_antennas, scenario.profile, 50,
        rng);
    std::cout << "\n2x2 capacity at 20 dB SNR: "
              << core::fmt(phy::mean_capacity_bps_hz(worst, snr), 2)
              << " b/s/Hz (worst config) -> "
              << core::fmt(phy::mean_capacity_bps_hz(best, snr), 2)
              << " b/s/Hz (best config), condition-number gap "
              << core::fmt(sweep.median_gap_db, 2) << " dB\n";
    return 0;
}
