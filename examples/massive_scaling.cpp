// Massive-element scaling tour: optimize a 1,024-element wall panel —
// the RFocus regime (arXiv:1905.05130) scaled into the study room —
// end to end in seconds.
//
//   $ ./build/examples/massive_scaling
//
// At three elements the paper's prototype could sweep its whole config
// space; at 1,024 two-state elements the space holds 2^1024 points and
// even one greedy coordinate sweep costs n evaluations. This example
// shows the machinery that keeps the regime tractable:
//
//   - core::make_massive_scenario builds the panel scene,
//   - core::LinkCache folds the per-element responses into a blocked
//     SoA basis (one contiguous [re | im] row per element state),
//   - System::optimize_fast drives the sharded BatchEvaluator, and
//   - control::MajorityVoteSearcher extracts one bit of information per
//     element from every batch of random probes, so its budget is set by
//     the probe count per round, not by n.
#include <cstdio>

#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/search.hpp"
#include "core/link_cache.hpp"
#include "core/scenarios.hpp"
#include "core/system.hpp"
#include "util/rng.hpp"

int main() {
    using namespace press;

    constexpr std::size_t kElements = 1024;
    core::LinkScenario scenario = core::make_massive_scenario(
        kElements, /*seed=*/7001);
    const sdr::Medium& medium = scenario.system.medium();
    std::printf("scene: %zu two-state elements, %zu subcarriers\n",
                kElements, medium.ofdm().num_used());

    // The factored basis the searches run on: warm once, report the
    // footprint the tiled layout keeps bandwidth-bound.
    core::LinkCache cache;
    cache.warm(medium, scenario.link_id,
               scenario.system.link(scenario.link_id));
    const core::LinkCache::BasisLayout layout =
        cache.basis_layout(scenario.link_id, scenario.array_id);
    std::printf("basis: %zu rows x %zu-wide [re|im] blocks = %.1f MiB\n",
                layout.rows, layout.row_stride,
                static_cast<double>(layout.bytes) / (1024.0 * 1024.0));

    // Price trials off the fast control-plane model so the two searchers
    // get explicit evaluation budgets: majority-vote runs on a quarter
    // of greedy's.
    const control::ControlPlaneModel plane =
        control::ControlPlaneModel::fast();
    control::SetConfig probe;
    probe.config.assign(kElements, 0);
    const double trial_s = plane.config_trial_time_s(
        probe, /*num_links=*/1, medium.ofdm().num_used());
    const control::MinSnrObjective objective(0);

    const auto run = [&](const control::Searcher& searcher,
                         double budget_evals) {
        util::Rng rng(2024);
        const auto outcome = scenario.system.optimize_fast(
            scenario.array_id, objective, searcher, plane,
            budget_evals * trial_s, rng);
        std::printf(
            "%-16s %5zu evals -> min-SNR %6.2f dB  (%.2f s wall)\n",
            searcher.name().c_str(), outcome.search.evaluations,
            outcome.search.best_score_remeasured,
            outcome.search.compute_s);
        return outcome.search.best_score_remeasured;
    };

    const double greedy = run(control::GreedyCoordinateDescent(), 4096.0);
    const double vote = run(control::MajorityVoteSearcher(), 1024.0);
    std::printf("majority-vote reached %.0f%% of greedy's objective on a "
                "quarter of the budget\n",
                greedy > 0.0 ? vote / greedy * 100.0 : 100.0);
    return 0;
}
