// A tour of the control plane: the wire protocol bytes, the timing model,
// and what each search strategy buys inside a coherence window.
//
// The paper's Section 2 argues the whole measure -> search -> actuate loop
// must fit within the channel coherence time (~80 ms quasi-static, ~6 ms
// walking). This example makes those budgets concrete.
#include <cstdio>
#include <iostream>

#include "control/controller.hpp"
#include "control/message.hpp"
#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/search.hpp"
#include "core/report.hpp"
#include "core/scenarios.hpp"
#include "em/channel.hpp"
#include "util/stats.hpp"

namespace {

void hex_dump(const std::vector<std::uint8_t>& bytes) {
    for (std::size_t i = 0; i < bytes.size(); ++i)
        std::printf("%02x%s", bytes[i], (i + 1) % 16 ? " " : "\n");
    if (bytes.size() % 16) std::printf("\n");
}

}  // namespace

int main() {
    using namespace press;

    // --- 1. The wire protocol. ---
    std::cout << "== SetConfig on the wire ==\n";
    control::SetConfig set;
    set.array_id = 1;
    set.config = {2, 0, 3};
    const auto bytes = control::encode(control::Message{set}, 7);
    hex_dump(bytes);
    const auto decoded = control::decode(bytes);
    std::cout << "decoded seq " << decoded.seq << ", "
              << std::get<control::SetConfig>(decoded.message).config.size()
              << " element states, " << bytes.size()
              << " bytes incl. CRC-16\n\n";

    // --- 2. Coherence-time budgets. ---
    std::cout << "== Trials per coherence window ==\n";
    const surface::ConfigSpace space({4, 4, 4});
    const auto trials = [&](const control::ControlPlaneModel& m,
                            double budget) {
        control::Controller c(
            m, [](const surface::Config&) { return true; },
            []() { return control::Observation{{{0.0}}, {}}; }, 1, 52);
        return c.trials_within(space, budget);
    };
    std::vector<std::vector<std::string>> rows;
    const double mph = 0.44704;
    const double walk = em::coherence_time_s(2.462e9, 6.0 * mph);
    const double still = em::coherence_time_s(2.462e9, 0.5 * mph);
    rows.push_back({"~6 ms (6 mph)",
                    std::to_string(trials(
                        control::ControlPlaneModel::prototype(), walk)),
                    std::to_string(trials(
                        control::ControlPlaneModel::fast(), walk))});
    rows.push_back({"~80 ms (0.5 mph)",
                    std::to_string(trials(
                        control::ControlPlaneModel::prototype(), still)),
                    std::to_string(trials(
                        control::ControlPlaneModel::fast(), still))});
    rows.push_back({"5 s (bench sweep)",
                    std::to_string(trials(
                        control::ControlPlaneModel::prototype(), 5.0)),
                    std::to_string(trials(
                        control::ControlPlaneModel::fast(), 5.0))});
    core::print_table(std::cout,
                      {"coherence window", "prototype plane", "fast plane"},
                      rows);

    // --- 3. What each strategy buys at a fixed budget. ---
    std::cout << "\n== Search strategies, 80 ms budget, 8-element array "
                 "==\n";
    core::StudyParams big;
    big.num_elements = 8;
    std::vector<std::vector<std::string>> srows;
    for (const auto& searcher : control::all_searchers()) {
        core::LinkScenario scenario =
            core::make_link_scenario(120, false, big);
        util::Rng rng(11);
        const control::MinSnrObjective objective(0);
        const auto outcome = scenario.system.optimize(
            scenario.array_id, objective, *searcher,
            control::ControlPlaneModel::fast(), 80e-3, rng);
        srows.push_back({searcher->name(),
                         std::to_string(outcome.search.evaluations),
                         core::fmt(outcome.search.best_score, 2)});
    }
    core::print_table(std::cout,
                      {"strategy", "trials", "best min-SNR (dB)"}, srows);
    std::cout << "\nThe prototype control plane (the paper's ~5 s sweep) "
                 "cannot react within any coherence window; a deployment-"
                 "grade plane plus a heuristic search can.\n";
    return 0;
}
