// Quickstart: build a programmable radio environment, measure a link,
// let the controller reconfigure the walls, and watch the link improve.
//
//   $ ./build/examples/quickstart
//
// This walks the full public API surface: an em::Environment with a room
// and clutter, a surface::Array of SP4T elements, an sdr::Medium binding
// them to OFDM numerology, a core::System facade, and a budgeted
// control::Controller optimization.
#include <iostream>

#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/search.hpp"
#include "core/report.hpp"
#include "core/system.hpp"
#include "em/material.hpp"
#include "phy/rate.hpp"
#include "util/stats.hpp"

int main() {
    using namespace press;

    // --- 1. Describe the space: a 16 x 12 m office with clutter. ---
    em::Environment environment;
    environment.set_room(em::Room(
        em::Aabb{{0, 0, 0}, {16, 12, 3}}, em::Material::concrete()));
    environment.set_max_reflection_order(3);
    util::Rng rng(2024);
    for (int i = 0; i < 8; ++i) {
        em::Scatterer s;
        s.position = {rng.uniform(1, 15), rng.uniform(1, 11),
                      rng.uniform(0.5, 2.5)};
        s.reflectivity = rng.uniform(0.1, 0.8) * rng.unit_phasor();
        environment.add_scatterer(s);
    }
    // A metal screen blocks the direct path (the interesting regime).
    environment.add_obstacle({{{7.85, 5.1, 0}, {8.15, 6.9, 2.2}}, 35.0});

    // --- 2. Embed PRESS elements in the wall between the endpoints. ---
    const double fc = 2.462e9;
    sdr::Medium medium(std::move(environment), phy::OfdmParams::wifi20());
    surface::Array wall;
    for (int i = 0; i < 6; ++i) {
        wall.add_element(surface::Element::sp4t_prototype(
            {6.2 + 0.75 * i, 4.9, 1.3}, em::Antenna::omni(14.0), fc));
    }
    core::System system(std::move(medium));
    const std::size_t array_id = system.medium().add_array(std::move(wall));

    // --- 3. Register the AP -> client link. ---
    sdr::Link link;
    link.tx = {{6.5, 6.0, 1.2}, em::Antenna::omni(2.0), {}};
    link.rx = {{9.5, 6.0, 1.2}, em::Antenna::omni(2.0), {}};
    link.profile = sdr::RadioProfile::warp_v3();
    // Run the radio at IoT-class power so the MCS ladder has headroom to
    // show the improvement.
    link.profile.tx_power_dbm = -26.0;
    const std::size_t link_id = system.add_link(link);
    // Average more training symbols per sounding so the optimizer is not
    // chasing estimator noise.
    system.set_sounding_repeats(24);

    // --- 4. Measure the channel as deployed. ---
    util::Rng meas_rng(7);
    const std::vector<double> before =
        system.measured_snr_db(link_id, meas_rng);
    std::cout << "before  " << core::sparkline(before) << "  min "
              << core::fmt(util::min_value(before), 1) << " dB, eff "
              << core::fmt(phy::effective_snr_db(before), 1) << " dB, rate "
              << core::fmt(phy::expected_throughput_mbps(before), 0)
              << " Mb/s\n";

    // --- 5. Reconfigure the environment within one coherence window. ---
    const control::MinSnrObjective objective(0);
    const auto outcome = system.optimize(
        array_id, objective, control::GreedyCoordinateDescent(),
        control::ControlPlaneModel::fast(), /*time_budget_s=*/0.3,
        meas_rng);

    const std::vector<double> after =
        system.measured_snr_db(link_id, meas_rng);
    std::cout << "after   " << core::sparkline(after) << "  min "
              << core::fmt(util::min_value(after), 1) << " dB, eff "
              << core::fmt(phy::effective_snr_db(after), 1) << " dB, rate "
              << core::fmt(phy::expected_throughput_mbps(after), 0)
              << " Mb/s\n";
    std::cout << "\nbest configuration: ";
    const auto labels =
        system.medium().array(array_id).state_labels();
    std::cout << surface::config_to_string(outcome.search.best_config,
                                           labels)
              << " found in " << outcome.search.evaluations
              << " trials (" << core::fmt(outcome.elapsed_s * 1e3, 1)
              << " ms of simulated control-plane time)\n";
    return 0;
}
