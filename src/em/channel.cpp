#include "em/channel.hpp"

#include <cmath>
#include <limits>

#include "util/contracts.hpp"
#include "util/units.hpp"

namespace press::em {

using util::cd;
using util::CVec;

CVec frequency_response(const std::vector<Path>& paths,
                        const std::vector<double>& freqs_hz, double time_s) {
    CVec h(freqs_hz.size(), cd{0.0, 0.0});
    accumulate_frequency_response(h, paths, freqs_hz, time_s);
    return h;
}

void accumulate_frequency_response(CVec& h, const std::vector<Path>& paths,
                                   const std::vector<double>& freqs_hz,
                                   double time_s) {
    PRESS_EXPECTS(h.size() == freqs_hz.size(),
                  "accumulator must match the frequency grid");
    for (const Path& p : paths) {
        const cd doppler = std::polar(
            1.0, util::kTwoPi * p.doppler_hz * time_s);
        for (std::size_t k = 0; k < freqs_hz.size(); ++k) {
            const double phase = -util::kTwoPi * freqs_hz[k] * p.delay_s;
            h[k] += p.gain * std::polar(1.0, phase) * doppler;
        }
    }
}

CVec impulse_response(const std::vector<Path>& paths, double carrier_hz,
                      double sample_rate_hz, std::size_t num_taps,
                      std::size_t lead_taps) {
    PRESS_EXPECTS(sample_rate_hz > 0.0, "sample rate must be positive");
    PRESS_EXPECTS(num_taps > 0, "need at least one tap");
    PRESS_EXPECTS(lead_taps < num_taps, "lead must fit inside the response");
    CVec h(num_taps, cd{0.0, 0.0});
    if (paths.empty()) return h;

    double first_delay = paths.front().delay_s;
    for (const Path& p : paths) first_delay = std::min(first_delay, p.delay_s);

    // Hann-windowed sinc kernel half-width (taps). 12 taps keeps stopband
    // leakage below -60 dB, ample for the SNRs this library models.
    constexpr int kHalfWidth = 12;
    for (const Path& p : paths) {
        // Baseband-equivalent gain: downconversion adds e^{-j 2 pi fc tau}.
        const cd bb_gain =
            p.gain * std::polar(1.0, -util::kTwoPi * carrier_hz * p.delay_s);
        const double center =
            (p.delay_s - first_delay) * sample_rate_hz +
            static_cast<double>(lead_taps);
        const int k_lo = std::max(0, static_cast<int>(std::floor(center)) -
                                         kHalfWidth);
        const int k_hi =
            std::min(static_cast<int>(num_taps) - 1,
                     static_cast<int>(std::ceil(center)) + kHalfWidth);
        for (int k = k_lo; k <= k_hi; ++k) {
            const double x = static_cast<double>(k) - center;
            double kernel;
            if (std::abs(x) < 1e-9) {
                kernel = 1.0;
            } else {
                const double s = std::sin(util::kPi * x) / (util::kPi * x);
                const double w =
                    0.5 * (1.0 + std::cos(util::kPi * x / (kHalfWidth + 1)));
                kernel = s * w;
            }
            h[static_cast<std::size_t>(k)] += bb_gain * kernel;
        }
    }
    return h;
}

double total_power(const std::vector<Path>& paths) {
    double acc = 0.0;
    for (const Path& p : paths) acc += std::norm(p.gain);
    return acc;
}

double rms_delay_spread(const std::vector<Path>& paths) {
    const double ptot = total_power(paths);
    if (ptot <= 0.0 || paths.size() < 2) return 0.0;
    double mean_tau = 0.0;
    for (const Path& p : paths) mean_tau += std::norm(p.gain) * p.delay_s;
    mean_tau /= ptot;
    double second = 0.0;
    for (const Path& p : paths)
        second += std::norm(p.gain) * (p.delay_s - mean_tau) *
                  (p.delay_s - mean_tau);
    return std::sqrt(second / ptot);
}

double coherence_bandwidth_hz(const std::vector<Path>& paths) {
    const double tau = rms_delay_spread(paths);
    if (tau <= 0.0) return std::numeric_limits<double>::infinity();
    return 1.0 / (5.0 * tau);
}

double coherence_time_s(double carrier_hz, double speed_m_per_s) {
    PRESS_EXPECTS(carrier_hz > 0.0, "carrier frequency must be positive");
    PRESS_EXPECTS(speed_m_per_s > 0.0, "speed must be positive");
    const double fd = speed_m_per_s * carrier_hz / util::kSpeedOfLight;
    return 9.0 / (16.0 * util::kPi * fd);
}

}  // namespace press::em
