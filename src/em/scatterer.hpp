// Environmental point scatterers.
//
// Furniture, fixtures and wall irregularities are modeled as point
// re-scatterers with a complex reflectivity. The amplitude contribution of
// a single bounce TX -> scatterer -> RX follows the two-segment (radar
// equation) form; `reflectivity` plays the role of sqrt(RCS/4pi) * e^{j psi}
// with an arbitrary per-scatterer phase.
#pragma once

#include <complex>

#include "em/geometry.hpp"

namespace press::em {

/// A passive point scatterer in the environment.
struct Scatterer {
    Vec3 position;
    /// Complex scattering amplitude (meters): received field contribution is
    /// reflectivity * lambda / ((4 pi d1)(4 pi d2) / (4 pi)) ... folded into
    /// the engine's two-hop budget. Typical indoor values 0.05 - 0.5 m.
    std::complex<double> reflectivity{0.1, 0.0};
};

}  // namespace press::em
