// Antenna gain models.
//
// The paper's prototype uses 2 dBi omni endpoints (PulseLarsen W1030), and
// PRESS elements with either a 14 dBi / 21-degree parabolic (Laird GD24BP)
// or an omni. We model an antenna as a boresight-relative amplitude-gain
// pattern: omnidirectional (constant gain) or parabolic (Gaussian rolloff in
// the angle off boresight, floored by a back-lobe level).
#pragma once

#include "em/geometry.hpp"

namespace press::em {

/// Directional amplitude-gain model evaluated toward arbitrary directions.
class Antenna {
public:
    /// An isotropic / omnidirectional antenna with the given peak gain.
    static Antenna omni(double gain_dbi);

    /// A parabolic dish pointed along `boresight` with the given peak gain
    /// and -3 dB full beamwidth (degrees). Side/back lobes are modeled as a
    /// constant floor `backlobe_db` below the peak.
    static Antenna parabolic(double gain_dbi, double beamwidth_deg,
                             Vec3 boresight, double backlobe_db = 20.0);

    /// Amplitude gain (sqrt of linear power gain) toward the unit-free
    /// direction `dir` (need not be normalized).
    double amplitude_gain(const Vec3& dir) const;

    /// Peak power gain in dBi.
    double peak_gain_dbi() const { return gain_dbi_; }

    /// True for the omnidirectional model.
    bool is_omni() const { return omni_; }

    /// Boresight direction (meaningful for directional models only).
    const Vec3& boresight() const { return boresight_; }

    /// -3 dB full beamwidth in radians (zero for omni).
    double beamwidth_rad() const { return beamwidth_rad_; }

    /// Re-points a directional antenna (no effect on omni).
    void set_boresight(const Vec3& boresight);

private:
    Antenna() = default;

    bool omni_ = true;
    double gain_dbi_ = 0.0;
    double beamwidth_rad_ = 0.0;
    double backlobe_db_ = 20.0;
    Vec3 boresight_{1.0, 0.0, 0.0};
};

}  // namespace press::em
