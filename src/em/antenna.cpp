#include "em/antenna.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"
#include "util/units.hpp"

namespace press::em {

Antenna Antenna::omni(double gain_dbi) {
    Antenna a;
    a.omni_ = true;
    a.gain_dbi_ = gain_dbi;
    return a;
}

Antenna Antenna::parabolic(double gain_dbi, double beamwidth_deg,
                           Vec3 boresight, double backlobe_db) {
    PRESS_EXPECTS(beamwidth_deg > 0.0 && beamwidth_deg < 180.0,
                  "beamwidth must be in (0, 180) degrees");
    PRESS_EXPECTS(backlobe_db >= 0.0, "backlobe level is a positive dB-down");
    Antenna a;
    a.omni_ = false;
    a.gain_dbi_ = gain_dbi;
    a.beamwidth_rad_ = beamwidth_deg * util::kPi / 180.0;
    a.backlobe_db_ = backlobe_db;
    a.boresight_ = boresight.normalized();
    return a;
}

double Antenna::amplitude_gain(const Vec3& dir) const {
    const double peak = util::db_to_amplitude(gain_dbi_);
    if (omni_) return peak;
    const Vec3 u = dir.normalized();
    const double cosang = std::clamp(u.dot(boresight_), -1.0, 1.0);
    const double theta = std::acos(cosang);
    // Gaussian main lobe calibrated so the power gain is -3 dB at half the
    // full beamwidth: G(theta) = G0 * exp(-ln2 * (2 theta / bw)^2).
    const double lobe_db =
        gain_dbi_ - 3.0 * std::pow(2.0 * theta / beamwidth_rad_, 2.0);
    const double floor_db = gain_dbi_ - backlobe_db_;
    return util::db_to_amplitude(std::max(lobe_db, floor_db));
}

void Antenna::set_boresight(const Vec3& boresight) {
    if (!omni_) boresight_ = boresight.normalized();
}

}  // namespace press::em
