// The propagation engine: resolves the discrete multipath between two
// radiating endpoints placed in an indoor scene.
//
// A scene is a rectangular Room (optional), axis-aligned box obstacles with
// a through-attenuation, and point scatterers. The engine produces em::Path
// records for:
//   - the direct ray (attenuated by every obstacle it crosses),
//   - specular wall reflections via the image method,
//   - single bounces off environmental scatterers (per-leg obstruction),
//   - two-hop re-radiation via arbitrary points (used by the PRESS layer to
//     inject element paths with the radar-equation link budget).
//
// Wall-reflection paths are obstruction-checked exactly: for an axis-
// aligned box room the physical polyline of an image path is the straight
// image->RX segment folded back into the room by a per-axis triangle wave
// (billiard unfolding), and the folded polyline is walked against every
// obstacle. Scatterer and PRESS paths are single-bounce only (documented
// simplification in DESIGN.md).
#pragma once

#include <complex>
#include <cstdint>
#include <optional>
#include <vector>

#include "em/antenna.hpp"
#include "em/geometry.hpp"
#include "em/path.hpp"
#include "em/room.hpp"
#include "em/scatterer.hpp"
#include "util/revision.hpp"

namespace press::em {

/// An axis-aligned blocking object (e.g. the metal screen the paper places
/// between TX and RX for the non-line-of-sight experiments).
struct Obstacle {
    Aabb box;
    /// Power attenuation (dB, positive) applied to each ray crossing it.
    double attenuation_db = 30.0;
};

/// A transmit or receive antenna placed in the scene.
struct RadiatingEndpoint {
    Vec3 position;
    Antenna antenna = Antenna::omni(2.0);
    /// Velocity [m/s] used for per-path Doppler; zero in the paper's static
    /// measurements.
    Vec3 velocity{0.0, 0.0, 0.0};
};

/// An indoor propagation scene.
class Environment {
public:
    Environment() = default;

    /// Installs a room; endpoints and scatterers must lie inside it.
    void set_room(const Room& room) {
        room_ = room;
        touch();
    }
    const std::optional<Room>& room() const { return room_; }

    /// Highest wall-reflection order traced (default 2). Order 3 roughly
    /// quadruples the image count for a modest energy contribution.
    void set_max_reflection_order(int order);
    int max_reflection_order() const { return max_reflection_order_; }

    void add_obstacle(const Obstacle& o) {
        obstacles_.push_back(o);
        touch();
    }
    const std::vector<Obstacle>& obstacles() const { return obstacles_; }
    void clear_obstacles() {
        obstacles_.clear();
        touch();
    }

    void add_scatterer(const Scatterer& s) {
        scatterers_.push_back(s);
        touch();
    }
    const std::vector<Scatterer>& scatterers() const { return scatterers_; }
    void clear_scatterers() {
        scatterers_.clear();
        touch();
    }

    /// Installs endpoint-independent diffuse multipath (e.g. a
    /// Saleh-Valenzuela realization from em/statistical.hpp) appended
    /// verbatim to every traced link. Gains must already include any
    /// antenna effects.
    void add_static_paths(std::vector<Path> paths);
    const std::vector<Path>& static_paths() const { return static_paths_; }
    void clear_static_paths() {
        static_paths_.clear();
        touch();
    }

    /// Mutation stamp: changes (to a process-unique value) whenever the
    /// scene is structurally modified through any mutator above. Channel
    /// caches compare stamps to decide whether traced paths are stale.
    std::uint64_t revision() const { return revision_; }

    /// Resolves every direct / wall / scatterer path between tx and rx at
    /// the given carrier. PRESS-element paths are added separately by the
    /// press layer through two_hop().
    std::vector<Path> trace(const RadiatingEndpoint& tx,
                            const RadiatingEndpoint& rx,
                            double carrier_hz) const;

    /// Builds the radar-equation path TX -> via -> RX for a re-radiating
    /// point with antenna `via_antenna`, complex reflection `reflection`
    /// (zero yields no path), and `extra_delay_s` of internal delay (the
    /// switched stub). Returns nullopt when the reflection is zero or
    /// either leg coincides with the via point.
    std::optional<Path> two_hop(const RadiatingEndpoint& tx,
                                const RadiatingEndpoint& rx, const Vec3& via,
                                const Antenna& via_antenna,
                                std::complex<double> reflection,
                                double extra_delay_s, double carrier_hz,
                                PathKind kind, int element_index = -1) const;

    /// Amplitude factor from every obstacle crossed by segment a->b
    /// (1.0 when unobstructed).
    double obstruction_amplitude(const Vec3& a, const Vec3& b) const;

    /// Amplitude factor for a wall-reflected path given by its unfolded
    /// straight segment from a source image to the receiver: folds the
    /// segment back into the room and applies each obstacle's attenuation
    /// once if the folded polyline crosses it. Requires a room.
    double folded_obstruction_amplitude(const Vec3& image,
                                        const Vec3& rx) const;

private:
    Path direct_path(const RadiatingEndpoint& tx, const RadiatingEndpoint& rx,
                     double carrier_hz) const;

    void touch() { revision_ = util::next_revision(); }

    std::optional<Room> room_;
    int max_reflection_order_ = 2;
    std::vector<Obstacle> obstacles_;
    std::vector<Scatterer> scatterers_;
    std::vector<Path> static_paths_;
    std::uint64_t revision_ = util::next_revision();
};

/// Per-path Doppler shift for moving endpoints: positive when the geometry
/// is closing. `departure` points away from TX; `arrival` is the incoming
/// propagation direction at RX (pointing toward RX).
double doppler_shift_hz(const Vec3& tx_velocity, const Vec3& rx_velocity,
                        const Vec3& departure, const Vec3& arrival,
                        double carrier_hz);

}  // namespace press::em
