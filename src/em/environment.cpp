#include "em/environment.hpp"

#include <cmath>
#include <iterator>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"
#include "util/units.hpp"

namespace press::em {

using util::kSpeedOfLight;

void Environment::set_max_reflection_order(int order) {
    PRESS_EXPECTS(order >= 0 && order <= 6,
                  "reflection order must be in [0, 6]");
    max_reflection_order_ = order;
    touch();
}

double Environment::obstruction_amplitude(const Vec3& a, const Vec3& b) const {
    double amp = 1.0;
    for (const Obstacle& o : obstacles_)
        if (segment_intersects_box(a, b, o.box))
            amp *= util::db_to_amplitude(-o.attenuation_db);
    return amp;
}

namespace {

// Folds an unbounded coordinate into [lo, hi] as a mirror-reflecting
// billiard would: a triangle wave of period 2 (hi - lo).
double fold_coordinate(double u, double lo, double hi) {
    const double length = hi - lo;
    double rel = std::fmod(u - lo, 2.0 * length);
    if (rel < 0.0) rel += 2.0 * length;
    return lo + (rel <= length ? rel : 2.0 * length - rel);
}

Vec3 fold_into_room(const Vec3& p, const Aabb& bounds) {
    return {fold_coordinate(p.x, bounds.lo.x, bounds.hi.x),
            fold_coordinate(p.y, bounds.lo.y, bounds.hi.y),
            fold_coordinate(p.z, bounds.lo.z, bounds.hi.z)};
}

}  // namespace

double Environment::folded_obstruction_amplitude(const Vec3& image,
                                                 const Vec3& rx) const {
    PRESS_EXPECTS(room_.has_value(),
                  "folded obstruction needs a room to fold into");
    if (obstacles_.empty()) return 1.0;
    const Aabb& bounds = room_->bounds();
    const double length = distance(image, rx);
    if (length <= 0.0) return 1.0;
    // Walk the unfolded segment at ~5 cm resolution; each consecutive pair
    // of folded points approximates one leg of the physical polyline.
    const int steps = std::max(2, static_cast<int>(length / 0.05));
    double amp = 1.0;
    std::vector<bool> crossed(obstacles_.size(), false);
    Vec3 prev = fold_into_room(image, bounds);
    for (int i = 1; i <= steps; ++i) {
        const double t = static_cast<double>(i) / steps;
        const Vec3 cur = fold_into_room(image + (rx - image) * t, bounds);
        for (std::size_t o = 0; o < obstacles_.size(); ++o) {
            if (crossed[o]) continue;
            if (segment_intersects_box(prev, cur, obstacles_[o].box) ||
                obstacles_[o].box.contains(cur)) {
                crossed[o] = true;
                amp *= util::db_to_amplitude(-obstacles_[o].attenuation_db);
            }
        }
        prev = cur;
    }
    return amp;
}

double doppler_shift_hz(const Vec3& tx_velocity, const Vec3& rx_velocity,
                        const Vec3& departure, const Vec3& arrival,
                        double carrier_hz) {
    // TX moving along the departure direction compresses the path; RX moving
    // along the incoming propagation direction stretches it.
    return carrier_hz / kSpeedOfLight *
           (tx_velocity.dot(departure) - rx_velocity.dot(arrival));
}

Path Environment::direct_path(const RadiatingEndpoint& tx,
                              const RadiatingEndpoint& rx,
                              double carrier_hz) const {
    const double d = distance(tx.position, rx.position);
    PRESS_EXPECTS(d > 0.0, "tx and rx cannot be co-located");
    const double lambda = util::wavelength(carrier_hz);
    const Vec3 dep = (rx.position - tx.position).normalized();
    Path p;
    p.kind = PathKind::kDirect;
    p.departure = dep;
    p.arrival = dep;  // incoming propagation direction at RX
    p.delay_s = d / kSpeedOfLight;
    const double amp = tx.antenna.amplitude_gain(dep) *
                       rx.antenna.amplitude_gain(-dep) *
                       lambda / (4.0 * util::kPi * d) *
                       obstruction_amplitude(tx.position, rx.position);
    p.gain = {amp, 0.0};
    p.doppler_hz =
        doppler_shift_hz(tx.velocity, rx.velocity, dep, dep, carrier_hz);
    return p;
}

std::vector<Path> Environment::trace(const RadiatingEndpoint& tx,
                                     const RadiatingEndpoint& rx,
                                     double carrier_hz) const {
    PRESS_EXPECTS(carrier_hz > 0.0, "carrier frequency must be positive");
    const double lambda = util::wavelength(carrier_hz);
    std::vector<Path> paths;
    paths.push_back(direct_path(tx, rx, carrier_hz));

    std::size_t images_considered = 0;
    if (room_ && max_reflection_order_ > 0) {
        const std::vector<SourceImage> images =
            room_->images(tx.position, max_reflection_order_);
        images_considered = images.size();
        for (const SourceImage& img : images) {
            const double d = distance(img.position, rx.position);
            if (d <= 0.0) continue;
            // The unfolded reflected ray runs straight from the image to the
            // receiver; endpoint antennas in this library's scenarios are
            // omni, so we evaluate both gains along that unfolded direction.
            const Vec3 dir = (rx.position - img.position).normalized();
            Path p;
            p.kind = PathKind::kWall;
            p.departure = dir;
            p.arrival = dir;
            p.delay_s = d / kSpeedOfLight;
            const double amp = tx.antenna.amplitude_gain(dir) *
                               rx.antenna.amplitude_gain(-dir) *
                               lambda / (4.0 * util::kPi * d) *
                               folded_obstruction_amplitude(img.position,
                                                            rx.position);
            p.gain = amp * img.reflection;
            p.doppler_hz = doppler_shift_hz(tx.velocity, rx.velocity, dir,
                                            dir, carrier_hz);
            paths.push_back(p);
        }
    }

    for (const Scatterer& s : scatterers_) {
        const double d1 = distance(tx.position, s.position);
        const double d2 = distance(s.position, rx.position);
        if (d1 <= 0.0 || d2 <= 0.0) continue;
        const Vec3 dep = (s.position - tx.position).normalized();
        const Vec3 arr = (rx.position - s.position).normalized();
        Path p;
        p.kind = PathKind::kScatterer;
        p.departure = dep;
        p.arrival = arr;
        p.delay_s = (d1 + d2) / kSpeedOfLight;
        // Bistatic radar budget with reflectivity rho = sqrt(RCS / 4 pi):
        // |a| = gt * gr * rho * lambda / ((4 pi d1)(4 pi d2)).
        const double geom =
            lambda / ((4.0 * util::kPi * d1) * (4.0 * util::kPi * d2));
        const double amp = tx.antenna.amplitude_gain(dep) *
                           rx.antenna.amplitude_gain(-arr) * geom *
                           obstruction_amplitude(tx.position, s.position) *
                           obstruction_amplitude(s.position, rx.position);
        p.gain = amp * s.reflectivity;
        p.doppler_hz =
            doppler_shift_hz(tx.velocity, rx.velocity, dep, arr, carrier_hz);
        paths.push_back(p);
    }
    paths.insert(paths.end(), static_paths_.begin(), static_paths_.end());

    // Telemetry: how often the full tracer runs and how large its ray
    // budget is. The counters expose what the channel caches are saving —
    // a config sweep that re-traces shows up immediately in
    // em.environment.traces.
    if (obs::enabled()) {
        auto& registry = obs::MetricsRegistry::global();
        static obs::Counter& traces =
            registry.counter("em.environment.traces");
        static obs::Counter& traced_paths =
            registry.counter("em.environment.paths");
        static obs::Counter& wall_images =
            registry.counter("em.environment.wall_images_considered");
        traces.add();
        traced_paths.add(paths.size());
        wall_images.add(images_considered);
    }
    return paths;
}

void Environment::add_static_paths(std::vector<Path> paths) {
    static_paths_.insert(static_paths_.end(),
                         std::make_move_iterator(paths.begin()),
                         std::make_move_iterator(paths.end()));
    touch();
}

std::optional<Path> Environment::two_hop(
    const RadiatingEndpoint& tx, const RadiatingEndpoint& rx, const Vec3& via,
    const Antenna& via_antenna, std::complex<double> reflection,
    double extra_delay_s, double carrier_hz, PathKind kind,
    int element_index) const {
    PRESS_EXPECTS(carrier_hz > 0.0, "carrier frequency must be positive");
    PRESS_EXPECTS(extra_delay_s >= 0.0, "extra delay must be non-negative");
    if (reflection == std::complex<double>{0.0, 0.0}) return std::nullopt;
    const double d1 = distance(tx.position, via);
    const double d2 = distance(via, rx.position);
    if (d1 <= 0.0 || d2 <= 0.0) return std::nullopt;
    const double lambda = util::wavelength(carrier_hz);
    const Vec3 dep = (via - tx.position).normalized();
    const Vec3 arr = (rx.position - via).normalized();
    Path p;
    p.kind = kind;
    p.element_index = element_index;
    p.departure = dep;
    p.arrival = arr;
    p.delay_s = (d1 + d2) / kSpeedOfLight + extra_delay_s;
    // Re-radiating element budget (capture aperture + re-radiation):
    // |a| = gt * ge(->tx) * ge(->rx) * gr * |G| * lambda^2 /
    //       ((4 pi d1)(4 pi d2)).
    const double geom =
        lambda * lambda / ((4.0 * util::kPi * d1) * (4.0 * util::kPi * d2));
    const double amp = tx.antenna.amplitude_gain(dep) *
                       via_antenna.amplitude_gain(-dep) *
                       via_antenna.amplitude_gain(arr) *
                       rx.antenna.amplitude_gain(-arr) * geom *
                       obstruction_amplitude(tx.position, via) *
                       obstruction_amplitude(via, rx.position);
    p.gain = amp * reflection;
    p.doppler_hz =
        doppler_shift_hz(tx.velocity, rx.velocity, dep, arr, carrier_hz);
    if (obs::enabled()) {
        static obs::Counter& two_hops = obs::MetricsRegistry::global()
                                            .counter("em.environment.two_hop_paths");
        two_hops.add();
    }
    return p;
}

}  // namespace press::em
