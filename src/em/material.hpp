// Wall / surface materials.
//
// A material is summarized by its complex amplitude reflection coefficient
// at ~2.4 GHz. Magnitudes follow commonly measured indoor values; the phase
// is pi (field inversion) for the dielectric and conducting surfaces we
// model, which is the dominant behaviour near normal incidence.
#pragma once

#include <complex>
#include <string>

namespace press::em {

/// A reflecting surface material.
struct Material {
    std::string name;
    /// Complex amplitude reflection coefficient applied per bounce.
    std::complex<double> reflection{-0.5, 0.0};

    static Material drywall() { return {"drywall", {-0.45, 0.0}}; }
    static Material concrete() { return {"concrete", {-0.65, 0.0}}; }
    static Material glass() { return {"glass", {-0.35, 0.0}}; }
    static Material metal() { return {"metal", {-0.95, 0.0}}; }
    static Material wood() { return {"wood", {-0.40, 0.0}}; }
    /// An anechoic-like absorber: essentially no reflection.
    static Material absorber() { return {"absorber", {-0.02, 0.0}}; }
};

}  // namespace press::em
