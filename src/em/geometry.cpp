#include "em/geometry.hpp"

#include <algorithm>

namespace press::em {

bool segment_intersects_box(const Vec3& a, const Vec3& b, const Aabb& box) {
    // Slab method on the parametric segment a + t (b - a), t in (0, 1).
    const Vec3 d = b - a;
    double t_enter = 0.0;
    double t_exit = 1.0;
    const double axes_a[3] = {a.x, a.y, a.z};
    const double axes_d[3] = {d.x, d.y, d.z};
    const double axes_lo[3] = {box.lo.x, box.lo.y, box.lo.z};
    const double axes_hi[3] = {box.hi.x, box.hi.y, box.hi.z};
    for (int i = 0; i < 3; ++i) {
        if (std::abs(axes_d[i]) < 1e-15) {
            if (axes_a[i] < axes_lo[i] || axes_a[i] > axes_hi[i]) return false;
            continue;
        }
        double t0 = (axes_lo[i] - axes_a[i]) / axes_d[i];
        double t1 = (axes_hi[i] - axes_a[i]) / axes_d[i];
        if (t0 > t1) std::swap(t0, t1);
        t_enter = std::max(t_enter, t0);
        t_exit = std::min(t_exit, t1);
        if (t_enter > t_exit) return false;
    }
    // Require genuine interior overlap: grazing the surface (or an endpoint
    // touching the box) does not block a path.
    return t_exit - t_enter > 1e-12 && t_exit > 1e-12 && t_enter < 1.0 - 1e-12;
}

}  // namespace press::em
