// Minimal 3-D vector geometry for the propagation engine.
#pragma once

#include <cmath>

#include "util/contracts.hpp"

namespace press::em {

/// A point or direction in 3-D space, in meters.
struct Vec3 {
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
    Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
    Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
    Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
    Vec3 operator-() const { return {-x, -y, -z}; }

    double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }

    Vec3 cross(const Vec3& o) const {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }

    double norm() const { return std::sqrt(dot(*this)); }

    /// Unit vector in this direction; zero vectors are a contract violation.
    Vec3 normalized() const {
        const double n = norm();
        PRESS_EXPECTS(n > 0.0, "cannot normalize the zero vector");
        return *this / n;
    }
};

inline Vec3 operator*(double s, const Vec3& v) { return v * s; }

/// Euclidean distance between two points.
inline double distance(const Vec3& a, const Vec3& b) { return (b - a).norm(); }

/// An axis-aligned box given by its two extreme corners (lo <= hi
/// component-wise). Used for obstacles and for the room envelope.
struct Aabb {
    Vec3 lo;
    Vec3 hi;

    bool contains(const Vec3& p) const {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
               p.z >= lo.z && p.z <= hi.z;
    }

    Vec3 center() const { return (lo + hi) * 0.5; }
};

/// True when the open segment (a, b) intersects the box. Endpoints touching
/// the surface do not count as an intersection, so a radio standing next to
/// an obstacle is not considered blocked by it.
bool segment_intersects_box(const Vec3& a, const Vec3& b, const Aabb& box);

}  // namespace press::em
