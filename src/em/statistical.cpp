#include "em/statistical.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/units.hpp"

namespace press::em {

namespace {

Vec3 random_direction(util::Rng& rng) {
    // Uniform on the sphere via the cylindrical projection.
    const double z = rng.uniform(-1.0, 1.0);
    const double phi = rng.uniform(0.0, util::kTwoPi);
    const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
    return {r * std::cos(phi), r * std::sin(phi), z};
}

}  // namespace

std::vector<Path> saleh_valenzuela_paths(const SalehValenzuelaParams& p,
                                         util::Rng& rng) {
    PRESS_EXPECTS(p.cluster_rate_hz > 0.0 && p.ray_rate_hz > 0.0,
                  "arrival rates must be positive");
    PRESS_EXPECTS(p.cluster_decay_s > 0.0 && p.ray_decay_s > 0.0,
                  "decay constants must be positive");
    PRESS_EXPECTS(p.max_delay_s > 0.0, "truncation must be positive");
    PRESS_EXPECTS(p.first_arrival_amplitude > 0.0,
                  "first arrival amplitude must be positive");

    std::vector<Path> paths;
    const double mean_power0 =
        p.first_arrival_amplitude * p.first_arrival_amplitude;

    double cluster_t = 0.0;  // first cluster at the excess delay
    while (cluster_t < p.max_delay_s) {
        double ray_t = 0.0;
        while (cluster_t + ray_t < p.max_delay_s) {
            // Doubly exponential mean power profile.
            const double mean_power =
                mean_power0 * std::exp(-cluster_t / p.cluster_decay_s) *
                std::exp(-ray_t / p.ray_decay_s);
            Path path;
            // Rayleigh amplitude, uniform phase: a circularly symmetric
            // complex Gaussian with the profile's mean power.
            path.gain = rng.complex_gaussian(mean_power);
            path.delay_s = p.excess_delay_s + cluster_t + ray_t;
            path.departure = random_direction(rng);
            path.arrival = random_direction(rng);
            path.kind = PathKind::kScatterer;
            paths.push_back(path);
            // Next ray within the cluster (exponential inter-arrival).
            ray_t += -std::log(rng.uniform(1e-12, 1.0)) / p.ray_rate_hz;
        }
        cluster_t += -std::log(rng.uniform(1e-12, 1.0)) / p.cluster_rate_hz;
        if (cluster_t <= 0.0) break;  // defensive; cannot happen
    }
    return paths;
}

}  // namespace press::em
