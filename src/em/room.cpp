#include "em/room.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace press::em {

Room::Room(Aabb bounds, const Material& material) : bounds_(bounds) {
    PRESS_EXPECTS(bounds.lo.x < bounds.hi.x && bounds.lo.y < bounds.hi.y &&
                      bounds.lo.z < bounds.hi.z,
                  "room must have positive extent on every axis");
    for (Material& w : walls_) w = material;
}

void Room::set_wall_material(Wall wall, const Material& material) {
    walls_[static_cast<int>(wall)] = material;
}

const Material& Room::wall_material(Wall wall) const {
    return walls_[static_cast<int>(wall)];
}

namespace {

/// Per-axis image candidate: mirrored coordinate, reflection coefficient
/// contribution, and bounce count.
struct AxisImage {
    double coord;
    std::complex<double> reflection;
    int order;
};

std::vector<AxisImage> axis_images(double u, double lo, double hi,
                                   const std::complex<double>& gamma_lo,
                                   const std::complex<double>& gamma_hi,
                                   int max_order) {
    std::vector<AxisImage> out;
    const double length = hi - lo;
    const double rel = u - lo;
    // |n| <= (max_order + 1) / 2 covers every image of order <= max_order.
    const int nmax = max_order / 2 + 1;
    for (int n = -nmax; n <= nmax; ++n) {
        for (int q = 0; q <= 1; ++q) {
            const int low_bounces = std::abs(n - q);
            const int high_bounces = std::abs(n);
            const int order = low_bounces + high_bounces;
            if (order > max_order) continue;
            std::complex<double> coeff{1.0, 0.0};
            for (int i = 0; i < low_bounces; ++i) coeff *= gamma_lo;
            for (int i = 0; i < high_bounces; ++i) coeff *= gamma_hi;
            out.push_back({lo + (1 - 2 * q) * rel + 2.0 * n * length, coeff,
                           order});
        }
    }
    return out;
}

}  // namespace

std::vector<SourceImage> Room::images(const Vec3& source,
                                      int max_order) const {
    PRESS_EXPECTS(max_order >= 0, "max_order must be non-negative");
    PRESS_EXPECTS(contains(source), "image source must lie inside the room");
    const auto xs = axis_images(
        source.x, bounds_.lo.x, bounds_.hi.x,
        wall_material(Wall::kXLow).reflection,
        wall_material(Wall::kXHigh).reflection, max_order);
    const auto ys = axis_images(
        source.y, bounds_.lo.y, bounds_.hi.y,
        wall_material(Wall::kYLow).reflection,
        wall_material(Wall::kYHigh).reflection, max_order);
    const auto zs = axis_images(
        source.z, bounds_.lo.z, bounds_.hi.z,
        wall_material(Wall::kZLow).reflection,
        wall_material(Wall::kZHigh).reflection, max_order);

    std::vector<SourceImage> out;
    for (const AxisImage& ix : xs) {
        for (const AxisImage& iy : ys) {
            const int partial = ix.order + iy.order;
            if (partial > max_order) continue;
            for (const AxisImage& iz : zs) {
                const int order = partial + iz.order;
                if (order == 0 || order > max_order) continue;
                out.push_back(
                    {{ix.coord, iy.coord, iz.coord},
                     ix.reflection * iy.reflection * iz.reflection,
                     order});
            }
        }
    }
    return out;
}

}  // namespace press::em
