// Propagation paths.
//
// The standard multipath signal model (Tse & Viswanath; the paper's Section
// 2 "inverse problem") describes the channel as a superposition of discrete
// paths, each with a complex gain, a propagation delay, angles of departure
// and arrival, and a Doppler shift. The channel frequency response follows
// as H(f) = sum_l a_l e^{-j 2 pi f tau_l}.
#pragma once

#include <complex>
#include <string>

#include "em/geometry.hpp"

namespace press::em {

/// How a path came to exist; benches and tests use this to reason about the
/// composition of a channel.
enum class PathKind {
    kDirect,       ///< Line-of-sight TX -> RX.
    kWall,         ///< Specular wall reflection(s) via the image method.
    kScatterer,    ///< Single bounce off an environmental point scatterer.
    kPressElement, ///< Re-radiated by a PRESS element (passive or active).
};

/// One resolved propagation path between a transmit and a receive antenna.
struct Path {
    /// Frequency-independent complex amplitude: Friis/radar-equation
    /// magnitude at the carrier wavelength times all reflection
    /// coefficients and antenna amplitude gains. Propagation phase is NOT
    /// included here; it enters through `delay_s` when synthesizing H(f).
    std::complex<double> gain{0.0, 0.0};

    /// Total propagation delay in seconds (includes any switched-stub extra
    /// delay inside a PRESS element).
    double delay_s = 0.0;

    /// Unit direction of departure at the transmitter.
    Vec3 departure{1.0, 0.0, 0.0};

    /// Unit direction of arrival at the receiver.
    Vec3 arrival{1.0, 0.0, 0.0};

    /// Doppler shift in Hz (zero for the static scenes of the paper's
    /// exploratory study).
    double doppler_hz = 0.0;

    PathKind kind = PathKind::kDirect;

    /// For kPressElement paths: index of the element within its array.
    int element_index = -1;
};

/// Human-readable tag for logs and debug dumps.
std::string to_string(PathKind kind);

inline std::string to_string(PathKind kind) {
    switch (kind) {
        case PathKind::kDirect: return "direct";
        case PathKind::kWall: return "wall";
        case PathKind::kScatterer: return "scatterer";
        case PathKind::kPressElement: return "press-element";
    }
    return "unknown";
}

}  // namespace press::em
