// Rectangular room with image-method specular reflections.
//
// The room is an axis-aligned box; each of the six walls has a material.
// Mirror images of a source follow Allen & Berkley's construction: along
// each axis the image coordinate is (1-2q) u + 2 n L (q in {0,1}, n integer)
// with |n - q| reflections off the low wall and |n| off the high wall. The
// per-image reflection coefficient is the product of the wall coefficients
// raised to those counts; images are combined independently across axes.
#pragma once

#include <complex>
#include <vector>

#include "em/geometry.hpp"
#include "em/material.hpp"

namespace press::em {

/// One mirror image of a source point.
struct SourceImage {
    Vec3 position;
    /// Product of the amplitude reflection coefficients of every wall
    /// bounce on this image's path.
    std::complex<double> reflection{1.0, 0.0};
    /// Total number of wall bounces (image order). Order zero (the source
    /// itself) is never returned.
    int order = 0;
};

/// Indexes the six walls of the box.
enum class Wall { kXLow, kXHigh, kYLow, kYHigh, kZLow, kZHigh };

/// An axis-aligned rectangular room.
class Room {
public:
    /// Builds a room spanning `bounds` with every wall made of `material`.
    Room(Aabb bounds, const Material& material);

    /// Per-wall material override.
    void set_wall_material(Wall wall, const Material& material);

    const Material& wall_material(Wall wall) const;

    const Aabb& bounds() const { return bounds_; }

    /// True when p lies inside the room (inclusive of walls).
    bool contains(const Vec3& p) const { return bounds_.contains(p); }

    /// All source images of `source` with 1 <= order <= max_order, for a
    /// source inside the room.
    std::vector<SourceImage> images(const Vec3& source, int max_order) const;

private:
    Aabb bounds_;
    Material walls_[6];
};

}  // namespace press::em
