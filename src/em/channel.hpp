// Channel synthesis from resolved multipath.
//
// Given a set of em::Path records, these functions synthesize the channel
// frequency response H(f) = sum_l a_l e^{-j 2 pi f tau_l} e^{j 2 pi nu_l t}
// on arbitrary frequency grids, and a sampled (fractional-delay) impulse
// response for the time-domain PHY chain.
#pragma once

#include <vector>

#include "em/path.hpp"
#include "util/cvec.hpp"

namespace press::em {

/// Channel frequency response on the absolute frequency grid `freqs_hz`,
/// evaluated at elapsed time `time_s` (Doppler rotates each path).
util::CVec frequency_response(const std::vector<Path>& paths,
                              const std::vector<double>& freqs_hz,
                              double time_s = 0.0);

/// Adds the frequency response of `paths` into `h` (same grid semantics as
/// frequency_response; `h.size()` must equal `freqs_hz.size()`). Lets a
/// factored channel cache accumulate static and per-element contributions
/// with the exact arithmetic of the one-shot synthesis.
void accumulate_frequency_response(util::CVec& h,
                                   const std::vector<Path>& paths,
                                   const std::vector<double>& freqs_hz,
                                   double time_s = 0.0);

/// Discrete-time baseband impulse response sampled at `sample_rate_hz`
/// around carrier `carrier_hz`, `num_taps` taps long. Each path lands at
/// its fractional delay via a Hann-windowed sinc interpolation kernel; the
/// earliest path is positioned at tap `lead_taps` so the kernel's acausal
/// half is representable.
util::CVec impulse_response(const std::vector<Path>& paths,
                            double carrier_hz, double sample_rate_hz,
                            std::size_t num_taps, std::size_t lead_taps = 8);

/// Total multipath power sum |a_l|^2.
double total_power(const std::vector<Path>& paths);

/// Power-weighted RMS delay spread in seconds (zero for a single path).
double rms_delay_spread(const std::vector<Path>& paths);

/// 50%-correlation coherence bandwidth estimate 1 / (5 tau_rms).
double coherence_bandwidth_hz(const std::vector<Path>& paths);

/// Coherence time from the maximum endpoint speed via the popular
/// Tc = 9 / (16 pi f_d) rule (Tse & Viswanath); matches the paper's quoted
/// ~80 ms at 0.5 mph and ~6 ms at 6 mph for 2.4 GHz.
double coherence_time_s(double carrier_hz, double speed_m_per_s);

}  // namespace press::em
