// Statistical (Saleh-Valenzuela) multipath generation.
//
// The image-method tracer is deterministic geometry; real buildings also
// contain diffuse clutter the geometry cannot enumerate. The classic
// Saleh-Valenzuela model generates multipath as Poisson cluster arrivals
// with doubly exponential power decay — the standard statistical
// description of indoor channels. The library uses it two ways: as extra
// diffuse paths layered onto traced scenes, and as an alternative
// substrate for checking that the paper's conclusions do not hinge on the
// ray tracer (bench/ablation_substrate).
#pragma once

#include <vector>

#include "em/path.hpp"
#include "util/rng.hpp"

namespace press::em {

/// Parameters of the Saleh-Valenzuela process. Defaults follow commonly
/// cited office-environment fits (Saleh & Valenzuela 1987).
struct SalehValenzuelaParams {
    double cluster_rate_hz = 1.0 / 60e-9;   ///< Lambda: cluster arrivals
    double ray_rate_hz = 1.0 / 8e-9;        ///< lambda: rays within cluster
    double cluster_decay_s = 60e-9;         ///< Gamma: cluster power decay
    double ray_decay_s = 20e-9;             ///< gamma: ray power decay
    double max_delay_s = 400e-9;            ///< truncation
    /// Amplitude of the first arrival (sets the overall channel scale, in
    /// the same units as traced path gains).
    double first_arrival_amplitude = 1e-3;
    /// Extra delay of the first arrival after the (possibly blocked)
    /// direct distance.
    double excess_delay_s = 20e-9;
};

/// Draws one realization of the process: paths with Rayleigh amplitudes
/// around the doubly exponential power profile and uniform phases.
/// Angles of departure/arrival are drawn uniformly (the SV model is
/// omnidirectional); Doppler is zero.
std::vector<Path> saleh_valenzuela_paths(const SalehValenzuelaParams& params,
                                         util::Rng& rng);

}  // namespace press::em
