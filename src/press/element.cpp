#include "press/element.hpp"

#include "util/contracts.hpp"
#include "util/units.hpp"

namespace press::surface {

Element::Element(em::Vec3 position, em::Antenna antenna,
                 std::vector<Load> loads)
    : position_(position), antenna_(antenna), loads_(std::move(loads)) {
    PRESS_EXPECTS(!loads_.empty(), "element needs at least one load");
}

Element Element::sp4t_prototype(em::Vec3 position, em::Antenna antenna,
                                double carrier_hz) {
    std::vector<Load> loads;
    loads.push_back(Load::reflective(0.0, carrier_hz));
    loads.push_back(Load::reflective(util::kPi / 2.0, carrier_hz));
    loads.push_back(Load::reflective(util::kPi, carrier_hz));
    loads.push_back(Load::absorptive());
    return Element(position, antenna, std::move(loads));
}

Element Element::uniform_phases(em::Vec3 position, em::Antenna antenna,
                                double carrier_hz, int num_phases,
                                bool include_off) {
    PRESS_EXPECTS(num_phases >= 1, "need at least one phase");
    std::vector<Load> loads;
    loads.reserve(static_cast<std::size_t>(num_phases) + (include_off ? 1 : 0));
    for (int k = 0; k < num_phases; ++k) {
        const double phase =
            util::kTwoPi * static_cast<double>(k) / num_phases;
        loads.push_back(Load::reflective(phase, carrier_hz));
    }
    if (include_off) loads.push_back(Load::absorptive());
    return Element(position, antenna, std::move(loads));
}

Element Element::active(em::Vec3 position, em::Antenna antenna,
                        double carrier_hz, int num_phases, double gain_db) {
    PRESS_EXPECTS(num_phases >= 1, "need at least one phase");
    std::vector<Load> loads;
    for (int k = 0; k < num_phases; ++k) {
        const double phase =
            util::kTwoPi * static_cast<double>(k) / num_phases;
        loads.push_back(Load::active(gain_db, phase, carrier_hz));
    }
    loads.push_back(Load::absorptive());
    return Element(position, antenna, std::move(loads));
}

void Element::set_antenna(em::Antenna antenna) {
    antenna_ = antenna;
    revision_ = util::next_revision();
}

void Element::select(int state) {
    PRESS_EXPECTS(state >= 0 && state < num_states(),
                  "load state out of range");
    selected_ = state;
}

void Element::set_load(int state, Load load) {
    PRESS_EXPECTS(state >= 0 && state < num_states(),
                  "load state out of range");
    loads_[static_cast<std::size_t>(state)] = std::move(load);
    revision_ = util::next_revision();
}

const Load& Element::load(int state) const {
    PRESS_EXPECTS(state >= 0 && state < num_states(),
                  "load state out of range");
    return loads_[static_cast<std::size_t>(state)];
}

bool Element::has_active_states() const {
    for (const Load& l : loads_)
        if (l.is_active()) return true;
    return false;
}

}  // namespace press::surface
