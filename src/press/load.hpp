// Switchable element loads.
//
// The paper's prototype element (its Figure 3) is an antenna behind an SP4T
// RF switch whose four throws connect to: three open RF waveguides adding
// 0, lambda/4, and lambda/2 of path length (reflection phases 0, pi/2, pi),
// and one absorptive load (no reflection). A Load models one such throw as
// a complex reflection coefficient plus a true internal delay, so a stub's
// phase is slightly dispersive across the band exactly as a real cable is.
// Active (amplifying) loads model the PhyCloak-style full-duplex elements
// the paper proposes for line-of-sight scenarios (|reflection| > 1).
#pragma once

#include <complex>
#include <string>

namespace press::surface {

/// One selectable termination of a PRESS element.
struct Load {
    /// Complex amplitude reflection (or re-transmission) coefficient applied
    /// at the element, excluding the delay-induced phase below.
    std::complex<double> reflection{0.0, 0.0};

    /// Internal round-trip delay [s] (the switched stub). Its carrier phase
    /// is 2 pi f tau; across a 20 MHz band the phase varies by a fraction of
    /// a degree, as with real cable stubs.
    double extra_delay_s = 0.0;

    /// Display label, e.g. "0", "0.5pi", "pi", "T".
    std::string label;

    /// An open reflective stub whose *round-trip* electrical length yields
    /// `phase_rad` of reflection phase at `carrier_hz`. `efficiency` is the
    /// amplitude reflection magnitude (switch insertion loss and stub
    /// radiation leakage; the prototype's SP4T costs ~0.7 dB per pass).
    static Load reflective(double phase_rad, double carrier_hz,
                           double efficiency = 0.85);

    /// The absorptive termination: reflection suppressed to `leakage`.
    static Load absorptive(double leakage = 0.01);

    /// An active re-radiating load with power gain `gain_db` and phase
    /// `phase_rad` at `carrier_hz` (models a PhyCloak-like amplify-and-
    /// forward element).
    static Load active(double gain_db, double phase_rad, double carrier_hz);

    /// True when |reflection| exceeds unity (needs a powered amplifier).
    bool is_active() const;

    /// True for the absorptive state.
    bool is_off() const;
};

/// Phase label in the paper's notation: multiples of pi, or "T" when off.
std::string phase_label(double phase_rad);

}  // namespace press::surface
