#include "press/load.hpp"

#include <cmath>
#include <sstream>

#include "util/contracts.hpp"
#include "util/units.hpp"

namespace press::surface {

std::string phase_label(double phase_rad) {
    const double multiple = phase_rad / util::kPi;
    std::ostringstream os;
    if (std::abs(multiple) < 1e-9) {
        os << "0";
    } else if (std::abs(multiple - 1.0) < 1e-9) {
        os << "pi";
    } else {
        // Trim trailing zeros from e.g. "0.50" -> "0.5".
        double r = std::round(multiple * 100.0) / 100.0;
        os << r << "pi";
    }
    return os.str();
}

Load Load::reflective(double phase_rad, double carrier_hz,
                      double efficiency) {
    PRESS_EXPECTS(carrier_hz > 0.0, "carrier frequency must be positive");
    PRESS_EXPECTS(phase_rad >= 0.0, "stub phase must be non-negative");
    PRESS_EXPECTS(efficiency > 0.0 && efficiency <= 1.0,
                  "passive efficiency must be in (0, 1]");
    Load l;
    l.reflection = {efficiency, 0.0};
    // A round-trip electrical length of phase/(2 pi) wavelengths.
    l.extra_delay_s = phase_rad / (util::kTwoPi * carrier_hz);
    l.label = phase_label(phase_rad);
    return l;
}

Load Load::absorptive(double leakage) {
    PRESS_EXPECTS(leakage >= 0.0 && leakage < 0.1,
                  "absorber leakage should be small");
    Load l;
    l.reflection = {leakage, 0.0};
    l.extra_delay_s = 0.0;
    l.label = "T";
    return l;
}

Load Load::active(double gain_db, double phase_rad, double carrier_hz) {
    PRESS_EXPECTS(carrier_hz > 0.0, "carrier frequency must be positive");
    PRESS_EXPECTS(phase_rad >= 0.0, "phase must be non-negative");
    Load l;
    l.reflection = {util::db_to_amplitude(gain_db), 0.0};
    l.extra_delay_s = phase_rad / (util::kTwoPi * carrier_hz);
    l.label = "A(" + phase_label(phase_rad) + ")";
    return l;
}

bool Load::is_active() const { return std::abs(reflection) > 1.0; }

bool Load::is_off() const { return label == "T"; }

}  // namespace press::surface
