// A PRESS array: the set of elements installed in a space, plus helpers to
// generate the placements used by the paper's exploratory study.
#pragma once

#include <cstdint>
#include <vector>

#include "em/environment.hpp"
#include "em/path.hpp"
#include "press/config.hpp"
#include "press/element.hpp"
#include "util/rng.hpp"

namespace press::surface {

/// An addressable collection of PRESS elements.
class Array {
public:
    Array() = default;
    explicit Array(std::vector<Element> elements);

    void add_element(Element e) {
        elements_.push_back(std::move(e));
        own_revision_ = util::next_revision();
    }

    std::size_t size() const { return elements_.size(); }
    bool empty() const { return elements_.empty(); }

    const Element& element(std::size_t i) const;
    Element& element(std::size_t i);
    const std::vector<Element>& elements() const { return elements_; }

    /// The mixed-radix space of this array's configurations.
    ConfigSpace config_space() const;

    /// Applies `config` (selects the given state on every element).
    void apply(const Config& config);

    /// The currently selected configuration.
    Config current_config() const;

    /// Per-element state label tables for config_to_string().
    std::vector<std::vector<std::string>> state_labels() const;

    /// Resolves the element re-radiation paths between tx and rx under the
    /// currently applied configuration (one two-hop path per element whose
    /// selected load reflects).
    std::vector<em::Path> paths(const em::Environment& env,
                                const em::RadiatingEndpoint& tx,
                                const em::RadiatingEndpoint& rx,
                                double carrier_hz) const;

    /// The configuration-independent basis of this array's contribution to
    /// a link: for every element, the two-hop re-radiation path under each
    /// selectable load (a zero-gain placeholder where the geometry or load
    /// yields no path). out[e][s] is element e under state s; the paths of
    /// any configuration c are exactly { out[e][c[e]] } in element order.
    std::vector<std::vector<em::Path>> state_paths(
        const em::Environment& env, const em::RadiatingEndpoint& tx,
        const em::RadiatingEndpoint& rx, double carrier_hz) const;

    /// Structure stamp over the element set: changes whenever elements are
    /// added or any element's load bank / antenna may have been modified.
    /// Applying configurations does NOT change it.
    std::uint64_t structure_revision() const;

private:
    std::vector<Element> elements_;
    std::uint64_t own_revision_ = util::next_revision();
};

/// Places `count` SP4T prototype elements (paper Figure 3) uniformly at
/// random inside the axis-aligned region `region`, as the paper's "eight
/// randomly generated locations in a grid 1-2 meters from both antennas".
Array random_sp4t_array(int count, const em::Aabb& region,
                        const em::Antenna& antenna, double carrier_hz,
                        util::Rng& rng);

/// Places `count` uniform-phase elements co-linear along `axis` starting at
/// `origin` with `spacing_m` between elements (the Figure-8 MIMO setup uses
/// one-wavelength spacing co-linear with the transmit pair).
Array linear_array(int count, const em::Vec3& origin, const em::Vec3& axis,
                   double spacing_m, const em::Antenna& antenna,
                   double carrier_hz, int num_phases, bool include_off);

}  // namespace press::surface
