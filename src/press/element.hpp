// A single PRESS element: an antenna behind a bank of switchable loads.
#pragma once

#include <cstdint>
#include <vector>

#include "em/antenna.hpp"
#include "em/geometry.hpp"
#include "press/load.hpp"
#include "util/revision.hpp"

namespace press::surface {

/// One wall-embedded PRESS element. The element re-radiates energy incident
/// on its antenna through whichever load its switch currently selects.
class Element {
public:
    /// Builds an element at `position` with the given antenna and a
    /// non-empty bank of selectable loads; state 0 is selected initially.
    Element(em::Vec3 position, em::Antenna antenna, std::vector<Load> loads);

    /// The paper's Figure-3 prototype: SP4T switch with reflective stubs of
    /// 0, lambda/4 and lambda/2 additional path length (phases 0, pi/2, pi)
    /// plus an absorptive load. Four states.
    static Element sp4t_prototype(em::Vec3 position, em::Antenna antenna,
                                  double carrier_hz);

    /// An element with `num_phases` equally spaced reflective phases
    /// (0, 2pi/num_phases, ...), optionally including an absorptive "off"
    /// state as the last state. Used by the Figure-7 harmonization setup
    /// (4 phases, no absorber) and the phase-granularity ablation.
    static Element uniform_phases(em::Vec3 position, em::Antenna antenna,
                                  double carrier_hz, int num_phases,
                                  bool include_off);

    /// An active element: amplify-and-forward states at `num_phases` evenly
    /// spaced phases with power gain `gain_db`, plus an "off" state.
    static Element active(em::Vec3 position, em::Antenna antenna,
                          double carrier_hz, int num_phases, double gain_db);

    const em::Vec3& position() const { return position_; }
    const em::Antenna& antenna() const { return antenna_; }

    /// Re-points the element antenna (changes the element's re-radiation
    /// budget, so the revision stamp advances). Reads go through the const
    /// accessor and are stamp-neutral — a mutable reference accessor would
    /// invalidate LinkCache entries on every read.
    void set_antenna(em::Antenna antenna);

    int num_states() const { return static_cast<int>(loads_.size()); }

    /// Selects load `state` (0-based; must be < num_states()).
    void select(int state);

    /// Replaces the load behind `state` (miscalibration, hardware faults,
    /// per-element trim). The selectable state count never changes.
    void set_load(int state, Load load);

    int selected_state() const { return selected_; }
    const Load& selected_load() const { return loads_[selected_]; }
    const Load& load(int state) const;
    const std::vector<Load>& loads() const { return loads_; }

    /// True when any state needs an amplifier.
    bool has_active_states() const;

    /// Structure stamp: changes (to a process-unique value) whenever the
    /// load bank or the antenna may have been modified. Selecting a state
    /// does NOT change it — selection is configuration, not structure —
    /// which is what lets a factored channel cache survive config sweeps.
    std::uint64_t revision() const { return revision_; }

private:
    em::Vec3 position_;
    em::Antenna antenna_;
    std::vector<Load> loads_;
    int selected_ = 0;
    std::uint64_t revision_ = util::next_revision();
};

}  // namespace press::surface
