#include "press/array.hpp"

#include "util/contracts.hpp"

namespace press::surface {

Array::Array(std::vector<Element> elements)
    : elements_(std::move(elements)) {}

const Element& Array::element(std::size_t i) const {
    PRESS_EXPECTS(i < elements_.size(), "element index out of range");
    return elements_[i];
}

Element& Array::element(std::size_t i) {
    PRESS_EXPECTS(i < elements_.size(), "element index out of range");
    return elements_[i];
}

ConfigSpace Array::config_space() const {
    PRESS_EXPECTS(!elements_.empty(), "array has no elements");
    std::vector<int> radices;
    radices.reserve(elements_.size());
    for (const Element& e : elements_) radices.push_back(e.num_states());
    return ConfigSpace(std::move(radices));
}

void Array::apply(const Config& config) {
    PRESS_EXPECTS(config.size() == elements_.size(),
                  "configuration arity must match array size");
    for (std::size_t i = 0; i < elements_.size(); ++i)
        elements_[i].select(config[i]);
}

Config Array::current_config() const {
    Config c(elements_.size());
    for (std::size_t i = 0; i < elements_.size(); ++i)
        c[i] = elements_[i].selected_state();
    return c;
}

std::vector<std::vector<std::string>> Array::state_labels() const {
    std::vector<std::vector<std::string>> labels;
    labels.reserve(elements_.size());
    for (const Element& e : elements_) {
        std::vector<std::string> per_element;
        per_element.reserve(static_cast<std::size_t>(e.num_states()));
        for (const Load& l : e.loads()) per_element.push_back(l.label);
        labels.push_back(std::move(per_element));
    }
    return labels;
}

std::vector<std::vector<em::Path>> Array::state_paths(
    const em::Environment& env, const em::RadiatingEndpoint& tx,
    const em::RadiatingEndpoint& rx, double carrier_hz) const {
    std::vector<std::vector<em::Path>> out(elements_.size());
    for (std::size_t i = 0; i < elements_.size(); ++i) {
        const Element& e = elements_[i];
        out[i].reserve(static_cast<std::size_t>(e.num_states()));
        for (int s = 0; s < e.num_states(); ++s) {
            const Load& load = e.load(s);
            const auto p = env.two_hop(
                tx, rx, e.position(), e.antenna(), load.reflection,
                load.extra_delay_s, carrier_hz, em::PathKind::kPressElement,
                static_cast<int>(i));
            if (p) {
                out[i].push_back(*p);
            } else {
                // Zero-gain placeholder: contributes nothing when summed,
                // exactly like the path paths() would have skipped.
                em::Path zero;
                zero.kind = em::PathKind::kPressElement;
                zero.element_index = static_cast<int>(i);
                out[i].push_back(zero);
            }
        }
    }
    return out;
}

std::uint64_t Array::structure_revision() const {
    // Order-dependent mix of the element stamps, so distinct histories do
    // not collide by summation.
    std::uint64_t rev = own_revision_;
    for (const Element& e : elements_)
        rev = rev * 0x100000001B3ull ^ e.revision();
    return rev;
}

std::vector<em::Path> Array::paths(const em::Environment& env,
                                   const em::RadiatingEndpoint& tx,
                                   const em::RadiatingEndpoint& rx,
                                   double carrier_hz) const {
    std::vector<em::Path> out;
    for (std::size_t i = 0; i < elements_.size(); ++i) {
        const Element& e = elements_[i];
        const Load& load = e.selected_load();
        const auto p = env.two_hop(tx, rx, e.position(), e.antenna(),
                                   load.reflection, load.extra_delay_s,
                                   carrier_hz, em::PathKind::kPressElement,
                                   static_cast<int>(i));
        if (p) out.push_back(*p);
    }
    return out;
}

Array random_sp4t_array(int count, const em::Aabb& region,
                        const em::Antenna& antenna, double carrier_hz,
                        util::Rng& rng) {
    PRESS_EXPECTS(count >= 1, "need at least one element");
    std::vector<Element> elements;
    elements.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        const em::Vec3 pos{rng.uniform(region.lo.x, region.hi.x),
                           rng.uniform(region.lo.y, region.hi.y),
                           rng.uniform(region.lo.z, region.hi.z)};
        elements.push_back(Element::sp4t_prototype(pos, antenna, carrier_hz));
    }
    return Array(std::move(elements));
}

Array linear_array(int count, const em::Vec3& origin, const em::Vec3& axis,
                   double spacing_m, const em::Antenna& antenna,
                   double carrier_hz, int num_phases, bool include_off) {
    PRESS_EXPECTS(count >= 1, "need at least one element");
    PRESS_EXPECTS(spacing_m > 0.0, "element spacing must be positive");
    const em::Vec3 step = axis.normalized() * spacing_m;
    std::vector<Element> elements;
    elements.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        elements.push_back(Element::uniform_phases(
            origin + step * static_cast<double>(i), antenna, carrier_hz,
            num_phases, include_off));
    }
    return Array(std::move(elements));
}

}  // namespace press::surface
