// Array configurations and the configuration search space.
//
// A configuration assigns one load state to every element of an array; with
// N elements of M states each the space has M^N points (the paper's 3
// four-state elements give 64). ConfigSpace provides mixed-radix encoding
// between configurations and flat indices so searches, sweeps and the
// control-plane wire format all share one canonical representation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace press::surface {

/// Per-element selected load states (0-based), one entry per element.
using Config = std::vector<int>;

/// The mixed-radix space of all configurations of an array whose i-th
/// element has radices[i] states.
class ConfigSpace {
public:
    /// Builds a space from per-element state counts (each >= 1).
    explicit ConfigSpace(std::vector<int> radices);

    std::size_t num_elements() const { return radices_.size(); }
    const std::vector<int>& radices() const { return radices_; }

    /// Total number of configurations (product of radices). Throws
    /// std::overflow_error if the product exceeds 2^63 - 1.
    std::uint64_t size() const;

    /// The configuration at flat index `index` (row-major, element 0 is the
    /// fastest-varying digit).
    Config at(std::uint64_t index) const;

    /// The flat index of `config`.
    std::uint64_t index_of(const Config& config) const;

    /// True when `config` has the right arity and every digit is in range.
    bool valid(const Config& config) const;

    /// All configurations in index order. Precondition: size() fits memory
    /// comfortably (<= 2^20); larger spaces must be searched, not
    /// enumerated.
    std::vector<Config> enumerate() const;

private:
    std::vector<int> radices_;
};

/// Renders a configuration with the paper's tuple notation using per-state
/// labels supplied by the caller, e.g. "(pi, 0, 0.5pi)".
std::string config_to_string(const Config& config,
                             const std::vector<std::vector<std::string>>&
                                 state_labels);

}  // namespace press::surface
