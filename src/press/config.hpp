// Array configurations and the configuration search space.
//
// A configuration assigns one load state to every element of an array; with
// N elements of M states each the space has M^N points (the paper's 3
// four-state elements give 64). ConfigSpace provides mixed-radix encoding
// between configurations and flat indices so searches, sweeps and the
// control-plane wire format all share one canonical representation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace press::surface {

/// Per-element selected load states (0-based), one entry per element.
using Config = std::vector<int>;

/// The mixed-radix space of all configurations of an array whose i-th
/// element has radices[i] states.
class ConfigSpace {
public:
    /// Builds a space from per-element state counts (each >= 1).
    explicit ConfigSpace(std::vector<int> radices);

    std::size_t num_elements() const { return radices_.size(); }
    const std::vector<int>& radices() const { return radices_; }

    /// Total number of configurations (product of radices). Throws
    /// std::overflow_error if the product exceeds 2^63 - 1.
    std::uint64_t size() const;

    /// The configuration at flat index `index` (row-major, element 0 is the
    /// fastest-varying digit).
    Config at(std::uint64_t index) const;

    /// The flat index of `config`.
    std::uint64_t index_of(const Config& config) const;

    /// True when `config` has the right arity and every digit is in range.
    bool valid(const Config& config) const;

    /// All configurations in index order. Precondition: size() fits memory
    /// comfortably (<= 2^20); larger spaces must be searched, not
    /// enumerated.
    std::vector<Config> enumerate() const;

private:
    std::vector<int> radices_;
};

/// A degradation-aware projection of a ConfigSpace: selected elements are
/// frozen at fixed states (because a health monitor flagged them dead or
/// stuck) and only the remaining free elements are exposed to a searcher.
/// Searching the reduced space stops wasting trials on dimensions the
/// hardware can no longer actuate.
class FrozenProjection {
public:
    /// Freezes element i at `frozen_values[i]` wherever `frozen[i]` is
    /// true. At least one element must stay free.
    FrozenProjection(const ConfigSpace& full, std::vector<bool> frozen,
                     Config frozen_values);

    std::size_t num_frozen() const;
    bool is_frozen(std::size_t element) const;

    /// The space over free elements only.
    const ConfigSpace& reduced() const { return reduced_; }

    /// Expands a reduced configuration to full arity by inserting the
    /// frozen states.
    Config lift(const Config& reduced_config) const;

    /// Drops the frozen dimensions of a full configuration.
    Config project(const Config& full_config) const;

private:
    std::vector<bool> frozen_;
    Config frozen_values_;
    std::vector<std::size_t> free_index_;  // reduced position -> full index
    ConfigSpace reduced_;
};

/// Renders a configuration with the paper's tuple notation using per-state
/// labels supplied by the caller, e.g. "(pi, 0, 0.5pi)".
std::string config_to_string(const Config& config,
                             const std::vector<std::vector<std::string>>&
                                 state_labels);

}  // namespace press::surface
