#include "press/config.hpp"

#include <limits>
#include <stdexcept>

#include "util/contracts.hpp"

namespace press::surface {

ConfigSpace::ConfigSpace(std::vector<int> radices)
    : radices_(std::move(radices)) {
    PRESS_EXPECTS(!radices_.empty(), "config space needs elements");
    for (int r : radices_)
        PRESS_EXPECTS(r >= 1, "every element needs at least one state");
}

std::uint64_t ConfigSpace::size() const {
    std::uint64_t total = 1;
    for (int r : radices_) {
        const std::uint64_t rr = static_cast<std::uint64_t>(r);
        if (total > std::numeric_limits<std::int64_t>::max() / rr)
            throw std::overflow_error("configuration space size overflows");
        total *= rr;
    }
    return total;
}

Config ConfigSpace::at(std::uint64_t index) const {
    PRESS_EXPECTS(index < size(), "configuration index out of range");
    Config c(radices_.size());
    for (std::size_t i = 0; i < radices_.size(); ++i) {
        const std::uint64_t r = static_cast<std::uint64_t>(radices_[i]);
        c[i] = static_cast<int>(index % r);
        index /= r;
    }
    return c;
}

std::uint64_t ConfigSpace::index_of(const Config& config) const {
    PRESS_EXPECTS(valid(config), "invalid configuration for this space");
    std::uint64_t index = 0;
    for (std::size_t i = radices_.size(); i-- > 0;) {
        index = index * static_cast<std::uint64_t>(radices_[i]) +
                static_cast<std::uint64_t>(config[i]);
    }
    return index;
}

bool ConfigSpace::valid(const Config& config) const {
    if (config.size() != radices_.size()) return false;
    for (std::size_t i = 0; i < config.size(); ++i)
        if (config[i] < 0 || config[i] >= radices_[i]) return false;
    return true;
}

std::vector<Config> ConfigSpace::enumerate() const {
    const std::uint64_t n = size();
    PRESS_EXPECTS(n <= (1ull << 20),
                  "space too large to enumerate; use a searcher");
    std::vector<Config> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) out.push_back(at(i));
    return out;
}

namespace {

std::vector<int> reduced_radices(const ConfigSpace& full,
                                 const std::vector<bool>& frozen) {
    PRESS_EXPECTS(frozen.size() == full.num_elements(),
                  "frozen mask must match space arity");
    std::vector<int> out;
    for (std::size_t i = 0; i < frozen.size(); ++i)
        if (!frozen[i]) out.push_back(full.radices()[i]);
    PRESS_EXPECTS(!out.empty(),
                  "cannot freeze every element; at least one must stay free");
    return out;
}

}  // namespace

FrozenProjection::FrozenProjection(const ConfigSpace& full,
                                   std::vector<bool> frozen,
                                   Config frozen_values)
    : frozen_(std::move(frozen)),
      frozen_values_(std::move(frozen_values)),
      reduced_(reduced_radices(full, frozen_)) {
    PRESS_EXPECTS(full.valid(frozen_values_),
                  "frozen values must be a valid configuration");
    free_index_.reserve(full.num_elements());
    for (std::size_t i = 0; i < frozen_.size(); ++i)
        if (!frozen_[i]) free_index_.push_back(i);
}

std::size_t FrozenProjection::num_frozen() const {
    return frozen_.size() - free_index_.size();
}

bool FrozenProjection::is_frozen(std::size_t element) const {
    PRESS_EXPECTS(element < frozen_.size(), "element index out of range");
    return frozen_[element];
}

Config FrozenProjection::lift(const Config& reduced_config) const {
    PRESS_EXPECTS(reduced_config.size() == free_index_.size(),
                  "reduced configuration has wrong arity");
    Config full = frozen_values_;
    for (std::size_t r = 0; r < free_index_.size(); ++r)
        full[free_index_[r]] = reduced_config[r];
    return full;
}

Config FrozenProjection::project(const Config& full_config) const {
    PRESS_EXPECTS(full_config.size() == frozen_.size(),
                  "full configuration has wrong arity");
    Config reduced;
    reduced.reserve(free_index_.size());
    for (std::size_t i : free_index_) reduced.push_back(full_config[i]);
    return reduced;
}

std::string config_to_string(
    const Config& config,
    const std::vector<std::vector<std::string>>& state_labels) {
    PRESS_EXPECTS(config.size() == state_labels.size(),
                  "labels must match configuration arity");
    std::string out = "(";
    for (std::size_t i = 0; i < config.size(); ++i) {
        const auto& labels = state_labels[i];
        PRESS_EXPECTS(config[i] >= 0 &&
                          static_cast<std::size_t>(config[i]) < labels.size(),
                      "state index outside label table");
        if (i > 0) out += ", ";
        out += labels[static_cast<std::size_t>(config[i])];
    }
    out += ")";
    return out;
}

}  // namespace press::surface
