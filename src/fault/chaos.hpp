// Wire-level chaos injection for the control-plane service.
//
// LossyChannel (control/transport.hpp) models a physically noisy channel:
// independent bit flips and whole-frame drops. A service that must stay
// correct under *adversarial* transport conditions needs more failure
// modes than physics provides: duplicated frames (retransmit races),
// reordering (multipath queues), bounded delay, corruption bursts, and
// mid-request disconnects. ChaosLink is that harness — a deterministic,
// seeded frame mangler that sits between a client and a control::Service
// in tests, the chaos-soak CI job and press_loadgen.
//
// The link is time-aware: frames are sent at a simulated instant and
// become deliverable once their (possibly chaos-extended) delivery time
// passes, so reordering and delay are real scheduling effects rather than
// shuffles of an array. Every injected fault is counted; the soak
// accounting in press_loadgen closes its books against these counters to
// prove the service never loses a frame silently — whatever was not
// delivered was chaos, and the chaos wrote it down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace press::fault {

/// Per-frame fault probabilities and bounds. All rates are independent
/// probabilities in [0, 1); a frame can be delayed AND duplicated AND
/// corrupted in one pass.
struct ChaosOptions {
    double drop_rate = 0.0;       ///< frame vanishes
    double duplicate_rate = 0.0;  ///< frame delivered twice
    double reorder_rate = 0.0;    ///< frame held back past later frames
    double corrupt_rate = 0.0;    ///< 1-8 random bit flips
    double delay_rate = 0.0;      ///< frame delayed by uniform extra time
    double delay_min_s = 0.0;
    double delay_max_s = 5e-3;
    /// Chance, per frame, that the link severs mid-flight: this frame and
    /// everything sent afterwards is lost until reconnect() — the
    /// mid-request-disconnect scenario.
    double disconnect_rate = 0.0;

    /// A uniform knob for soak scripts: every rate at `level` (disconnects
    /// at level / 5, so sessions live long enough to carry traffic).
    static ChaosOptions uniform(double level);
};

/// A unidirectional chaotic frame pipe. Deterministic for a given rng.
class ChaosLink {
public:
    ChaosLink(ChaosOptions options, util::Rng rng);

    /// Offers one frame to the link at simulated time `now_s`.
    void send(const std::vector<std::uint8_t>& frame, double now_s);

    /// Frames whose delivery time has passed, in delivery order (which
    /// chaos may have decoupled from send order).
    std::vector<std::vector<std::uint8_t>> deliver(double now_s);

    /// Frames still in flight (not yet deliverable).
    std::size_t in_flight() const { return flight_.size(); }

    /// True once a disconnect fired; send() drops everything until
    /// reconnect(). In-flight frames are lost too (a severed link does
    /// not finish its deliveries).
    bool severed() const { return severed_; }
    void reconnect();

    struct Stats {
        std::uint64_t sent = 0;        ///< frames offered
        std::uint64_t delivered = 0;   ///< frames handed out (incl. dups)
        std::uint64_t dropped = 0;     ///< lost to drop_rate
        std::uint64_t duplicated = 0;  ///< extra copies injected
        std::uint64_t corrupted = 0;   ///< frames with flipped bits
        std::uint64_t delayed = 0;     ///< frames given extra latency
        std::uint64_t reordered = 0;   ///< deliveries out of send order
        std::uint64_t disconnects = 0; ///< times the link severed
        std::uint64_t severed_loss = 0;///< frames lost to severed link
    };
    const Stats& stats() const { return stats_; }

private:
    struct InFlight {
        double due_s = 0.0;
        std::uint64_t order = 0;  ///< send order, for reorder accounting
        std::vector<std::uint8_t> frame;
    };

    ChaosOptions options_;
    util::Rng rng_;
    std::vector<InFlight> flight_;
    std::uint64_t next_order_ = 0;
    std::uint64_t last_delivered_order_ = 0;
    bool any_delivered_ = false;
    bool severed_ = false;
    Stats stats_;
};

}  // namespace press::fault
