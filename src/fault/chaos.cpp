#include "fault/chaos.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace press::fault {

ChaosOptions ChaosOptions::uniform(double level) {
    PRESS_EXPECTS(level >= 0.0 && level < 1.0,
                  "chaos level must be a probability below 1");
    ChaosOptions o;
    o.drop_rate = level;
    o.duplicate_rate = level;
    o.reorder_rate = level;
    o.corrupt_rate = level;
    o.delay_rate = level;
    o.disconnect_rate = level / 5.0;
    return o;
}

namespace {

// Unlike LossyChannel, a rate of exactly 1.0 is allowed: tests use
// always-fire faults to pin down single behaviours deterministically.
void check_rate(double rate, const char* what) {
    PRESS_EXPECTS(rate >= 0.0 && rate <= 1.0, what);
}

}  // namespace

ChaosLink::ChaosLink(ChaosOptions options, util::Rng rng)
    : options_(options), rng_(rng) {
    check_rate(options.drop_rate, "drop rate must be a probability below 1");
    check_rate(options.duplicate_rate,
               "duplicate rate must be a probability below 1");
    check_rate(options.reorder_rate,
               "reorder rate must be a probability below 1");
    check_rate(options.corrupt_rate,
               "corrupt rate must be a probability below 1");
    check_rate(options.delay_rate, "delay rate must be a probability below 1");
    check_rate(options.disconnect_rate,
               "disconnect rate must be a probability below 1");
    PRESS_EXPECTS(options.delay_min_s >= 0.0 &&
                      options.delay_max_s >= options.delay_min_s,
                  "delay bounds must be ordered and non-negative");
}

void ChaosLink::send(const std::vector<std::uint8_t>& frame, double now_s) {
    ++stats_.sent;
    if (severed_) {
        ++stats_.severed_loss;
        return;
    }
    if (rng_.chance(options_.disconnect_rate)) {
        // The link severs with this frame on it: the frame and every
        // in-flight predecessor is lost (a dead wire finishes nothing).
        severed_ = true;
        ++stats_.disconnects;
        stats_.severed_loss += 1 + flight_.size();
        flight_.clear();
        return;
    }
    if (rng_.chance(options_.drop_rate)) {
        ++stats_.dropped;
        return;
    }

    InFlight entry;
    entry.order = next_order_++;
    entry.frame = frame;
    entry.due_s = now_s;
    if (rng_.chance(options_.delay_rate)) {
        entry.due_s +=
            rng_.uniform(options_.delay_min_s, options_.delay_max_s);
        ++stats_.delayed;
    }
    if (rng_.chance(options_.reorder_rate)) {
        // Hold the frame back past its successors: at least one max-delay
        // window beyond any chaos delay it already picked up.
        const double hold =
            std::max(options_.delay_max_s, 1e-4);
        entry.due_s += rng_.uniform(hold, 2.0 * hold);
    }
    if (rng_.chance(options_.corrupt_rate) && !entry.frame.empty()) {
        const int flips = static_cast<int>(rng_.uniform_int(1, 8));
        for (int i = 0; i < flips; ++i) {
            const auto byte = static_cast<std::size_t>(rng_.uniform_int(
                0, static_cast<std::int64_t>(entry.frame.size()) - 1));
            const auto bit = static_cast<int>(rng_.uniform_int(0, 7));
            entry.frame[byte] ^= static_cast<std::uint8_t>(1u << bit);
        }
        ++stats_.corrupted;
    }
    if (rng_.chance(options_.duplicate_rate)) {
        InFlight dup = entry;
        // The duplicate travels independently — its own (possibly
        // different) delivery time, same send order.
        dup.due_s = now_s;
        if (rng_.chance(0.5)) {
            dup.due_s +=
                rng_.uniform(options_.delay_min_s, options_.delay_max_s);
        }
        flight_.push_back(std::move(dup));
        ++stats_.duplicated;
    }
    flight_.push_back(std::move(entry));
}

std::vector<std::vector<std::uint8_t>> ChaosLink::deliver(double now_s) {
    std::vector<std::vector<std::uint8_t>> out;
    if (flight_.empty()) return out;

    // Ripe frames leave in delivery-time order; ties break by send order,
    // so an undisturbed link is strictly FIFO.
    std::stable_sort(flight_.begin(), flight_.end(),
                     [](const InFlight& a, const InFlight& b) {
                         if (a.due_s != b.due_s) return a.due_s < b.due_s;
                         return a.order < b.order;
                     });
    std::size_t ripe = 0;
    while (ripe < flight_.size() && flight_[ripe].due_s <= now_s) ++ripe;
    out.reserve(ripe);
    for (std::size_t i = 0; i < ripe; ++i) {
        InFlight& f = flight_[i];
        if (any_delivered_ && f.order < last_delivered_order_) {
            ++stats_.reordered;
        }
        last_delivered_order_ =
            any_delivered_ ? std::max(last_delivered_order_, f.order)
                           : f.order;
        any_delivered_ = true;
        ++stats_.delivered;
        out.push_back(std::move(f.frame));
    }
    flight_.erase(flight_.begin(),
                  flight_.begin() + static_cast<std::ptrdiff_t>(ripe));
    return out;
}

void ChaosLink::reconnect() {
    severed_ = false;
}

}  // namespace press::fault
