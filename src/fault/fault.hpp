// Element-level fault injection.
//
// At the paper's target scale — hundreds of cheap wall-embedded elements —
// stuck switches, dead loads and drifted stubs are the steady state, not
// the exception. A FaultModel sits between the controller's intent and the
// EM substrate: the configuration the controller *thinks* it applied
// diverges from what the hardware actually assumes. Four fault classes:
//
//   kStuckAt     the SP4T switch is frozen in one throw; every command
//                lands on that state.
//   kDead        the element no longer re-radiates (burnt feed, detached
//                antenna): every load becomes absorptive at install time.
//   kPhaseDrift  the stubs aged or were miscalibrated: each reflective
//                load's phase is rotated by a fixed error; the switch
//                still actuates correctly.
//   kFlaky       the switch actuates intermittently: each command is
//                ignored (state unchanged) with a given probability.
//
// All stochastic behaviour draws from a seeded util::Rng, so faulty runs
// are bit-reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "press/array.hpp"
#include "press/config.hpp"
#include "util/rng.hpp"

namespace press::fault {

enum class FaultType : std::uint8_t { kStuckAt, kDead, kPhaseDrift, kFlaky };

const char* to_string(FaultType type);

/// One element's defect.
struct Fault {
    std::size_t element = 0;
    FaultType type = FaultType::kStuckAt;
    int stuck_state = 0;      ///< kStuckAt: the throw the switch froze in
    double drift_rad = 0.0;   ///< kPhaseDrift: reflection phase error
    double flake_prob = 0.5;  ///< kFlaky: P(command ignored)
};

/// A set of element faults plus the machinery to realize them against an
/// array: permanent hardware damage is applied once via install(), and
/// per-command divergence via distort()/apply().
class FaultModel {
public:
    FaultModel() = default;
    /// `rng` drives flaky-switch coin flips.
    explicit FaultModel(util::Rng rng) : rng_(rng) {}

    /// Registers a fault. One fault per element; later wins.
    void add(const Fault& fault);

    /// Draws faults for ceil(`fraction` * `num_elements`) distinct random
    /// elements with a realistic mix biased toward actuation failures
    /// (40% stuck, 30% dead, 15% phase drift, 15% flaky).
    static FaultModel sample(const surface::ConfigSpace& space,
                             double fraction, util::Rng& rng);

    const std::vector<Fault>& faults() const { return faults_; }
    bool is_faulty(std::size_t element) const;
    std::size_t num_faulty() const { return faults_.size(); }
    bool empty() const { return faults_.empty(); }

    /// Applies the permanent damage to the hardware: dead elements lose
    /// every load to an absorber, drifted elements get rotated stub
    /// phases. Call once when the model is attached to an array.
    void install(surface::Array& array) const;

    /// The configuration the switches actually assume when `requested` is
    /// commanded while the array currently holds `current`. Stuck
    /// elements pin their state; flaky elements keep `current` with their
    /// flake probability (consuming this model's RNG stream).
    surface::Config distort(const surface::Config& requested,
                            const surface::Config& current);

    /// Pure variant: identical distortion, but flaky coin flips draw from
    /// the caller's `rng`, leaving this model's stream untouched. Lets a
    /// batch evaluator score fault-distorted candidates concurrently and
    /// deterministically (each candidate brings its own seeded stream).
    surface::Config distorted(const surface::Config& requested,
                              const surface::Config& current,
                              util::Rng& rng) const;

    /// Allocation-free form of distorted(): writes the actual
    /// configuration into caller-owned `out` (resized to the requested
    /// arity; capacity is retained across calls). Same rng semantics.
    void distorted_into(const surface::Config& requested,
                        const surface::Config& current, util::Rng& rng,
                        surface::Config& out) const;

    /// requested -> distort -> array.apply. What System::apply routes
    /// through when faults are injected.
    void apply(surface::Array& array, const surface::Config& requested);

private:
    std::vector<Fault> faults_;
    util::Rng rng_;
};

}  // namespace press::fault
