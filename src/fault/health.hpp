// Fault detection: per-element probe sweeps.
//
// A controller cannot see inside a wall, but it can toggle one element at
// a time and watch the measured SNR. A healthy element moves the channel
// when its load changes; a dead or stuck element does not. HealthMonitor
// runs that sweep — hold a baseline configuration, step each element
// through its states, record the strongest mean-SNR deviation it can
// provoke — and flags elements whose response stays below a threshold.
// The resulting HealthReport feeds a surface::FrozenProjection so
// searchers stop spending coherence-time trials on dimensions the
// hardware no longer actuates, and the controller degrades gracefully
// instead of silently optimizing against broken switches.
//
// Probes are priced like configuration trials through the
// ControlPlaneModel: health monitoring is honest about the wall-clock it
// costs (it is meant for maintenance windows, not the inner loop).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "control/plane.hpp"
#include "press/config.hpp"

namespace press::fault {

/// What a probe sweep concluded about each element.
struct HealthReport {
    /// Flagged as unresponsive (dead or stuck), one entry per element.
    std::vector<bool> suspect;
    /// Strongest |mean-SNR delta| (dB) each element provoked.
    std::vector<double> response_db;
    /// Probe trials spent (baseline measures + per-state toggles).
    std::size_t probes = 0;
    /// Simulated wall-clock the sweep consumed.
    double elapsed_s = 0.0;

    std::size_t num_suspect() const;
    std::vector<std::size_t> suspect_elements() const;

    /// The degraded search space: suspects frozen at their baseline
    /// states. Precondition: at least one element is healthy.
    surface::FrozenProjection freeze(const surface::ConfigSpace& space,
                                     const surface::Config& baseline) const;
};

struct ProbeOptions {
    /// An element is healthy when some state moves the mean SNR by at
    /// least this much; below it the element is flagged. Must clear the
    /// measurement-noise floor or healthy elements will be flagged too.
    double response_threshold_db = 0.75;
    /// Full sweep repetitions; the response is the max across sweeps
    /// (repeats beat measurement noise and catch intermittent switches
    /// in their cooperative moments).
    std::size_t sweeps = 2;
    /// When non-empty and the sweep flags at least one suspect element,
    /// the obs flight recorder (if armed) is dumped to
    /// `flight_<name>.json` — the post-mortem of what the control plane
    /// was doing as the hardware degraded.
    std::string flight_dump_name;
};

/// Runs per-element probe sweeps through the same apply/measure callbacks
/// a Controller uses.
class HealthMonitor {
public:
    HealthMonitor(control::ApplyFn apply, control::MeasureFn measure,
                  std::size_t num_links, std::size_t num_subcarriers);

    /// Sweeps every element of `space` against `baseline`. Prices each
    /// probe with `model` (accumulated into the report and onto `clock`
    /// when given). Leaves `baseline` re-applied.
    HealthReport probe(const surface::ConfigSpace& space,
                       const surface::Config& baseline,
                       const control::ControlPlaneModel& model,
                       const ProbeOptions& options = {},
                       control::SimClock* clock = nullptr);

private:
    /// Mean measured SNR (dB) across links and subcarriers.
    double mean_snr_db();

    control::ApplyFn apply_;
    control::MeasureFn measure_;
    std::size_t num_links_;
    std::size_t num_subcarriers_;
};

}  // namespace press::fault
