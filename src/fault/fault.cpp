#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numeric>

#include "press/load.hpp"
#include "util/contracts.hpp"
#include "util/units.hpp"

namespace press::fault {

const char* to_string(FaultType type) {
    switch (type) {
        case FaultType::kStuckAt:
            return "stuck-at";
        case FaultType::kDead:
            return "dead";
        case FaultType::kPhaseDrift:
            return "phase-drift";
        case FaultType::kFlaky:
            return "flaky";
    }
    return "unknown";
}

void FaultModel::add(const Fault& fault) {
    PRESS_EXPECTS(fault.flake_prob >= 0.0 && fault.flake_prob <= 1.0,
                  "flake probability must be a probability");
    for (Fault& existing : faults_) {
        if (existing.element == fault.element) {
            existing = fault;
            return;
        }
    }
    faults_.push_back(fault);
}

FaultModel FaultModel::sample(const surface::ConfigSpace& space,
                              double fraction, util::Rng& rng) {
    PRESS_EXPECTS(fraction >= 0.0 && fraction <= 1.0,
                  "faulty fraction must be in [0, 1]");
    FaultModel model(rng.fork());
    const std::size_t n = space.num_elements();
    const std::size_t count = static_cast<std::size_t>(
        std::ceil(fraction * static_cast<double>(n)));
    std::vector<std::size_t> indices(n);
    std::iota(indices.begin(), indices.end(), 0u);
    util::shuffle(indices, rng);
    for (std::size_t k = 0; k < count && k < n; ++k) {
        Fault f;
        f.element = indices[k];
        const double roll = rng.uniform(0.0, 1.0);
        if (roll < 0.40) {
            f.type = FaultType::kStuckAt;
            f.stuck_state = static_cast<int>(
                rng.uniform_int(0, space.radices()[f.element] - 1));
        } else if (roll < 0.70) {
            f.type = FaultType::kDead;
        } else if (roll < 0.85) {
            f.type = FaultType::kPhaseDrift;
            // 10-60 degrees of stub aging, either direction.
            f.drift_rad = rng.uniform(util::kPi / 18.0, util::kPi / 3.0) *
                          (rng.chance(0.5) ? 1.0 : -1.0);
        } else {
            f.type = FaultType::kFlaky;
            f.flake_prob = rng.uniform(0.3, 0.8);
        }
        model.add(f);
    }
    return model;
}

bool FaultModel::is_faulty(std::size_t element) const {
    for (const Fault& f : faults_)
        if (f.element == element) return true;
    return false;
}

void FaultModel::install(surface::Array& array) const {
    for (const Fault& f : faults_) {
        PRESS_EXPECTS(f.element < array.size(),
                      "fault names an element outside the array");
        surface::Element& e = array.element(f.element);
        if (f.type == FaultType::kDead) {
            // Every throw terminates into (leaky) heat.
            for (int s = 0; s < e.num_states(); ++s)
                e.set_load(s, surface::Load::absorptive());
        } else if (f.type == FaultType::kPhaseDrift) {
            const std::complex<double> rot =
                std::polar(1.0, f.drift_rad);
            for (int s = 0; s < e.num_states(); ++s) {
                surface::Load l = e.load(s);
                if (l.is_off()) continue;  // absorbers have no phase to age
                l.reflection *= rot;
                e.set_load(s, std::move(l));
            }
        }
    }
}

surface::Config FaultModel::distort(const surface::Config& requested,
                                    const surface::Config& current) {
    return distorted(requested, current, rng_);
}

surface::Config FaultModel::distorted(const surface::Config& requested,
                                      const surface::Config& current,
                                      util::Rng& rng) const {
    surface::Config actual;
    distorted_into(requested, current, rng, actual);
    return actual;
}

void FaultModel::distorted_into(const surface::Config& requested,
                                const surface::Config& current,
                                util::Rng& rng,
                                surface::Config& out) const {
    PRESS_EXPECTS(requested.size() == current.size(),
                  "requested/current configuration arity mismatch");
    out.assign(requested.begin(), requested.end());
    for (const Fault& f : faults_) {
        PRESS_EXPECTS(f.element < out.size(),
                      "fault names an element outside the configuration");
        switch (f.type) {
            case FaultType::kStuckAt:
                out[f.element] = f.stuck_state;
                break;
            case FaultType::kFlaky:
                if (rng.chance(f.flake_prob))
                    out[f.element] = current[f.element];
                break;
            case FaultType::kDead:
            case FaultType::kPhaseDrift:
                // The switch still actuates; the damage lives in the
                // loads, installed once by install().
                break;
        }
    }
}

void FaultModel::apply(surface::Array& array,
                       const surface::Config& requested) {
    array.apply(distort(requested, array.current_config()));
}

}  // namespace press::fault
