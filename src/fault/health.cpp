#include "fault/health.hpp"

#include <algorithm>
#include <cmath>

#include "control/message.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace press::fault {

std::size_t HealthReport::num_suspect() const {
    return static_cast<std::size_t>(
        std::count(suspect.begin(), suspect.end(), true));
}

std::vector<std::size_t> HealthReport::suspect_elements() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < suspect.size(); ++i)
        if (suspect[i]) out.push_back(i);
    return out;
}

surface::FrozenProjection HealthReport::freeze(
    const surface::ConfigSpace& space,
    const surface::Config& baseline) const {
    PRESS_EXPECTS(suspect.size() == space.num_elements(),
                  "report does not match this space");
    return surface::FrozenProjection(space, suspect, baseline);
}

HealthMonitor::HealthMonitor(control::ApplyFn apply,
                             control::MeasureFn measure,
                             std::size_t num_links,
                             std::size_t num_subcarriers)
    : apply_(std::move(apply)),
      measure_(std::move(measure)),
      num_links_(num_links),
      num_subcarriers_(num_subcarriers) {
    PRESS_EXPECTS(apply_ != nullptr, "apply callback required");
    PRESS_EXPECTS(measure_ != nullptr, "measure callback required");
}

double HealthMonitor::mean_snr_db() {
    const control::Observation obs = measure_();
    PRESS_EXPECTS(!obs.link_snr_db.empty(), "observation carries no links");
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto& link : obs.link_snr_db) {
        for (double snr : link) {
            sum += snr;
            ++count;
        }
    }
    PRESS_EXPECTS(count > 0, "observation carries no subcarriers");
    return sum / static_cast<double>(count);
}

HealthReport HealthMonitor::probe(const surface::ConfigSpace& space,
                                  const surface::Config& baseline,
                                  const control::ControlPlaneModel& model,
                                  const ProbeOptions& options,
                                  control::SimClock* clock) {
    PRESS_EXPECTS(space.valid(baseline),
                  "baseline must be a valid configuration");
    PRESS_EXPECTS(options.sweeps >= 1, "need at least one sweep");
    obs::TraceSpan span("fault.health.probe", clock);

    const std::size_t n = space.num_elements();
    HealthReport report;
    report.suspect.assign(n, false);
    report.response_db.assign(n, 0.0);

    control::SetConfig probe_msg;
    probe_msg.config = baseline;
    const double trial_cost =
        model.config_trial_time_s(probe_msg, num_links_, num_subcarriers_);
    const auto charge = [&]() {
        ++report.probes;
        report.elapsed_s += trial_cost;
        if (clock != nullptr) clock->advance(trial_cost);
    };

    for (std::size_t sweep = 0; sweep < options.sweeps; ++sweep) {
        // Nested under the probe span, so a trace shows what each sweep
        // repetition cost in simulated time.
        obs::TraceSpan sweep_span("fault.health.sweep", clock);
        // Fresh baseline reference each sweep: slow channel drift between
        // sweeps must not masquerade as element response.
        if (!apply_(baseline)) {
            charge();
            continue;
        }
        const double base_snr = mean_snr_db();
        charge();

        for (std::size_t e = 0; e < n; ++e) {
            surface::Config cfg = baseline;
            for (int s = 0; s < space.radices()[e]; ++s) {
                if (s == baseline[e]) continue;
                cfg[e] = s;
                // Each probe pushes the full configuration, so the
                // previous element is back at baseline automatically.
                if (!apply_(cfg)) {
                    charge();
                    continue;  // delivery failed; this probe is blind
                }
                const double snr = mean_snr_db();
                charge();
                report.response_db[e] = std::max(
                    report.response_db[e], std::abs(snr - base_snr));
            }
        }
    }
    // Leave the array as we found it.
    (void)apply_(baseline);

    for (std::size_t e = 0; e < n; ++e)
        report.suspect[e] =
            report.response_db[e] < options.response_threshold_db;
    if (obs::enabled()) {
        auto& registry = obs::MetricsRegistry::global();
        registry.counter("fault.health.probe_sweeps").add(options.sweeps);
        registry.counter("fault.health.probes").add(report.probes);
        registry.counter("fault.health.suspect_elements")
            .add(report.num_suspect());
        registry.gauge("fault.health.last_probe_elapsed_s")
            .set(report.elapsed_s);
    }
    // Degradation detected: dump the flight recorder before anything
    // else overwrites the window, so the post-mortem shows what the
    // control plane was doing as the hardware went bad.
    if (!options.flight_dump_name.empty() && report.num_suspect() > 0 &&
        obs::flight_armed())
        (void)obs::write_flight(options.flight_dump_name);
    return report;
}

}  // namespace press::fault
