#include "phy/rate.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/kernels.hpp"
#include "util/units.hpp"

namespace press::phy {

const std::vector<Mcs>& mcs_table() {
    static const std::vector<Mcs> table = {
        {Modulation::kBpsk, 0.5, 6.0, 5.0, "BPSK 1/2"},
        {Modulation::kBpsk, 0.75, 9.0, 6.8, "BPSK 3/4"},
        {Modulation::kQpsk, 0.5, 12.0, 8.0, "QPSK 1/2"},
        {Modulation::kQpsk, 0.75, 18.0, 11.0, "QPSK 3/4"},
        {Modulation::kQam16, 0.5, 24.0, 15.0, "16-QAM 1/2"},
        {Modulation::kQam16, 0.75, 36.0, 18.5, "16-QAM 3/4"},
        {Modulation::kQam64, 2.0 / 3.0, 48.0, 22.5, "64-QAM 2/3"},
        {Modulation::kQam64, 0.75, 54.0, 24.0, "64-QAM 3/4"},
    };
    return table;
}

double effective_snr_db(const std::vector<double>& per_subcarrier_snr_db) {
    PRESS_EXPECTS(!per_subcarrier_snr_db.empty(), "empty SNR profile");
    return util::kernels::effective_snr_db(util::kernels::active(),
                                           per_subcarrier_snr_db.data(),
                                           per_subcarrier_snr_db.size());
}

double effective_snr_db_reference(
    const std::vector<double>& per_subcarrier_snr_db) {
    PRESS_EXPECTS(!per_subcarrier_snr_db.empty(), "empty SNR profile");
    double acc = 0.0;
    for (double snr_db : per_subcarrier_snr_db)
        acc += std::log2(1.0 + util::db_to_linear(snr_db));
    const double mean_bits =
        acc / static_cast<double>(per_subcarrier_snr_db.size());
    return util::linear_to_db(std::pow(2.0, mean_bits) - 1.0);
}

std::optional<Mcs> select_mcs(double effective_snr_db) {
    std::optional<Mcs> best;
    for (const Mcs& m : mcs_table())
        if (effective_snr_db >= m.min_snr_db) best = m;
    return best;
}

double expected_throughput_mbps(
    const std::vector<double>& per_subcarrier_snr_db) {
    const auto mcs = select_mcs(effective_snr_db(per_subcarrier_snr_db));
    return mcs ? mcs->rate_mbps : 0.0;
}

}  // namespace press::phy
