// OFDM frame construction and parsing.
//
// A frame is `num_ltf` repeated long-training symbols followed by
// `num_data` payload symbols. The parser assumes symbol timing is known
// (the simulated chains control timing exactly; packet detection is out of
// scope for reproducing the paper's channel measurements) and produces raw
// per-LTF channel estimates, a CFO estimate from LTF repetition, and
// equalized payload symbols.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/modulation.hpp"
#include "phy/ofdm.hpp"
#include "util/cvec.hpp"
#include "util/rng.hpp"

namespace press::phy {

/// Shape of a frame.
struct FrameSpec {
    std::size_t num_ltf = 4;
    std::size_t num_data = 0;
    Modulation modulation = Modulation::kQpsk;
};

/// A built frame ready for the air.
struct TxFrame {
    util::CVec samples;                    ///< time-domain baseband samples
    std::vector<std::uint8_t> payload_bits; ///< bits carried by the payload
    std::vector<util::CVec> data_symbols;  ///< per-symbol used-subcarrier values
    double ltf_pilot_scale = 1.0;          ///< amplitude applied to LTF pilots
};

/// Parser output.
struct RxFrame {
    /// Raw per-repetition channel estimates (one CVec of used subcarriers
    /// per LTF symbol), each already divided by the known pilots.
    std::vector<util::CVec> ltf_estimates;
    /// CFO estimate [Hz] from the phase drift between consecutive LTFs
    /// (zero when num_ltf < 2).
    double cfo_estimate_hz = 0.0;
    /// Payload symbols equalized by the mean LTF estimate.
    std::vector<util::CVec> equalized_data;
    /// Decoded payload bits (hard decision).
    std::vector<std::uint8_t> payload_bits;
};

/// Total samples in a frame with the given spec.
std::size_t frame_length_samples(const OfdmParams& params,
                                 const FrameSpec& spec);

/// Builds a frame; payload bits are drawn from `rng`. Every OFDM symbol has
/// unit average sample power.
TxFrame build_frame(const OfdmParams& params, const FrameSpec& spec,
                    util::Rng& rng);

/// Parses `samples` (which must contain at least frame_length_samples()
/// samples, frame-aligned at index 0). When `correct_cfo` is set, the
/// estimated CFO is removed before payload demodulation.
RxFrame parse_frame(const OfdmParams& params, const FrameSpec& spec,
                    const util::CVec& samples, bool correct_cfo = false);

/// Error vector magnitude (RMS, linear) of equalized symbols against the
/// nearest constellation point.
double evm_rms(const std::vector<util::CVec>& equalized, Modulation m);

}  // namespace press::phy
