// MIMO channel sounding and conditioning metrics.
//
// The Figure-8 experiment measures the 2x2 channel matrix per subcarrier
// for every PRESS configuration and reports the distribution of the matrix
// condition number, "critically important to the channel capacity". We
// sound an Nt x Nr channel by sending LTFs from one transmit antenna at a
// time (orthogonal in time) and assembling per-subcarrier matrices, then
// compute condition numbers and equal-power Shannon capacity.
#pragma once

#include <vector>

#include "util/cvec.hpp"
#include "util/matrix.hpp"

namespace press::phy {

/// Per-subcarrier MIMO channel: estimate[k] is the Nr x Nt matrix on used
/// subcarrier k.
struct MimoChannelEstimate {
    std::vector<util::Matrix> h;

    std::size_t num_subcarriers() const { return h.size(); }
    std::size_t num_rx() const { return h.empty() ? 0 : h.front().rows(); }
    std::size_t num_tx() const { return h.empty() ? 0 : h.front().cols(); }
};

/// Assembles per-subcarrier channel matrices from per-TX-antenna SIMO
/// estimates: columns[t][r] is the per-subcarrier estimate from TX antenna
/// t to RX antenna r. All vectors must have equal length.
MimoChannelEstimate assemble_mimo(
    const std::vector<std::vector<util::CVec>>& columns);

/// Condition number (dB) of every per-subcarrier matrix.
std::vector<double> condition_numbers_db(const MimoChannelEstimate& est);

/// Equal-power Shannon capacity [bit/s/Hz] of one channel matrix at the
/// given average per-receive-antenna SNR: log2 det(I + (snr/Nt) H H^H)
/// with H normalized to unit average element power.
double mimo_capacity_bps_hz(const util::Matrix& h, double snr_linear);

/// Mean capacity across subcarriers.
double mean_capacity_bps_hz(const MimoChannelEstimate& est,
                            double snr_linear);

}  // namespace press::phy
