// OFDM numerology.
//
// The paper's endpoints transmit "Wi-Fi-like OFDM signals comprised of 64
// subcarriers over 20 MHz on channel 11 of the ISM band (2.462 GHz)". The
// Figure-7 harmonization experiment uses USRP N210s and reports 102 usable
// subcarriers; we model that as a 128-point grid with 51 used bins per side.
#pragma once

#include <cstddef>
#include <vector>

#include "util/cvec.hpp"

namespace press::phy {

/// Static description of one OFDM signal format.
class OfdmParams {
public:
    /// Builds a format. `used_offsets` are logical subcarrier offsets from
    /// DC (negative = below carrier), each in (-fft/2, fft/2), strictly
    /// ascending, not containing 0 (DC is never modulated).
    OfdmParams(std::size_t fft_size, std::size_t cp_length,
               double sample_rate_hz, double carrier_hz,
               std::vector<int> used_offsets);

    /// The WARP/Wi-Fi format of the paper's Sections 3.2.1-3.2.3: 64-point
    /// FFT, 16-sample cyclic prefix, 20 MHz at 2.462 GHz, 52 used
    /// subcarriers (offsets -26..-1, +1..+26).
    static OfdmParams wifi20();

    /// The N210-like format of Figure 7: 128-point FFT, 32-sample CP,
    /// 20 MHz at 2.462 GHz, 102 used subcarriers (offsets -51..-1, +1..+51).
    static OfdmParams n210_wideband();

    /// The Wi-Fi 6E 160 MHz regime (modeled): 2048-point FFT, 512-sample
    /// CP, 160 MHz at 6.025 GHz (6 GHz U-NII-5, 160 MHz channel centered
    /// on channel 15), 996 used subcarriers — offsets ±3..±500 with a
    /// 5-bin DC null, the 996-tone-RU shape of 802.11ax channelization.
    static OfdmParams wifi6e_160();

    /// The Wi-Fi 7 320 MHz regime (modeled): 4096-point FFT, 1024-sample
    /// CP, 320 MHz at 6.105 GHz (6 GHz, 320 MHz channel centered on
    /// channel 31), 1960 used subcarriers — offsets ±5..±984 with a
    /// 9-bin DC null.
    static OfdmParams wifi7_320();

    std::size_t fft_size() const { return fft_size_; }
    std::size_t cp_length() const { return cp_length_; }
    double sample_rate_hz() const { return sample_rate_hz_; }
    double carrier_hz() const { return carrier_hz_; }

    /// Spacing between adjacent subcarriers [Hz].
    double subcarrier_spacing_hz() const {
        return sample_rate_hz_ / static_cast<double>(fft_size_);
    }

    /// Duration of one OFDM symbol including its cyclic prefix [s].
    double symbol_duration_s() const {
        return static_cast<double>(fft_size_ + cp_length_) / sample_rate_hz_;
    }

    /// Number of data-bearing subcarriers.
    std::size_t num_used() const { return used_offsets_.size(); }

    /// Logical offset from DC of used subcarrier `i` (i in [0, num_used)).
    int used_offset(std::size_t i) const;

    const std::vector<int>& used_offsets() const { return used_offsets_; }

    /// Absolute RF frequency [Hz] of used subcarrier `i`.
    double subcarrier_frequency_hz(std::size_t i) const;

    /// Absolute RF frequencies of every used subcarrier, in index order.
    std::vector<double> used_frequencies_hz() const;

    /// FFT bin (0..fft_size-1, DC at bin 0) of used subcarrier `i`.
    std::size_t fft_bin(std::size_t i) const;

    /// Scatters per-used-subcarrier values onto a full FFT grid (unused bins
    /// zero), ready for ifft().
    util::CVec place_on_grid(const util::CVec& used_values) const;

    /// Gathers used-subcarrier values from a full FFT grid.
    util::CVec gather_from_grid(const util::CVec& grid) const;

private:
    std::size_t fft_size_;
    std::size_t cp_length_;
    double sample_rate_hz_;
    double carrier_hz_;
    std::vector<int> used_offsets_;
};

}  // namespace press::phy
