// Resource-unit masks over the used-subcarrier axis.
//
// 802.11ax/be OFDMA splits a wide channel's used tones into resource
// units (RUs), and preamble puncturing turns whole RUs off — a 160 MHz
// transmission may skip the 20 MHz slice an incumbent occupies. An
// RuMask captures both: a partition of the used-subcarrier index space
// [0, num_used) into contiguous RU ranges, plus a per-RU active flag.
//
// Everything downstream consumes the mask through two precomputed views:
//   - active_ranges(): the active tones as merged ascending half-open
//     ranges (what the masked accumulate/gather kernels walk), and
//   - active_indices(): the active tones as a flat ascending index list
//     (the dense compaction order of masked scoring — see
//     util::kernels masked_* and DESIGN.md §15).
// Masks are immutable after construction; punctured()/complement()
// return new masks, so a mask shared across worker threads is safe.
//
// Indices are positions on the used-subcarrier axis (0..num_used-1 in
// OfdmParams::used_offsets() order), NOT FFT bins — the mask composes
// with any numerology width and never cares about the DC null.
#pragma once

#include <cstddef>
#include <vector>

namespace press::phy {

/// Half-open range [first, last) of used-subcarrier indices.
struct RuRange {
    std::size_t first = 0;
    std::size_t last = 0;

    std::size_t size() const { return last - first; }
    friend bool operator==(const RuRange& a, const RuRange& b) {
        return a.first == b.first && a.last == b.last;
    }
};

/// A partition of [0, num_used) into contiguous resource units with
/// per-RU active flags. See file comment for the index convention.
class RuMask {
public:
    /// Empty mask (no tones, no RUs).
    RuMask() = default;

    /// One RU spanning every used tone, active — the "no masking" shape.
    static RuMask full(std::size_t num_used);

    /// `num_ru` contiguous equal-split RUs over [0, num_used), all
    /// active. When num_ru does not divide num_used the remainder tones
    /// go one-per-RU to the lowest RUs (sizes differ by at most one).
    /// A modeled regularization of the 26/52/…/996-tone 802.11ax RU
    /// ladder: partitioning and puncturing algebra is what the control
    /// plane consumes, not the exact standard tone plan.
    static RuMask uniform(std::size_t num_used, std::size_t num_ru);

    /// A copy of this mask with the listed RUs punctured (marked
    /// inactive). RU indices must be < num_ru(); puncturing an already
    /// inactive RU is a no-op.
    RuMask punctured(const std::vector<std::size_t>& rus) const;

    /// A copy with every RU's active flag flipped. complement() of a
    /// punctured mask selects exactly the punctured tones — the "steer
    /// the null INTO the punctured RU" objective reads through this.
    RuMask complement() const;

    std::size_t num_used() const { return num_used_; }
    std::size_t num_ru() const { return rus_.size(); }
    const RuRange& ru(std::size_t i) const;
    bool ru_active(std::size_t i) const;

    /// Number of active tones (sum of active RU sizes).
    std::size_t num_active() const { return active_indices_.size(); }

    /// True when every tone is active.
    bool is_full() const { return num_active() == num_used_; }

    /// Active tones as maximal merged half-open ranges, ascending.
    const std::vector<RuRange>& active_ranges() const {
        return active_ranges_;
    }

    /// Active tone indices, ascending — the dense order masked kernels
    /// compact into.
    const std::vector<std::size_t>& active_indices() const {
        return active_indices_;
    }

    /// The active ranges widened to `tile_width` boundaries and merged:
    /// the minimal set of tile-aligned spans a tiled basis must stream to
    /// cover every active tone (the last span is clipped to num_used).
    /// Used to bound cache accumulation to the tiles masked objectives
    /// actually read (core::LinkCache::kTileSubcarriers).
    std::vector<RuRange> tile_spans(std::size_t tile_width) const;

    friend bool operator==(const RuMask& a, const RuMask& b) {
        return a.num_used_ == b.num_used_ && a.rus_ == b.rus_ &&
               a.active_ == b.active_;
    }

private:
    void rebuild_views();

    std::size_t num_used_ = 0;
    std::vector<RuRange> rus_;   ///< contiguous partition of [0, num_used)
    std::vector<bool> active_;   ///< per-RU flag, parallel to rus_
    std::vector<RuRange> active_ranges_;
    std::vector<std::size_t> active_indices_;
};

}  // namespace press::phy
