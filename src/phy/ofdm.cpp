#include "phy/ofdm.hpp"

#include "util/contracts.hpp"

namespace press::phy {

namespace {
std::vector<int> symmetric_offsets(int half) {
    std::vector<int> offsets;
    offsets.reserve(static_cast<std::size_t>(2 * half));
    for (int o = -half; o <= half; ++o)
        if (o != 0) offsets.push_back(o);
    return offsets;
}

// Symmetric offsets with a widened DC null: |o| in [dc_null + 1, half] on
// both sides. The wideband Wi-Fi 6E/7 formats leave several bins around
// the carrier unmodulated (DC plus its neighbors), unlike the legacy
// formats' single-bin null.
std::vector<int> symmetric_offsets_dc_null(int half, int dc_null) {
    std::vector<int> offsets;
    offsets.reserve(static_cast<std::size_t>(2 * (half - dc_null)));
    for (int o = -half; o <= half; ++o)
        if (o < -dc_null || o > dc_null) offsets.push_back(o);
    return offsets;
}
}  // namespace

OfdmParams::OfdmParams(std::size_t fft_size, std::size_t cp_length,
                       double sample_rate_hz, double carrier_hz,
                       std::vector<int> used_offsets)
    : fft_size_(fft_size),
      cp_length_(cp_length),
      sample_rate_hz_(sample_rate_hz),
      carrier_hz_(carrier_hz),
      used_offsets_(std::move(used_offsets)) {
    PRESS_EXPECTS(fft_size_ >= 2, "FFT size must be at least 2");
    PRESS_EXPECTS(cp_length_ < fft_size_, "CP must be shorter than the FFT");
    PRESS_EXPECTS(sample_rate_hz_ > 0.0, "sample rate must be positive");
    PRESS_EXPECTS(carrier_hz_ > 0.0, "carrier must be positive");
    PRESS_EXPECTS(!used_offsets_.empty(), "need at least one used subcarrier");
    const int half = static_cast<int>(fft_size_) / 2;
    int prev = -half - 1;
    for (int o : used_offsets_) {
        PRESS_EXPECTS(o != 0, "DC subcarrier cannot be used");
        PRESS_EXPECTS(o > -half && o < half, "offset outside the FFT grid");
        PRESS_EXPECTS(o > prev, "offsets must be strictly ascending");
        prev = o;
    }
}

OfdmParams OfdmParams::wifi20() {
    return OfdmParams(64, 16, 20e6, 2.462e9, symmetric_offsets(26));
}

OfdmParams OfdmParams::n210_wideband() {
    return OfdmParams(128, 32, 20e6, 2.462e9, symmetric_offsets(51));
}

OfdmParams OfdmParams::wifi6e_160() {
    // 6 GHz band plan: channel centers sit at 5950 + 5*ch MHz; the first
    // 160 MHz channel is centered on ch 15 -> 6.025 GHz.
    return OfdmParams(2048, 512, 160e6, 6.025e9,
                      symmetric_offsets_dc_null(500, 2));
}

OfdmParams OfdmParams::wifi7_320() {
    // The first 320 MHz channel is centered on ch 31 -> 6.105 GHz.
    return OfdmParams(4096, 1024, 320e6, 6.105e9,
                      symmetric_offsets_dc_null(984, 4));
}

int OfdmParams::used_offset(std::size_t i) const {
    PRESS_EXPECTS(i < used_offsets_.size(), "used index out of range");
    return used_offsets_[i];
}

double OfdmParams::subcarrier_frequency_hz(std::size_t i) const {
    return carrier_hz_ +
           static_cast<double>(used_offset(i)) * subcarrier_spacing_hz();
}

std::vector<double> OfdmParams::used_frequencies_hz() const {
    std::vector<double> f;
    f.reserve(used_offsets_.size());
    for (std::size_t i = 0; i < used_offsets_.size(); ++i)
        f.push_back(subcarrier_frequency_hz(i));
    return f;
}

std::size_t OfdmParams::fft_bin(std::size_t i) const {
    const int o = used_offset(i);
    return o >= 0 ? static_cast<std::size_t>(o)
                  : fft_size_ - static_cast<std::size_t>(-o);
}

util::CVec OfdmParams::place_on_grid(const util::CVec& used_values) const {
    PRESS_EXPECTS(used_values.size() == num_used(),
                  "value count must match used subcarriers");
    util::CVec grid(fft_size_, util::cd{0.0, 0.0});
    for (std::size_t i = 0; i < used_values.size(); ++i)
        grid[fft_bin(i)] = used_values[i];
    return grid;
}

util::CVec OfdmParams::gather_from_grid(const util::CVec& grid) const {
    PRESS_EXPECTS(grid.size() == fft_size_, "grid size must match the FFT");
    util::CVec used(num_used());
    for (std::size_t i = 0; i < num_used(); ++i) used[i] = grid[fft_bin(i)];
    return used;
}

}  // namespace press::phy
