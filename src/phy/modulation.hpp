// Subcarrier modulation: Gray-coded BPSK / QPSK / 16-QAM / 64-QAM with unit
// average symbol energy, plus hard-decision demapping. Used for frame
// payloads and by the rate-adaptation layer's MCS definitions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/cvec.hpp"

namespace press::phy {

enum class Modulation { kBpsk, kQpsk, kQam16, kQam64 };

/// Bits carried per modulated symbol.
int bits_per_symbol(Modulation m);

/// Human-readable name ("BPSK", ...).
std::string to_string(Modulation m);

/// Maps a bit stream to symbols. The bit count must be a multiple of
/// bits_per_symbol(m). Average symbol energy is 1.
util::CVec modulate(const std::vector<std::uint8_t>& bits, Modulation m);

/// Hard-decision demapping back to bits (nearest constellation point).
std::vector<std::uint8_t> demodulate(const util::CVec& symbols, Modulation m);

/// Minimum squared half-distance between constellation points, in units of
/// average symbol energy; determines symbol error behaviour vs. noise.
double min_half_distance_sq(Modulation m);

}  // namespace press::phy
