#include "phy/modulation.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace press::phy {

namespace {

// Levels per I/Q axis for square constellations.
int levels_per_axis(Modulation m) {
    switch (m) {
        case Modulation::kBpsk: return 2;   // real axis only
        case Modulation::kQpsk: return 2;
        case Modulation::kQam16: return 4;
        case Modulation::kQam64: return 8;
    }
    return 2;
}

// Amplitude normalization so the average symbol energy is 1.
double axis_scale(Modulation m) {
    const int levels = levels_per_axis(m);
    if (m == Modulation::kBpsk) return 1.0;
    // Square QAM: E = 2 (L^2 - 1) / 3 before scaling.
    return std::sqrt(3.0 / (2.0 * (levels * levels - 1)));
}

unsigned binary_to_gray(unsigned v) { return v ^ (v >> 1); }

// Per-axis Gray demap table: level index (ascending amplitude) -> bits.
unsigned gray_bits_for_level(int level) {
    return binary_to_gray(static_cast<unsigned>(level));
}

// Extracts `n` bits MSB-first starting at `pos`.
unsigned take_bits(const std::vector<std::uint8_t>& bits, std::size_t pos,
                   int n) {
    unsigned v = 0;
    for (int i = 0; i < n; ++i) {
        const std::uint8_t b = bits[pos + static_cast<std::size_t>(i)];
        v = (v << 1) | (b & 1u);
    }
    return v;
}

void put_bits(std::vector<std::uint8_t>& bits, unsigned v, int n) {
    for (int i = n - 1; i >= 0; --i)
        bits.push_back(static_cast<std::uint8_t>((v >> i) & 1u));
}

// Finds the level whose Gray pattern equals `pattern` (inverse table).
int level_for_gray(unsigned pattern, int levels) {
    for (int l = 0; l < levels; ++l)
        if (gray_bits_for_level(l) == pattern) return l;
    return 0;  // unreachable for valid patterns
}

double level_amplitude(int level, int levels, double scale) {
    return scale * (2.0 * level - (levels - 1));
}

int nearest_level(double x, int levels, double scale) {
    // Invert level_amplitude and clamp.
    const int l = static_cast<int>(std::lround((x / scale + (levels - 1)) / 2.0));
    return std::max(0, std::min(levels - 1, l));
}

}  // namespace

int bits_per_symbol(Modulation m) {
    switch (m) {
        case Modulation::kBpsk: return 1;
        case Modulation::kQpsk: return 2;
        case Modulation::kQam16: return 4;
        case Modulation::kQam64: return 6;
    }
    return 1;
}

std::string to_string(Modulation m) {
    switch (m) {
        case Modulation::kBpsk: return "BPSK";
        case Modulation::kQpsk: return "QPSK";
        case Modulation::kQam16: return "16-QAM";
        case Modulation::kQam64: return "64-QAM";
    }
    return "?";
}

util::CVec modulate(const std::vector<std::uint8_t>& bits, Modulation m) {
    const int bps = bits_per_symbol(m);
    PRESS_EXPECTS(bits.size() % static_cast<std::size_t>(bps) == 0,
                  "bit count must be a multiple of bits-per-symbol");
    const int levels = levels_per_axis(m);
    const int bits_per_axis = bps / (m == Modulation::kBpsk ? 1 : 2);
    const double scale = axis_scale(m);
    util::CVec out;
    out.reserve(bits.size() / static_cast<std::size_t>(bps));
    for (std::size_t pos = 0; pos < bits.size();
         pos += static_cast<std::size_t>(bps)) {
        if (m == Modulation::kBpsk) {
            const unsigned b = take_bits(bits, pos, 1);
            out.push_back({b ? 1.0 : -1.0, 0.0});
            continue;
        }
        const unsigned bi = take_bits(bits, pos, bits_per_axis);
        const unsigned bq = take_bits(
            bits, pos + static_cast<std::size_t>(bits_per_axis),
            bits_per_axis);
        const int li = level_for_gray(bi, levels);
        const int lq = level_for_gray(bq, levels);
        out.push_back({level_amplitude(li, levels, scale),
                       level_amplitude(lq, levels, scale)});
    }
    return out;
}

std::vector<std::uint8_t> demodulate(const util::CVec& symbols,
                                     Modulation m) {
    const int bps = bits_per_symbol(m);
    const int levels = levels_per_axis(m);
    const int bits_per_axis = bps / (m == Modulation::kBpsk ? 1 : 2);
    const double scale = axis_scale(m);
    std::vector<std::uint8_t> bits;
    bits.reserve(symbols.size() * static_cast<std::size_t>(bps));
    for (const util::cd& s : symbols) {
        if (m == Modulation::kBpsk) {
            bits.push_back(s.real() >= 0.0 ? 1 : 0);
            continue;
        }
        const int li = nearest_level(s.real(), levels, scale);
        const int lq = nearest_level(s.imag(), levels, scale);
        put_bits(bits, gray_bits_for_level(li), bits_per_axis);
        put_bits(bits, gray_bits_for_level(lq), bits_per_axis);
    }
    return bits;
}

double min_half_distance_sq(Modulation m) {
    if (m == Modulation::kBpsk) return 1.0;
    const double scale = axis_scale(m);
    return scale * scale;  // half of the 2*scale level spacing, squared
}

}  // namespace press::phy
