#include "phy/chanest.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace press::phy {

std::vector<double> ChannelEstimate::snr_db(double cap_db,
                                            double floor_db) const {
    PRESS_EXPECTS(h.size() == noise_var.size(),
                  "estimate and noise vectors must align");
    PRESS_EXPECTS(floor_db < cap_db, "floor must sit below the cap");
    std::vector<double> out(h.size());
    for (std::size_t k = 0; k < h.size(); ++k) {
        const double sig = std::norm(h[k]);
        if (noise_var[k] <= 0.0 || sig <= 0.0) {
            out[k] = sig <= 0.0 ? floor_db : cap_db;
            continue;
        }
        out[k] = std::clamp(util::linear_to_db(sig / noise_var[k]),
                            floor_db, cap_db);
    }
    return out;
}

std::vector<double> ChannelEstimate::snr_db_masked(const RuMask& mask,
                                                   double cap_db,
                                                   double floor_db) const {
    PRESS_EXPECTS(h.size() == noise_var.size(),
                  "estimate and noise vectors must align");
    PRESS_EXPECTS(mask.num_used() == h.size(),
                  "mask must span the estimate's subcarriers");
    PRESS_EXPECTS(floor_db < cap_db, "floor must sit below the cap");
    const std::vector<std::size_t>& idx = mask.active_indices();
    std::vector<double> out(idx.size());
    for (std::size_t i = 0; i < idx.size(); ++i) {
        const std::size_t k = idx[i];
        const double sig = std::norm(h[k]);
        if (noise_var[k] <= 0.0 || sig <= 0.0) {
            out[i] = sig <= 0.0 ? floor_db : cap_db;
            continue;
        }
        out[i] = std::clamp(util::linear_to_db(sig / noise_var[k]),
                            floor_db, cap_db);
    }
    return out;
}

ChannelEstimate combine_ltf_estimates(const std::vector<util::CVec>& raw) {
    PRESS_EXPECTS(raw.size() >= 2,
                  "noise estimation needs at least two repetitions");
    const std::size_t n = raw.front().size();
    for (const util::CVec& r : raw)
        PRESS_EXPECTS(r.size() == n, "repetitions must have equal length");

    ChannelEstimate est;
    est.num_repetitions = raw.size();
    est.h.assign(n, util::cd{0.0, 0.0});
    est.noise_var.assign(n, 0.0);

    const double count = static_cast<double>(raw.size());
    for (const util::CVec& r : raw)
        for (std::size_t k = 0; k < n; ++k) est.h[k] += r[k] / count;

    for (const util::CVec& r : raw)
        for (std::size_t k = 0; k < n; ++k)
            est.noise_var[k] += std::norm(r[k] - est.h[k]) / (count - 1.0);
    return est;
}

std::optional<NullInfo> find_null(const std::vector<double>& snr_db,
                                  double threshold_db) {
    PRESS_EXPECTS(!snr_db.empty(), "empty SNR profile");
    PRESS_EXPECTS(threshold_db >= 0.0, "threshold must be non-negative");
    const auto min_it = std::min_element(snr_db.begin(), snr_db.end());
    const double med = util::median(snr_db);
    if (med - *min_it < threshold_db) return std::nullopt;
    NullInfo info;
    info.subcarrier =
        static_cast<std::size_t>(min_it - snr_db.begin());
    info.depth_db = med - *min_it;
    return info;
}

}  // namespace press::phy
