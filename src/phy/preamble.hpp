// Training (preamble) sequences.
//
// Channel estimation uses known BPSK pilots on every used subcarrier, sent
// as repeated "long training field" (LTF) symbols exactly as the paper's
// receiver "estimates the channel state information from the training
// sequences in the frame". For the 52-subcarrier Wi-Fi format we use the
// standard 802.11 L-LTF sequence; other formats get a deterministic
// pseudo-random BPSK sequence (same at TX and RX by construction).
#pragma once

#include "phy/ofdm.hpp"
#include "util/cvec.hpp"

namespace press::phy {

/// The frequency-domain LTF pilot values (+-1) on the used subcarriers of
/// `params`, in used-index order.
util::CVec ltf_pilots(const OfdmParams& params);

/// One time-domain LTF OFDM symbol (CP + body), unit average sample power
/// over the body.
util::CVec ltf_time_symbol(const OfdmParams& params);

}  // namespace press::phy
