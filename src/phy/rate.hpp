// Rate adaptation: mapping channel quality to achievable bit rate.
//
// The paper's first motivation is that a "flatter" channel lets the OFDM
// modulation and coding "offer a greater bit rate, and hence throughput, to
// higher layers". This module quantifies that with an 802.11a/g-style MCS
// table: an effective SNR (capacity-averaged across subcarriers) selects
// the highest MCS whose threshold it clears.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "phy/modulation.hpp"

namespace press::phy {

/// One modulation-and-coding scheme.
struct Mcs {
    Modulation modulation;
    double code_rate;       ///< e.g. 0.5, 0.75
    double rate_mbps;       ///< PHY rate in a 20 MHz channel
    double min_snr_db;      ///< required effective SNR
    std::string name;
};

/// The 802.11a/g table (6..54 Mbps) with commonly used SNR thresholds.
const std::vector<Mcs>& mcs_table();

/// Capacity-equivalent effective SNR of a frequency-selective channel:
/// eff = 2^(mean_k log2(1 + snr_k)) - 1, in dB. This penalizes nulls the
/// way a real decoder does (hard subcarriers dominate coded performance).
/// Computed through util::kernels::effective_snr_db (the dispatched
/// blocked-reduction kernel, bit-identical across PRESS_KERNEL flavors);
/// the capacity fold's association differs from the serial reference
/// below by ulps at most, never by an MCS decision at realistic widths.
double effective_snr_db(const std::vector<double>& per_subcarrier_snr_db);

/// The original serial capacity fold, kept as the bitwise reference the
/// kernel flavors are tested against (tests/test_wideband.cpp): plain
/// left-to-right accumulation, no blocking.
double effective_snr_db_reference(
    const std::vector<double>& per_subcarrier_snr_db);

/// Highest MCS whose threshold the effective SNR clears; nullopt when even
/// the lowest rate cannot be sustained.
std::optional<Mcs> select_mcs(double effective_snr_db);

/// Expected PHY throughput [Mbps] of a channel given its per-subcarrier SNR
/// profile (0 when no MCS is sustainable).
double expected_throughput_mbps(
    const std::vector<double>& per_subcarrier_snr_db);

}  // namespace press::phy
