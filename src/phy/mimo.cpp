#include "phy/mimo.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace press::phy {

MimoChannelEstimate assemble_mimo(
    const std::vector<std::vector<util::CVec>>& columns) {
    PRESS_EXPECTS(!columns.empty(), "need at least one TX antenna");
    const std::size_t nt = columns.size();
    const std::size_t nr = columns.front().size();
    PRESS_EXPECTS(nr >= 1, "need at least one RX antenna");
    const std::size_t nsc = columns.front().front().size();
    for (const auto& col : columns) {
        PRESS_EXPECTS(col.size() == nr, "ragged RX antenna count");
        for (const util::CVec& v : col)
            PRESS_EXPECTS(v.size() == nsc, "ragged subcarrier count");
    }
    MimoChannelEstimate est;
    est.h.reserve(nsc);
    for (std::size_t k = 0; k < nsc; ++k) {
        util::Matrix m(nr, nt);
        for (std::size_t t = 0; t < nt; ++t)
            for (std::size_t r = 0; r < nr; ++r)
                m.at(r, t) = columns[t][r][k];
        est.h.push_back(std::move(m));
    }
    return est;
}

std::vector<double> condition_numbers_db(const MimoChannelEstimate& est) {
    std::vector<double> out;
    out.reserve(est.h.size());
    for (const util::Matrix& m : est.h) out.push_back(m.condition_number_db());
    return out;
}

double mimo_capacity_bps_hz(const util::Matrix& h, double snr_linear) {
    PRESS_EXPECTS(snr_linear >= 0.0, "SNR must be non-negative");
    const std::size_t nt = h.cols();
    // Normalize H to unit average element power so `snr_linear` really is
    // the average per-antenna receive SNR.
    const double fro2 = h.frobenius_norm() * h.frobenius_norm();
    if (fro2 <= 0.0) return 0.0;
    const double norm2 =
        fro2 / static_cast<double>(h.rows() * h.cols());
    double cap = 0.0;
    for (double s : h.singular_values()) {
        const double s2 = s * s / norm2;
        cap += std::log2(1.0 + snr_linear * s2 /
                                   static_cast<double>(nt));
    }
    return cap;
}

double mean_capacity_bps_hz(const MimoChannelEstimate& est,
                            double snr_linear) {
    PRESS_EXPECTS(!est.h.empty(), "empty MIMO estimate");
    double acc = 0.0;
    for (const util::Matrix& m : est.h)
        acc += mimo_capacity_bps_hz(m, snr_linear);
    return acc / static_cast<double>(est.h.size());
}

}  // namespace press::phy
