#include "phy/frame.hpp"

#include <cmath>

#include "phy/preamble.hpp"
#include "util/contracts.hpp"
#include "util/fft.hpp"
#include "util/units.hpp"

namespace press::phy {

namespace {

// One time-domain OFDM symbol (CP + body) from used-subcarrier values,
// normalized to unit average sample power; returns the applied amplitude
// scale so the receiver can undo it.
std::pair<util::CVec, double> symbol_from_used(const OfdmParams& params,
                                               const util::CVec& used) {
    util::CVec body = util::ifft(params.place_on_grid(used));
    double p = 0.0;
    for (const util::cd& s : body) p += std::norm(s);
    p /= static_cast<double>(body.size());
    PRESS_ENSURES(p > 0.0, "symbol cannot be all-zero");
    const double g = 1.0 / std::sqrt(p);
    for (util::cd& s : body) s *= g;
    util::CVec symbol;
    symbol.reserve(params.cp_length() + body.size());
    symbol.insert(symbol.end(),
                  body.end() - static_cast<long>(params.cp_length()),
                  body.end());
    symbol.insert(symbol.end(), body.begin(), body.end());
    return {std::move(symbol), g};
}

// Gathers the used-subcarrier values of the symbol starting at `offset`.
util::CVec demod_symbol(const OfdmParams& params, const util::CVec& samples,
                        std::size_t offset) {
    util::CVec body(params.fft_size());
    for (std::size_t i = 0; i < params.fft_size(); ++i)
        body[i] = samples[offset + params.cp_length() + i];
    return params.gather_from_grid(util::fft(body));
}

}  // namespace

std::size_t frame_length_samples(const OfdmParams& params,
                                 const FrameSpec& spec) {
    return (spec.num_ltf + spec.num_data) *
           (params.fft_size() + params.cp_length());
}

TxFrame build_frame(const OfdmParams& params, const FrameSpec& spec,
                    util::Rng& rng) {
    PRESS_EXPECTS(spec.num_ltf >= 1, "a frame needs at least one LTF");
    TxFrame frame;
    frame.samples.reserve(frame_length_samples(params, spec));

    const util::CVec pilots = ltf_pilots(params);
    const auto [ltf_symbol, ltf_scale] = symbol_from_used(params, pilots);
    frame.ltf_pilot_scale = ltf_scale;
    for (std::size_t i = 0; i < spec.num_ltf; ++i)
        frame.samples.insert(frame.samples.end(), ltf_symbol.begin(),
                             ltf_symbol.end());

    const int bps = bits_per_symbol(spec.modulation);
    for (std::size_t s = 0; s < spec.num_data; ++s) {
        std::vector<std::uint8_t> bits(params.num_used() *
                                       static_cast<std::size_t>(bps));
        for (std::uint8_t& b : bits)
            b = static_cast<std::uint8_t>(rng.chance(0.5) ? 1 : 0);
        const util::CVec symbols = modulate(bits, spec.modulation);
        frame.payload_bits.insert(frame.payload_bits.end(), bits.begin(),
                                  bits.end());
        frame.data_symbols.push_back(symbols);
        // Payload symbols use the same fixed amplitude scale as the LTF
        // (rather than per-symbol normalization) so the channel estimate
        // equalizes them exactly; average sample power stays ~1 because the
        // constellations have unit average energy like the pilots.
        util::CVec body =
            util::ifft(params.place_on_grid(util::scale(symbols, ltf_scale)));
        util::CVec time_symbol;
        time_symbol.reserve(params.cp_length() + body.size());
        time_symbol.insert(time_symbol.end(),
                           body.end() - static_cast<long>(params.cp_length()),
                           body.end());
        time_symbol.insert(time_symbol.end(), body.begin(), body.end());
        frame.samples.insert(frame.samples.end(), time_symbol.begin(),
                             time_symbol.end());
    }
    return frame;
}

RxFrame parse_frame(const OfdmParams& params, const FrameSpec& spec,
                    const util::CVec& samples, bool correct_cfo) {
    PRESS_EXPECTS(samples.size() >= frame_length_samples(params, spec),
                  "sample buffer shorter than the frame");
    const std::size_t sym_len = params.fft_size() + params.cp_length();
    RxFrame rx;

    const util::CVec pilots = ltf_pilots(params);
    // The transmitter scaled LTF pilots by a known normalization; recompute
    // it the same way so estimates are in true channel units.
    const auto [ltf_symbol, ltf_scale] = symbol_from_used(params, pilots);
    (void)ltf_symbol;

    // CFO from the phase of the correlation between consecutive LTF symbol
    // bodies (spaced sym_len samples apart).
    if (spec.num_ltf >= 2) {
        util::cd corr{0.0, 0.0};
        for (std::size_t r = 0; r + 1 < spec.num_ltf; ++r) {
            const std::size_t a = r * sym_len + params.cp_length();
            const std::size_t b = a + sym_len;
            for (std::size_t i = 0; i < params.fft_size(); ++i)
                corr += std::conj(samples[a + i]) * samples[b + i];
        }
        const double phase = std::arg(corr);
        rx.cfo_estimate_hz = phase * params.sample_rate_hz() /
                             (util::kTwoPi * static_cast<double>(sym_len));
    }

    util::CVec work = samples;
    if (correct_cfo && rx.cfo_estimate_hz != 0.0) {
        for (std::size_t i = 0; i < work.size(); ++i) {
            const double ph = -util::kTwoPi * rx.cfo_estimate_hz *
                              static_cast<double>(i) /
                              params.sample_rate_hz();
            work[i] *= std::polar(1.0, ph);
        }
    }

    for (std::size_t r = 0; r < spec.num_ltf; ++r) {
        const util::CVec y = demod_symbol(params, work, r * sym_len);
        util::CVec h(params.num_used());
        for (std::size_t k = 0; k < params.num_used(); ++k)
            h[k] = y[k] / (pilots[k] * ltf_scale);
        rx.ltf_estimates.push_back(std::move(h));
    }

    // Mean channel estimate for equalization.
    util::CVec h_mean(params.num_used(), util::cd{0.0, 0.0});
    for (const util::CVec& h : rx.ltf_estimates)
        for (std::size_t k = 0; k < params.num_used(); ++k)
            h_mean[k] += h[k] / static_cast<double>(spec.num_ltf);

    for (std::size_t s = 0; s < spec.num_data; ++s) {
        const std::size_t offset = (spec.num_ltf + s) * sym_len;
        const util::CVec y = demod_symbol(params, work, offset);
        util::CVec eq(params.num_used());
        for (std::size_t k = 0; k < params.num_used(); ++k) {
            // Payload symbols were scaled by the same known LTF
            // normalization at the transmitter; undo it here.
            eq[k] = std::abs(h_mean[k]) > 0.0
                        ? y[k] / (h_mean[k] * ltf_scale)
                        : util::cd{0.0, 0.0};
        }
        const std::vector<std::uint8_t> bits =
            demodulate(eq, spec.modulation);
        rx.payload_bits.insert(rx.payload_bits.end(), bits.begin(),
                               bits.end());
        rx.equalized_data.push_back(std::move(eq));
    }
    return rx;
}

double evm_rms(const std::vector<util::CVec>& equalized, Modulation m) {
    double acc = 0.0;
    std::size_t n = 0;
    for (const util::CVec& sym : equalized) {
        const std::vector<std::uint8_t> bits = demodulate(sym, m);
        const util::CVec ideal = modulate(bits, m);
        for (std::size_t k = 0; k < sym.size(); ++k) {
            acc += std::norm(sym[k] - ideal[k]);
            ++n;
        }
    }
    return n == 0 ? 0.0 : std::sqrt(acc / static_cast<double>(n));
}

}  // namespace press::phy
