// Channel and SNR estimation from repeated training symbols.
//
// The paper's measurement pipeline: "the receiver estimates the channel
// state information from the training sequences in the frame", and per-
// subcarrier SNR statistics are computed over repeated measurements. Here
// the mean of the per-LTF least-squares estimates gives H-hat, and the
// sample variance across repetitions gives the per-subcarrier noise power,
// from which SNR-hat = |H-hat|^2 / var.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "phy/ru.hpp"
#include "util/cvec.hpp"

namespace press::phy {

/// Default SNR-estimate clamp range (see ChannelEstimate::snr_db). Named
/// so the fused scoring kernels (util::kernels::snr_db_*) can clamp with
/// exactly the same bounds without duplicating the literals.
inline constexpr double kSnrCapDb = 60.0;
inline constexpr double kSnrFloorDb = 0.0;

/// A combined channel estimate on the used subcarriers of one link.
struct ChannelEstimate {
    /// Mean least-squares channel estimate per used subcarrier.
    util::CVec h;
    /// Per-subcarrier variance of a single raw estimate (estimator noise).
    std::vector<double> noise_var;
    /// Number of training repetitions combined.
    std::size_t num_repetitions = 0;

    /// Estimated per-subcarrier SNR in dB (|h|^2 / noise_var), clamped to
    /// [floor_db, cap_db]: a real receiver cannot report SNRs beyond its
    /// estimator's dynamic range, and below ~0 dB the training correlation
    /// no longer locks (the paper's SNR plots bottom out at 0 dB).
    std::vector<double> snr_db(double cap_db = kSnrCapDb,
                               double floor_db = kSnrFloorDb) const;

    /// SNR over only `mask`'s active tones, densely packed in
    /// active-index order (one entry per active tone). Per-tone
    /// arithmetic is identical to snr_db() — entry i equals
    /// snr_db()[mask.active_indices()[i]] to the bit — which is the
    /// reference the masked fused kernels (util::kernels
    /// masked_snr_db_*) are tested against. The mask must span this
    /// estimate's subcarrier count.
    std::vector<double> snr_db_masked(const RuMask& mask,
                                      double cap_db = kSnrCapDb,
                                      double floor_db = kSnrFloorDb) const;
};

/// Combines raw per-repetition estimates (all the same length) into a
/// ChannelEstimate. Needs at least two repetitions to estimate noise.
ChannelEstimate combine_ltf_estimates(const std::vector<util::CVec>& raw);

/// A detected spectral null.
struct NullInfo {
    std::size_t subcarrier = 0;  ///< used-subcarrier index of the minimum
    double depth_db = 0.0;       ///< median SNR minus minimum SNR
};

/// Finds the most significant null of a per-subcarrier SNR profile: the
/// subcarrier with minimum SNR, provided it sits at least `threshold_db`
/// below the median (the paper's Figure-5 qualification rule). Returns
/// nullopt when the profile is too flat to contain a null.
std::optional<NullInfo> find_null(const std::vector<double>& snr_db,
                                  double threshold_db = 5.0);

}  // namespace press::phy
