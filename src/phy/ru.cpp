#include "phy/ru.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace press::phy {

RuMask RuMask::full(std::size_t num_used) {
    RuMask mask;
    mask.num_used_ = num_used;
    if (num_used > 0) {
        mask.rus_.push_back(RuRange{0, num_used});
        mask.active_.push_back(true);
    }
    mask.rebuild_views();
    return mask;
}

RuMask RuMask::uniform(std::size_t num_used, std::size_t num_ru) {
    PRESS_EXPECTS(num_ru >= 1, "need at least one resource unit");
    PRESS_EXPECTS(num_ru <= num_used || num_used == 0,
                  "more resource units than tones");
    RuMask mask;
    mask.num_used_ = num_used;
    const std::size_t base = num_used / num_ru;
    const std::size_t remainder = num_used % num_ru;
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < num_ru && num_used > 0; ++i) {
        const std::size_t width = base + (i < remainder ? 1 : 0);
        mask.rus_.push_back(RuRange{cursor, cursor + width});
        mask.active_.push_back(true);
        cursor += width;
    }
    PRESS_ENSURES(cursor == num_used, "RU partition must cover every tone");
    mask.rebuild_views();
    return mask;
}

RuMask RuMask::punctured(const std::vector<std::size_t>& rus) const {
    RuMask mask = *this;
    for (const std::size_t i : rus) {
        PRESS_EXPECTS(i < mask.rus_.size(), "punctured RU out of range");
        mask.active_[i] = false;
    }
    mask.rebuild_views();
    return mask;
}

RuMask RuMask::complement() const {
    RuMask mask = *this;
    for (std::size_t i = 0; i < mask.active_.size(); ++i)
        mask.active_[i] = !mask.active_[i];
    mask.rebuild_views();
    return mask;
}

const RuRange& RuMask::ru(std::size_t i) const {
    PRESS_EXPECTS(i < rus_.size(), "RU index out of range");
    return rus_[i];
}

bool RuMask::ru_active(std::size_t i) const {
    PRESS_EXPECTS(i < rus_.size(), "RU index out of range");
    return active_[i];
}

std::vector<RuRange> RuMask::tile_spans(std::size_t tile_width) const {
    PRESS_EXPECTS(tile_width >= 1, "tile width must be positive");
    std::vector<RuRange> spans;
    for (const RuRange& r : active_ranges_) {
        const std::size_t first = (r.first / tile_width) * tile_width;
        const std::size_t last =
            std::min(num_used_, ((r.last + tile_width - 1) / tile_width) *
                                    tile_width);
        if (!spans.empty() && first <= spans.back().last)
            spans.back().last = std::max(spans.back().last, last);
        else
            spans.push_back(RuRange{first, last});
    }
    return spans;
}

void RuMask::rebuild_views() {
    active_ranges_.clear();
    active_indices_.clear();
    for (std::size_t i = 0; i < rus_.size(); ++i) {
        if (!active_[i] || rus_[i].size() == 0) continue;
        // RUs are a contiguous ascending partition, so an active RU either
        // extends the previous merged range or starts a new one.
        if (!active_ranges_.empty() &&
            active_ranges_.back().last == rus_[i].first)
            active_ranges_.back().last = rus_[i].last;
        else
            active_ranges_.push_back(rus_[i]);
        for (std::size_t k = rus_[i].first; k < rus_[i].last; ++k)
            active_indices_.push_back(k);
    }
}

}  // namespace press::phy
