#include "phy/preamble.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/fft.hpp"
#include "util/rng.hpp"

namespace press::phy {

namespace {

// IEEE 802.11 L-LTF values for subcarriers -26..-1 (first 26) and +1..+26
// (last 26), DC omitted.
constexpr int kDot11Ltf[52] = {
    // -26 .. -1
    1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1,
    1, 1, 1, 1,
    // +1 .. +26
    1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1,
    1, -1, 1, 1, 1, 1};

bool is_dot11_layout(const OfdmParams& p) {
    if (p.fft_size() != 64 || p.num_used() != 52) return false;
    return p.used_offset(0) == -26 && p.used_offset(51) == 26;
}

}  // namespace

util::CVec ltf_pilots(const OfdmParams& params) {
    util::CVec pilots(params.num_used());
    if (is_dot11_layout(params)) {
        for (std::size_t i = 0; i < 52; ++i)
            pilots[i] = {static_cast<double>(kDot11Ltf[i]), 0.0};
        return pilots;
    }
    // Deterministic pseudo-random BPSK keyed by the format geometry so any
    // two parties constructing the same OfdmParams agree on the pilots.
    util::Rng rng(0xB1A5'0000u + params.fft_size() * 131u +
                  params.num_used());
    for (std::size_t i = 0; i < pilots.size(); ++i)
        pilots[i] = {rng.chance(0.5) ? 1.0 : -1.0, 0.0};
    return pilots;
}

util::CVec ltf_time_symbol(const OfdmParams& params) {
    const util::CVec grid = params.place_on_grid(ltf_pilots(params));
    util::CVec body = util::ifft(grid);
    // Normalize to unit average sample power over the body.
    double p = 0.0;
    for (const util::cd& s : body) p += std::norm(s);
    p /= static_cast<double>(body.size());
    PRESS_ENSURES(p > 0.0, "LTF body cannot be empty");
    const double g = 1.0 / std::sqrt(p);
    for (util::cd& s : body) s *= g;
    // Prepend the cyclic prefix.
    util::CVec symbol;
    symbol.reserve(params.cp_length() + body.size());
    symbol.insert(symbol.end(), body.end() - static_cast<long>(params.cp_length()),
                  body.end());
    symbol.insert(symbol.end(), body.begin(), body.end());
    return symbol;
}

}  // namespace press::phy
