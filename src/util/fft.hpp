// Fast Fourier transforms.
//
// The OFDM PHY needs forward/inverse DFTs at the FFT sizes of the modeled
// radios (64 for the WARP-like Wi-Fi chain, 128 for the N210-like chain).
// Power-of-two sizes use an iterative radix-2 Cooley-Tukey kernel; any other
// size falls back to Bluestein's algorithm so callers never need to care.
//
// Convention: fft() computes X_k = sum_n x_n e^{-j 2 pi k n / N} (no
// normalization); ifft() divides by N so ifft(fft(x)) == x.
#pragma once

#include "util/cvec.hpp"

namespace press::util {

/// Forward DFT of arbitrary length (radix-2 when N is a power of two,
/// Bluestein otherwise). Empty input yields empty output.
CVec fft(const CVec& x);

/// Inverse DFT, normalized by 1/N, so ifft(fft(x)) reproduces x.
CVec ifft(const CVec& x);

/// True when n is a nonzero power of two.
bool is_power_of_two(std::size_t n);

/// Circularly rotates v left by k positions (fftshift-style helpers are
/// built on this in the PHY layer).
CVec rotate_left(const CVec& v, std::size_t k);

}  // namespace press::util
