// Complex vector helpers.
//
// The library represents baseband signals and per-subcarrier channel
// responses as std::vector<std::complex<double>>; these free functions keep
// the call sites readable without committing to a heavyweight linear-algebra
// dependency.
#pragma once

#include <complex>
#include <vector>

namespace press::util {

using cd = std::complex<double>;
using CVec = std::vector<cd>;

/// Element-wise sum; vectors must be the same length.
CVec add(const CVec& a, const CVec& b);

/// Element-wise difference; vectors must be the same length.
CVec subtract(const CVec& a, const CVec& b);

/// Element-wise (Hadamard) product; vectors must be the same length.
CVec hadamard(const CVec& a, const CVec& b);

/// Element-wise quotient a ./ b; b must not contain zeros.
CVec divide(const CVec& a, const CVec& b);

/// Scales every element by s.
CVec scale(const CVec& a, cd s);

/// Inner product <a, b> = sum conj(a_i) * b_i.
cd inner(const CVec& a, const CVec& b);

/// Total energy sum |a_i|^2.
double energy(const CVec& a);

/// Mean power: energy / length. Zero-length vectors have zero power.
double mean_power(const CVec& a);

/// Per-element squared magnitudes.
std::vector<double> abs2(const CVec& a);

/// Per-element magnitudes.
std::vector<double> abs(const CVec& a);

/// Per-element phases in radians.
std::vector<double> arg(const CVec& a);

/// Linear convolution of a and b (length |a| + |b| - 1).
CVec convolve(const CVec& a, const CVec& b);

/// Maximum absolute difference between two equal-length vectors.
double max_abs_diff(const CVec& a, const CVec& b);

}  // namespace press::util
