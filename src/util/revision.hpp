// Process-unique revision stamps for cache invalidation.
//
// Mutable scene objects (environments, elements, arrays) stamp themselves
// with a fresh value from this counter on every structural mutation. A
// cache that remembers the stamp it was built against can then detect any
// later mutation — including wholesale reassignment of the object, since a
// replacement built elsewhere carries different stamps — with a plain
// integer comparison instead of fingerprinting the object's contents.
#pragma once

#include <atomic>
#include <cstdint>

namespace press::util {

/// Returns a fresh stamp, distinct from every stamp handed out before in
/// this process. Thread-safe.
inline std::uint64_t next_revision() {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace press::util
