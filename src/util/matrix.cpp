#include "util/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/contracts.hpp"
#include "util/units.hpp"

namespace press::util {

Matrix::Matrix(std::size_t rows, std::size_t cols, value_type fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<std::vector<value_type>>& rows) {
    PRESS_EXPECTS(!rows.empty(), "from_rows needs at least one row");
    const std::size_t cols = rows.front().size();
    Matrix m(rows.size(), cols);
    for (std::size_t r = 0; r < rows.size(); ++r) {
        PRESS_EXPECTS(rows[r].size() == cols, "ragged rows in from_rows");
        for (std::size_t c = 0; c < cols; ++c) m.at(r, c) = rows[r][c];
    }
    return m;
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m.at(i, i) = value_type{1.0, 0.0};
    return m;
}

Matrix::value_type& Matrix::at(std::size_t r, std::size_t c) {
    PRESS_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

const Matrix::value_type& Matrix::at(std::size_t r, std::size_t c) const {
    PRESS_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

Matrix Matrix::multiply(const Matrix& rhs) const {
    PRESS_EXPECTS(cols_ == rhs.rows_, "inner dimensions must agree");
    Matrix out(rows_, rhs.cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t k = 0; k < cols_; ++k) {
            const value_type a = data_[r * cols_ + k];
            if (a == value_type{0.0, 0.0}) continue;
            for (std::size_t c = 0; c < rhs.cols_; ++c)
                out.at(r, c) += a * rhs.data_[k * rhs.cols_ + c];
        }
    return out;
}

Matrix Matrix::hermitian() const {
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out.at(c, r) = std::conj(data_[r * cols_ + c]);
    return out;
}

double Matrix::frobenius_norm() const {
    double acc = 0.0;
    for (const value_type& v : data_) acc += std::norm(v);
    return std::sqrt(acc);
}

Matrix Matrix::inverse() const {
    if (rows_ != cols_)
        throw std::domain_error("inverse requires a square matrix");
    const std::size_t n = rows_;
    Matrix a = *this;
    Matrix inv = identity(n);
    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivoting: bring the largest remaining entry to the pivot.
        std::size_t pivot = col;
        double best = std::abs(a.at(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(a.at(r, col)) > best) {
                best = std::abs(a.at(r, col));
                pivot = r;
            }
        }
        if (best < 1e-300)
            throw std::domain_error("matrix is singular to working precision");
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c) {
                std::swap(a.at(pivot, c), a.at(col, c));
                std::swap(inv.at(pivot, c), inv.at(col, c));
            }
        }
        const value_type d = a.at(col, col);
        for (std::size_t c = 0; c < n; ++c) {
            a.at(col, c) /= d;
            inv.at(col, c) /= d;
        }
        for (std::size_t r = 0; r < n; ++r) {
            if (r == col) continue;
            const value_type f = a.at(r, col);
            if (f == value_type{0.0, 0.0}) continue;
            for (std::size_t c = 0; c < n; ++c) {
                a.at(r, c) -= f * a.at(col, c);
                inv.at(r, c) -= f * inv.at(col, c);
            }
        }
    }
    return inv;
}

namespace {

// Closed-form singular values of a 2x2 complex matrix from the eigenvalues
// of A^H A (a 2x2 Hermitian matrix).
std::vector<double> singular_values_2x2(const Matrix& m) {
    using value_type = Matrix::value_type;
    const Matrix g = m.hermitian().multiply(m);
    const double a = g.at(0, 0).real();
    const double d = g.at(1, 1).real();
    const value_type b = g.at(0, 1);
    const double tr = a + d;
    const double gap = std::sqrt(std::max(
        0.0, (a - d) * (a - d) + 4.0 * std::norm(b)));
    const double l1 = 0.5 * (tr + gap);
    const double l2 = 0.5 * (tr - gap);
    return {std::sqrt(std::max(0.0, l1)), std::sqrt(std::max(0.0, l2))};
}

// One-sided complex Jacobi: orthogonalizes the columns of A; the singular
// values are the resulting column norms.
std::vector<double> singular_values_jacobi(Matrix a) {
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    const double eps = 1e-14;
    bool converged = false;
    for (int sweep = 0; sweep < 60 && !converged; ++sweep) {
        converged = true;
        for (std::size_t p = 0; p + 1 < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                std::complex<double> cpq{0.0, 0.0};
                double app = 0.0;
                double aqq = 0.0;
                for (std::size_t r = 0; r < m; ++r) {
                    cpq += std::conj(a.at(r, p)) * a.at(r, q);
                    app += std::norm(a.at(r, p));
                    aqq += std::norm(a.at(r, q));
                }
                const double off = std::abs(cpq);
                if (off <= eps * std::sqrt(app * aqq) || off == 0.0) continue;
                converged = false;
                // Phase-rotate column q to make the inner product real, then
                // apply the classical real Jacobi rotation.
                const std::complex<double> phase =
                    std::conj(cpq) / off;  // e^{-j arg(cpq)}
                const double tau = (aqq - app) / (2.0 * off);
                const double t =
                    (tau >= 0.0 ? 1.0 : -1.0) /
                    (std::abs(tau) + std::sqrt(1.0 + tau * tau));
                const double cs = 1.0 / std::sqrt(1.0 + t * t);
                const double sn = cs * t;
                for (std::size_t r = 0; r < m; ++r) {
                    const std::complex<double> vp = a.at(r, p);
                    const std::complex<double> vq = a.at(r, q) * phase;
                    a.at(r, p) = cs * vp - sn * vq;
                    a.at(r, q) = sn * vp + cs * vq;
                }
            }
        }
    }
    std::vector<double> sv(n);
    for (std::size_t c = 0; c < n; ++c) {
        double acc = 0.0;
        for (std::size_t r = 0; r < m; ++r) acc += std::norm(a.at(r, c));
        sv[c] = std::sqrt(acc);
    }
    std::sort(sv.begin(), sv.end(), std::greater<>());
    return sv;
}

}  // namespace

std::vector<double> Matrix::singular_values() const {
    PRESS_EXPECTS(rows_ > 0 && cols_ > 0, "singular values of empty matrix");
    if (rows_ == 2 && cols_ == 2) return singular_values_2x2(*this);
    // Jacobi wants at least as many rows as columns; transposition does not
    // change the singular values.
    if (rows_ >= cols_) return singular_values_jacobi(*this);
    return singular_values_jacobi(hermitian());
}

double Matrix::condition_number() const {
    const std::vector<double> sv = singular_values();
    const double smin = sv.back();
    if (smin <= 0.0)
        throw std::domain_error("condition number of a rank-deficient matrix");
    return sv.front() / smin;
}

double Matrix::condition_number_db() const {
    return amplitude_to_db(condition_number());
}

}  // namespace press::util
