// Descriptive statistics and empirical distribution helpers.
//
// The paper reports its results almost entirely as CDFs and complementary
// CDFs over sets of measurements (Figures 5, 6, 8); EmpiricalDistribution is
// the shared representation the bench harnesses print.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace press::util {

/// Arithmetic mean; empty input is a precondition violation.
double mean(const std::vector<double>& v);

/// Unbiased sample variance (n-1 denominator); needs at least two samples.
double variance(const std::vector<double>& v);

/// Sample standard deviation.
double stddev(const std::vector<double>& v);

/// Median (average of middle two for even counts).
double median(std::vector<double> v);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> v, double p);

/// Smallest element.
double min_value(const std::vector<double>& v);

/// Largest element.
double max_value(const std::vector<double>& v);

/// An empirical distribution over a sample set, supporting CDF/CCDF queries
/// and fixed-grid dumps for plotting.
class EmpiricalDistribution {
public:
    /// Builds from samples (copied and sorted). Needs at least one sample.
    explicit EmpiricalDistribution(std::vector<double> samples);

    /// P[X <= x].
    double cdf(double x) const;

    /// P[X > x].
    double ccdf(double x) const { return 1.0 - cdf(x); }

    /// Inverse CDF by linear interpolation, q in [0, 1].
    double quantile(double q) const;

    std::size_t size() const { return sorted_.size(); }
    double min() const { return sorted_.front(); }
    double max() const { return sorted_.back(); }

    /// The sorted sample values.
    const std::vector<double>& samples() const { return sorted_; }

    /// Evaluates the CDF on `points` evenly spaced values spanning
    /// [min, max]; returns (x, cdf(x)) pairs.
    std::vector<std::pair<double, double>> cdf_grid(std::size_t points) const;

    /// Same grid for the complementary CDF.
    std::vector<std::pair<double, double>> ccdf_grid(std::size_t points) const;

private:
    std::vector<double> sorted_;
};

/// Counts samples per integer bin (for the discrete null-movement CCDF of
/// Figure 5). Returns counts indexed 0..max_bin.
std::vector<std::size_t> integer_histogram(const std::vector<double>& v,
                                           std::size_t max_bin);

/// Fraction of samples strictly greater than x.
double fraction_above(const std::vector<double>& v, double x);

/// Fraction of samples strictly less than x.
double fraction_below(const std::vector<double>& v, double x);

}  // namespace press::util
