// Dense complex matrices and the small-matrix linear algebra the MIMO layer
// needs: products, Hermitian transpose, Gauss-Jordan inverse, and singular
// values via one-sided Jacobi (with a closed form for the 2x2 case used by
// the Figure-8 condition-number experiment).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace press::util {

/// A row-major dense matrix of std::complex<double>. Sized for the small
/// (2x2 .. 16x16) channel matrices of MIMO sounding; algorithms favor
/// clarity and numerical robustness over asymptotic speed.
class Matrix {
public:
    using value_type = std::complex<double>;

    /// Creates an uninitialized 0x0 matrix.
    Matrix() = default;

    /// Creates a rows x cols matrix filled with `fill`.
    Matrix(std::size_t rows, std::size_t cols,
           value_type fill = value_type{0.0, 0.0});

    /// Builds a matrix from nested initializer data; inner vectors are rows
    /// and must all have the same length.
    static Matrix from_rows(
        const std::vector<std::vector<value_type>>& rows);

    /// The n x n identity.
    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /// Element access (bounds-checked by contract).
    value_type& at(std::size_t r, std::size_t c);
    const value_type& at(std::size_t r, std::size_t c) const;

    /// Matrix product; inner dimensions must agree.
    Matrix multiply(const Matrix& rhs) const;

    /// Conjugate (Hermitian) transpose.
    Matrix hermitian() const;

    /// Frobenius norm.
    double frobenius_norm() const;

    /// Inverse via Gauss-Jordan with partial pivoting. Throws
    /// std::domain_error when the matrix is singular (pivot below tolerance)
    /// or not square.
    Matrix inverse() const;

    /// Singular values in descending order. Uses the closed-form 2x2
    /// solution when applicable, one-sided Jacobi otherwise.
    std::vector<double> singular_values() const;

    /// Condition number sigma_max / sigma_min (linear, not dB). Throws
    /// std::domain_error when the smallest singular value is zero.
    double condition_number() const;

    /// Condition number in dB: 20 log10(sigma_max / sigma_min).
    double condition_number_db() const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<value_type> data_;
};

}  // namespace press::util
