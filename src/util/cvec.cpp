#include "util/cvec.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace press::util {

namespace {
void require_same_length(const CVec& a, const CVec& b) {
    PRESS_EXPECTS(a.size() == b.size(), "vector lengths must match");
}
}  // namespace

CVec add(const CVec& a, const CVec& b) {
    require_same_length(a, b);
    CVec out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
    return out;
}

CVec subtract(const CVec& a, const CVec& b) {
    require_same_length(a, b);
    CVec out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
    return out;
}

CVec hadamard(const CVec& a, const CVec& b) {
    require_same_length(a, b);
    CVec out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
    return out;
}

CVec divide(const CVec& a, const CVec& b) {
    require_same_length(a, b);
    CVec out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        PRESS_EXPECTS(std::abs(b[i]) > 0.0, "division by zero element");
        out[i] = a[i] / b[i];
    }
    return out;
}

CVec scale(const CVec& a, cd s) {
    CVec out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
    return out;
}

cd inner(const CVec& a, const CVec& b) {
    require_same_length(a, b);
    cd acc{0.0, 0.0};
    for (std::size_t i = 0; i < a.size(); ++i) acc += std::conj(a[i]) * b[i];
    return acc;
}

double energy(const CVec& a) {
    double acc = 0.0;
    for (const cd& x : a) acc += std::norm(x);
    return acc;
}

double mean_power(const CVec& a) {
    return a.empty() ? 0.0 : energy(a) / static_cast<double>(a.size());
}

std::vector<double> abs2(const CVec& a) {
    std::vector<double> out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::norm(a[i]);
    return out;
}

std::vector<double> abs(const CVec& a) {
    std::vector<double> out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::abs(a[i]);
    return out;
}

std::vector<double> arg(const CVec& a) {
    std::vector<double> out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::arg(a[i]);
    return out;
}

CVec convolve(const CVec& a, const CVec& b) {
    if (a.empty() || b.empty()) return {};
    CVec out(a.size() + b.size() - 1, cd{0.0, 0.0});
    for (std::size_t i = 0; i < a.size(); ++i)
        for (std::size_t j = 0; j < b.size(); ++j) out[i + j] += a[i] * b[j];
    return out;
}

double max_abs_diff(const CVec& a, const CVec& b) {
    require_same_length(a, b);
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::abs(a[i] - b[i]));
    return worst;
}

}  // namespace press::util
