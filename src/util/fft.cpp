#include "util/fft.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/units.hpp"

namespace press::util {

namespace {

// In-place iterative radix-2 Cooley-Tukey. `sign` is -1 for the forward
// transform and +1 for the inverse (normalization handled by the caller).
void radix2(CVec& a, int sign) {
    const std::size_t n = a.size();
    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(a[i], a[j]);
    }
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double ang = sign * kTwoPi / static_cast<double>(len);
        const cd wlen{std::cos(ang), std::sin(ang)};
        for (std::size_t i = 0; i < n; i += len) {
            cd w{1.0, 0.0};
            for (std::size_t k = 0; k < len / 2; ++k) {
                const cd u = a[i + k];
                const cd v = a[i + k + len / 2] * w;
                a[i + k] = u + v;
                a[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
}

std::size_t next_power_of_two(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

// Bluestein's chirp-z transform: expresses an arbitrary-length DFT as a
// convolution, evaluated with power-of-two FFTs.
CVec bluestein(const CVec& x, int sign) {
    const std::size_t n = x.size();
    const std::size_t m = next_power_of_two(2 * n + 1);
    CVec a(m, cd{0, 0});
    CVec b(m, cd{0, 0});
    // Chirp w_k = e^{sign * j * pi * k^2 / n}.
    std::vector<cd> chirp(n);
    for (std::size_t k = 0; k < n; ++k) {
        // k^2 mod 2n keeps the argument small for numerical stability.
        const std::size_t k2 = (k * k) % (2 * n);
        const double ang = sign * kPi * static_cast<double>(k2) /
                           static_cast<double>(n);
        chirp[k] = cd{std::cos(ang), std::sin(ang)};
    }
    for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * chirp[k];
    b[0] = std::conj(chirp[0]);
    for (std::size_t k = 1; k < n; ++k)
        b[k] = b[m - k] = std::conj(chirp[k]);
    radix2(a, -1);
    radix2(b, -1);
    for (std::size_t i = 0; i < m; ++i) a[i] *= b[i];
    radix2(a, +1);
    CVec out(n);
    for (std::size_t k = 0; k < n; ++k)
        out[k] = a[k] * chirp[k] / static_cast<double>(m);
    return out;
}

CVec transform(const CVec& x, int sign) {
    if (x.empty()) return {};
    if (x.size() == 1) return x;
    if (is_power_of_two(x.size())) {
        CVec a = x;
        radix2(a, sign);
        return a;
    }
    return bluestein(x, sign);
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

CVec fft(const CVec& x) { return transform(x, -1); }

CVec ifft(const CVec& x) {
    CVec a = transform(x, +1);
    const double inv = a.empty() ? 1.0 : 1.0 / static_cast<double>(a.size());
    for (cd& v : a) v *= inv;
    return a;
}

CVec rotate_left(const CVec& v, std::size_t k) {
    if (v.empty()) return {};
    const std::size_t n = v.size();
    CVec out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = v[(i + k) % n];
    return out;
}

}  // namespace press::util
