#include "util/fft.hpp"

#include "util/fft_plan.hpp"

namespace press::util {

// Both legacy entry points route through the process-wide plan cache
// (util/fft_plan.hpp): the plan replays the exact radix-2 / Bluestein
// arithmetic this file used to inline — same bit-reversal swap set, same
// rolling-recurrence twiddles, same chirp construction — so outputs are
// bit-identical to the historical per-call kernels while the per-call
// setup (chirp tables, next_power_of_two scratch, the forward FFT of the
// input-independent chirp filter) is computed once per size.
// tests/test_wideband.cpp pins the plan-vs-legacy-arithmetic identity.

namespace {

// Per-thread convolution scratch for the legacy value-returning API; the
// zero-allocation callers hold their own FftScratch instead.
FftScratch& thread_scratch() {
    thread_local FftScratch scratch;
    return scratch;
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

CVec fft(const CVec& x) {
    if (x.empty()) return {};
    if (x.size() == 1) return x;
    CVec out;
    plan_for(x.size()).forward(x, out, thread_scratch());
    return out;
}

CVec ifft(const CVec& x) {
    if (x.empty()) return {};
    CVec out;
    plan_for(x.size()).inverse(x, out, thread_scratch());
    return out;
}

CVec rotate_left(const CVec& v, std::size_t k) {
    if (v.empty()) return {};
    const std::size_t n = v.size();
    CVec out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = v[(i + k) % n];
    return out;
}

}  // namespace press::util
