// Deterministic random number generation.
//
// Every stochastic component of the library draws from a util::Rng seeded by
// its owning scenario, so any experiment is bit-reproducible from its seed.
#pragma once

#include <algorithm>
#include <complex>
#include <cstdint>
#include <random>
#include <vector>

namespace press::util {

/// A seeded pseudo-random source wrapping std::mt19937_64 with the draw
/// helpers this library needs. Copyable; a copy continues the same stream
/// independently.
class Rng {
public:
    /// Constructs a generator with a fixed default seed (reproducible).
    Rng() : engine_(0x9E3779B97F4A7C15ull) {}

    /// Constructs a generator from an explicit seed.
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform real in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [lo, hi] (inclusive).
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Standard normal draw scaled to the given standard deviation.
    double gaussian(double mean = 0.0, double stddev = 1.0);

    /// Circularly-symmetric complex Gaussian with E[|x|^2] = variance.
    std::complex<double> complex_gaussian(double variance = 1.0);

    /// Uniform phase on the unit circle.
    std::complex<double> unit_phasor();

    /// Bernoulli draw with probability p of true.
    bool chance(double p);

    /// Derives a child generator whose stream is independent of this one.
    /// Useful for handing sub-components their own reproducible streams.
    Rng fork();

    /// Underlying engine access for std::shuffle and friends.
    std::mt19937_64& engine() { return engine_; }

private:
    std::mt19937_64 engine_;
};

/// Fisher-Yates shuffle with this library's Rng.
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
    std::shuffle(v.begin(), v.end(), rng.engine());
}

}  // namespace press::util
