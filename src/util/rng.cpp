#include "util/rng.hpp"

#include "util/contracts.hpp"
#include "util/units.hpp"

namespace press::util {

double Rng::uniform(double lo, double hi) {
    PRESS_EXPECTS(lo <= hi, "uniform bounds must be ordered");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    PRESS_EXPECTS(lo <= hi, "uniform_int bounds must be ordered");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::gaussian(double mean, double stddev) {
    PRESS_EXPECTS(stddev >= 0.0, "stddev must be non-negative");
    return std::normal_distribution<double>(mean, stddev)(engine_);
}

std::complex<double> Rng::complex_gaussian(double variance) {
    PRESS_EXPECTS(variance >= 0.0, "variance must be non-negative");
    const double s = std::sqrt(variance / 2.0);
    return {gaussian(0.0, s), gaussian(0.0, s)};
}

std::complex<double> Rng::unit_phasor() {
    const double phi = uniform(0.0, kTwoPi);
    return {std::cos(phi), std::sin(phi)};
}

bool Rng::chance(double p) {
    PRESS_EXPECTS(p >= 0.0 && p <= 1.0, "probability must be in [0,1]");
    return std::bernoulli_distribution(p)(engine_);
}

Rng Rng::fork() {
    // Mix two draws into a new seed; splitmix-style finalizer decorrelates
    // the child stream from the parent's subsequent output.
    std::uint64_t z = engine_() + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return Rng(z ^ (z >> 31));
}

}  // namespace press::util
