// Split-complex SoA kernels: the scoring pipeline's innermost loops.
//
// The factored channel cache turned candidate evaluation into a row-gather
// plus complex accumulation (src/core/link_cache.hpp); at smart-space
// scale that loop *is* the controller, so it has to vectorize. AoS
// std::complex<double> defeats that — the re/im interleave forces shuffle
// traffic — so the hot path stores split-complex structure-of-arrays
// (SplitVec: one contiguous double array per component) and runs these
// kernels over raw spans.
//
// Two dispatch flavors exist, selected once per process from the
// PRESS_KERNEL environment variable (obs::env_kernel_dispatch() owns the
// parse so the run manifest and the dispatcher can never disagree):
//
//   - kScalar: plain rolling loops, no vectorization hints. The reference
//     implementation.
//   - kNative (default): the same arithmetic written over __restrict__
//     spans in blocks the compiler's auto-vectorizer maps onto whatever
//     SIMD width the target has.
//
// The two are required to be BIT-IDENTICAL, not merely close — the CI
// matrix diffs full telemetry counter sets between PRESS_KERNEL=scalar
// and =native runs at zero tolerance. That only holds if no kernel's
// result depends on association order the two flavors could disagree on,
// which pins down two contracts:
//
//   1. Deterministic blocked reduction. Every reduction (min / mean /
//      abs2 sums) runs kLanes = 4 independent accumulators, lane j
//      folding elements j, j+4, j+8, ... (the layout a 4-wide vector
//      loop produces), combined at the end as
//          (lane0 ⊕ lane1) ⊕ (lane2 ⊕ lane3)
//      in both flavors. The width is fixed at 4 regardless of the
//      hardware width so results never depend on the build machine.
//   2. No FMA contraction. The build compiles with -ffp-contract=off
//      (top-level CMakeLists) so re*re + im*im is the same mul/mul/add
//      sequence in both flavors and under -march=native.
//
// Element-wise kernels (copy / accumulate / gather) have no reduction
// order at all, so they are bit-identical by construction.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace press::util::kernels {

/// Kernel flavor. kScalar is the reference; kNative the auto-vectorized
/// path. Both produce bit-identical results (see file comment).
enum class Dispatch { kScalar, kNative };

/// The process-wide flavor: resolved once from PRESS_KERNEL via
/// obs::env_kernel_dispatch() ("scalar" selects kScalar, anything else —
/// including unset — kNative), overridable afterwards for tests.
Dispatch active();
void set_dispatch(Dispatch d);
const char* dispatch_name(Dispatch d);

/// Fixed lane count of the blocked-reduction contract.
inline constexpr std::size_t kLanes = 4;

/// Split-complex vector: re[i] + j*im[i]. The two components are separate
/// contiguous arrays so element-wise kernels vectorize without shuffles.
/// resize() keeps capacity, so a reused scratch never re-allocates once
/// grown to its steady-state size.
struct SplitVec {
    std::vector<double> re;
    std::vector<double> im;

    std::size_t size() const { return re.size(); }
    void resize(std::size_t n) {
        re.resize(n);
        im.resize(n);
    }
    void assign_zero(std::size_t n) {
        re.assign(n, 0.0);
        im.assign(n, 0.0);
    }
};

/// dst = src (both components), n elements.
void copy(Dispatch d, const double* src_re, const double* src_im,
          double* dst_re, double* dst_im, std::size_t n);

/// dst += row (both components), n elements.
void accumulate(Dispatch d, const double* row_re, const double* row_im,
                double* dst_re, double* dst_im, std::size_t n);

/// dst = src + row (both components), n elements — the coordinate
/// delta's fused form. One pass over dst instead of copy() followed by
/// accumulate(); the per-element sum is the same single addition, so the
/// result is bit-identical to the two-step form (and across flavors).
/// dst must not alias src or row.
void copy_accumulate(Dispatch d, const double* src_re, const double* src_im,
                     const double* row_re, const double* row_im,
                     double* dst_re, double* dst_im, std::size_t n);

/// dst += sum of `num_rows` table rows: row r spans
/// table_re/_im[rows[r]*n .. rows[r]*n + n). Rows are added in index
/// order, so the result is bit-identical to calling accumulate() per row.
void gather_accumulate(Dispatch d, const double* table_re,
                       const double* table_im, const std::size_t* rows,
                       std::size_t num_rows, double* dst_re, double* dst_im,
                       std::size_t n);

/// SplitVec -> std::complex interleave and back (bridges to the AoS APIs
/// that remain on cold paths).
void interleave(const double* re, const double* im,
                std::complex<double>* out, std::size_t n);
void deinterleave(const std::complex<double>* in, double* re, double* im,
                  std::size_t n);

/// Blocked reductions over a real span (see the file comment for the
/// association contract). Empty spans are a precondition violation.
double min(Dispatch d, const double* x, std::size_t n);
double mean(Dispatch d, const double* x, std::size_t n);

/// Blocked min / mean of the squared magnitudes re[i]^2 + im[i]^2.
double abs2_min(Dispatch d, const double* re, const double* im,
                std::size_t n);
double abs2_mean(Dispatch d, const double* re, const double* im,
                 std::size_t n);

/// LTF repetition combining over a split [repeats x n] row-major block:
/// mean_re/_im[k] accumulate raw[r][k] / repeats in ascending r, then
/// noise_var[k] accumulates |raw[r][k] - mean[k]|^2 / (repeats - 1) —
/// exactly phy::combine_ltf_estimates' arithmetic, so the two agree
/// bitwise on the same raw estimates. repeats >= 2 required.
void ltf_mean_var(Dispatch d, const double* raw_re, const double* raw_im,
                  std::size_t repeats, std::size_t n, double* mean_re,
                  double* mean_im, double* noise_var);

/// Per-subcarrier estimated SNR in dB with the same clamping as
/// phy::ChannelEstimate::snr_db: sig = |mean[k]|^2; non-positive noise or
/// signal short-circuits to cap/floor, else clamp(10*log10(sig/var)).
void snr_db_into(Dispatch d, const double* mean_re, const double* mean_im,
                 const double* noise_var, std::size_t n, double cap_db,
                 double floor_db, double* out);

/// Fused log-SNR reductions: the blocked min / mean of the values
/// snr_db_into would produce, without materializing them. Bit-identical
/// to snr_db_into + min/mean over the stored span.
double snr_db_min(Dispatch d, const double* mean_re, const double* mean_im,
                  const double* noise_var, std::size_t n, double cap_db,
                  double floor_db);
double snr_db_mean(Dispatch d, const double* mean_re,
                   const double* mean_im, const double* noise_var,
                   std::size_t n, double cap_db, double floor_db);

// ---------------------------------------------------------------------
// Masked kernels: the wideband RU-mask pipeline (DESIGN.md §15).
//
// A preamble-puncturing mask selects a subset of the subcarrier axis.
// The masked kernels come in two shapes mirroring how the hot path uses
// them: RANGE kernels walk half-open [offset, offset+len) spans of the
// full-width axis (basis accumulation bounded to the tiles a mask
// touches), and INDEX kernels read through an ascending index list and
// produce densely packed outputs (masked scoring over num_active tones).
// The reduction kernels run their kLanes-blocked reduction over the
// DENSE masked axis i — not the raw subcarrier k — so a masked reduction
// is bit-identical to gathering the masked tones densely first and
// reducing with the unmasked kernel; the scalar and native flavors stay
// bit-identical exactly as above. Index lists must be strictly ascending
// (phy::RuMask::active_indices() order).
// ---------------------------------------------------------------------

/// Half-open span [offset, offset + len) of the full subcarrier axis.
struct IndexRange {
    std::size_t offset = 0;
    std::size_t len = 0;
};

/// Dense compaction: dst[i] = src[idx[i]] for i in [0, m), both
/// components. Element-wise, so bit-identical across flavors by
/// construction.
void masked_gather(Dispatch d, const double* src_re, const double* src_im,
                   const std::size_t* idx, std::size_t m, double* dst_re,
                   double* dst_im);

/// dst += row over each range (both components), ranges in order. Per
/// touched subcarrier this is exactly one accumulate() addition, so a
/// range walk is bit-identical to a full accumulate() on the covered
/// subcarriers (untouched ones are left alone entirely).
void masked_accumulate(Dispatch d, const double* row_re,
                       const double* row_im, double* dst_re, double* dst_im,
                       const IndexRange* ranges, std::size_t num_ranges);

/// dst = src + row over each range (both components) — the fused
/// coordinate delta, tile-bounded. Bit-identical to per-span copy()
/// followed by masked_accumulate(); untouched outside the spans. dst
/// must not alias src or row.
void masked_copy_accumulate(Dispatch d, const double* src_re,
                            const double* src_im, const double* row_re,
                            const double* row_im, double* dst_re,
                            double* dst_im, const IndexRange* ranges,
                            std::size_t num_ranges);

/// ltf_mean_var over only the masked tones: repetition r's tone idx[i]
/// is read at raw_re/_im[r * row_stride + idx[i]] (row_stride >= the
/// full subcarrier width), outputs are DENSE length-m arrays. Per-tone
/// arithmetic matches ltf_mean_var exactly, so the dense outputs equal a
/// full-width ltf_mean_var followed by masked_gather of the results.
void masked_ltf_mean_var(Dispatch d, const double* raw_re,
                         const double* raw_im, std::size_t repeats,
                         std::size_t row_stride, const std::size_t* idx,
                         std::size_t m, double* mean_re, double* mean_im,
                         double* noise_var);

/// Fused masked log-SNR reductions: min / mean of the snr_db values of
/// tones idx[0..m), reading the FULL-width mean/noise arrays through the
/// index list. Bit-identical to masked_gather + snr_db_min/mean over the
/// dense result (the blocked reduction runs over the dense axis).
double masked_snr_db_min(Dispatch d, const double* mean_re,
                         const double* mean_im, const double* noise_var,
                         const std::size_t* idx, std::size_t m,
                         double cap_db, double floor_db);
double masked_snr_db_mean(Dispatch d, const double* mean_re,
                          const double* mean_im, const double* noise_var,
                          const std::size_t* idx, std::size_t m,
                          double cap_db, double floor_db);

/// Capacity-equivalent effective SNR of a per-subcarrier SNR profile in
/// dB: 2^(mean_k log2(1 + snr_k)) - 1 (phy::effective_snr_db's formula)
/// with the capacity sum folded through the blocked reduction. Scalar
/// and native flavors are bit-identical; versus the serial reference
/// loop (phy::effective_snr_db_reference) the blocked association may
/// differ in the last ulps, which the phy layer documents.
double effective_snr_db(Dispatch d, const double* snr_db, std::size_t n);

}  // namespace press::util::kernels
