// Precomputed FFT plans with caller-owned scratch.
//
// util::fft()/ifft() recompute everything a transform needs on every call:
// radix-2 derives each stage's twiddles with a rolling complex multiply,
// and Bluestein additionally rebuilds its chirp tables, the zero-padded
// convolution operands and the forward FFT of the (input-independent!)
// chirp filter. At the wideband numerologies (2048/4096-point FFTs, plus
// Bluestein at the N210's 128-used-of-102 odd sizes) that per-call setup
// dominates. An FftPlan hoists every input-independent quantity:
//
//   - the bit-reversal permutation table,
//   - per-stage twiddle tables for both transform directions, filled by
//     the SAME rolling recurrence the legacy kernel iterates (so the
//     butterflies consume bitwise-identical twiddles — plan outputs are
//     bit-identical to fft()/ifft(), which tests/test_wideband.cpp
//     asserts at power-of-two and Bluestein sizes),
//   - for non-power-of-two sizes: both-direction chirp tables and the
//     precomputed m-point FFT of the chirp filter.
//
// Execution touches only the plan tables and an FftScratch the caller
// owns, so steady-state transforms allocate nothing (the perf_snapshot
// operator-new gate covers the wideband scene's plan executions).
//
// plan_for(n) is the process-wide cache (mutex-protected, plans are
// immutable once built); the legacy fft()/ifft() entry points route
// through it, so existing callers get the win without an API change.
// Cache traffic is observable as phy.fft.plan_builds / phy.fft.plan_hits.
#pragma once

#include <cstddef>

#include "util/cvec.hpp"

namespace press::util {

/// Caller-owned work space for FftPlan executions. Reused across calls;
/// buffers grow to the plan's convolution length on first use and then
/// stay put (zero steady-state allocations).
struct FftScratch {
    CVec work;
};

/// An immutable, size-specific transform plan. Build once (all setup cost
/// lives in the constructor), execute many times against caller scratch.
class FftPlan {
public:
    /// Plans an n-point transform. n == 0 and n == 1 are valid (identity
    /// plans, matching fft()'s empty/singleton behavior).
    explicit FftPlan(std::size_t n);

    std::size_t size() const { return n_; }

    /// True when this size runs Bluestein's chirp-z algorithm (any
    /// non-power-of-two n >= 2); power-of-two sizes run radix-2 directly.
    bool uses_bluestein() const { return !chirp_fwd_.empty(); }

    /// Forward DFT (unnormalized), bit-identical to util::fft(x).
    /// `out` is resized to n; `out` must not alias `x`.
    void forward(const CVec& x, CVec& out, FftScratch& scratch) const;

    /// Inverse DFT (normalized by 1/n), bit-identical to util::ifft(x).
    void inverse(const CVec& x, CVec& out, FftScratch& scratch) const;

private:
    // Runs the planned radix-2 kernel in place over `a` (length m_) using
    // the direction's twiddle table.
    void radix2_planned(CVec& a, const CVec& twiddles) const;
    void bluestein_planned(const CVec& x, CVec& out, FftScratch& scratch,
                           const CVec& chirp, const CVec& filter_fft) const;

    std::size_t n_ = 0;  ///< transform length
    std::size_t m_ = 0;  ///< radix-2 kernel length (== n_ unless Bluestein)
    /// Bit-reversal targets for the m-point kernel: swap (i, rev_[i]) when
    /// i < rev_[i] — the exact swap set the legacy incremental walk applies.
    std::vector<std::size_t> rev_;
    /// Flat per-stage twiddles for the m-point kernel, both directions.
    /// Stage `len`'s block starts at len/2 - 1 and holds len/2 entries
    /// t[k], filled by the legacy rolling recurrence t[k] = t[k-1] * wlen.
    CVec twiddle_fwd_;  ///< sign = -1
    CVec twiddle_inv_;  ///< sign = +1
    /// Bluestein tables (empty for power-of-two sizes). chirp_*[k] =
    /// e^{sign j pi (k^2 mod 2n) / n}; filter_fft_* is the m-point forward
    /// FFT of the symmetric conjugate-chirp filter for that direction.
    CVec chirp_fwd_, chirp_inv_;
    CVec filter_fft_fwd_, filter_fft_inv_;
};

/// Process-wide plan cache: returns the (immutable, never-evicted) plan
/// for length n, building it on first request. Thread-safe. Counts
/// phy.fft.plan_builds / phy.fft.plan_hits when telemetry is enabled.
const FftPlan& plan_for(std::size_t n);

}  // namespace press::util
