// Contract checking for public APIs (C++ Core Guidelines I.5 / I.7).
//
// PRESS_EXPECTS(cond, msg) checks a precondition; PRESS_ENSURES(cond, msg)
// checks a postcondition. Both throw press::util::ContractViolation (derived
// from std::logic_error) so that misuse is reported at the API boundary
// rather than propagating corrupted state. These checks are cheap relative
// to the numerical work in this library and stay enabled in release builds.
#pragma once

#include <stdexcept>
#include <string>

namespace press::util {

/// Thrown when a precondition or postcondition of a public API is violated.
class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what_arg)
        : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* cond,
                                       const char* file, int line,
                                       const std::string& msg) {
    throw ContractViolation(std::string(kind) + " failed: (" + cond + ") at " +
                            file + ":" + std::to_string(line) +
                            (msg.empty() ? "" : ": " + msg));
}
}  // namespace detail

}  // namespace press::util

#define PRESS_EXPECTS(cond, msg)                                             \
    do {                                                                      \
        if (!(cond))                                                          \
            ::press::util::detail::contract_fail("precondition", #cond,      \
                                                 __FILE__, __LINE__, (msg));  \
    } while (false)

#define PRESS_ENSURES(cond, msg)                                              \
    do {                                                                      \
        if (!(cond))                                                          \
            ::press::util::detail::contract_fail("postcondition", #cond,     \
                                                 __FILE__, __LINE__, (msg));  \
    } while (false)
