#include "util/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "obs/manifest.hpp"
#include "util/contracts.hpp"
#include "util/units.hpp"

namespace press::util::kernels {

namespace {

// Per-element value helpers shared by both flavors: element-wise math has
// no association order, so sharing it cannot break bit-identity (the
// flavors differ only in loop structure), and it keeps the clamping
// semantics in exactly one place.

/// One subcarrier of phy::ChannelEstimate::snr_db.
inline double snr_db_value(double re, double im, double var, double cap_db,
                           double floor_db) {
    const double sig = re * re + im * im;
    if (var <= 0.0 || sig <= 0.0) return sig <= 0.0 ? floor_db : cap_db;
    return std::clamp(linear_to_db(sig / var), floor_db, cap_db);
}

inline double abs2_value(double re, double im) { return re * re + im * im; }

/// Blocked-reduction lane state (kLanes accumulators, see kernels.hpp).
/// combine_* folds (l0 op l1) op (l2 op l3) — both flavors, always.
inline double combine_sum(const double l[kLanes]) {
    return (l[0] + l[1]) + (l[2] + l[3]);
}
inline double combine_min(const double l[kLanes]) {
    return std::min(std::min(l[0], l[1]), std::min(l[2], l[3]));
}

// ---------------------------------------------------------------------
// Scalar flavor: rolling loops, lane index i & 3. The reference.
// ---------------------------------------------------------------------
namespace scalar {

void copy(const double* sr, const double* si, double* dr, double* di,
          std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
        dr[k] = sr[k];
        di[k] = si[k];
    }
}

void accumulate(const double* rr, const double* ri, double* dr, double* di,
                std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
        dr[k] += rr[k];
        di[k] += ri[k];
    }
}

void copy_accumulate(const double* sr, const double* si, const double* rr,
                     const double* ri, double* dr, double* di,
                     std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
        dr[k] = sr[k] + rr[k];
        di[k] = si[k] + ri[k];
    }
}

template <typename Value>
double reduce_sum(std::size_t n, Value value) {
    double lanes[kLanes] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) lanes[i & 3] += value(i);
    return combine_sum(lanes);
}

template <typename Value>
double reduce_min(std::size_t n, Value value) {
    double lanes[kLanes];
    std::fill_n(lanes, kLanes, std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < n; ++i)
        lanes[i & 3] = std::min(lanes[i & 3], value(i));
    return combine_min(lanes);
}

void ltf_mean_var(const double* raw_re, const double* raw_im,
                  std::size_t repeats, std::size_t n, double* mean_re,
                  double* mean_im, double* noise_var) {
    const double count = static_cast<double>(repeats);
    for (std::size_t k = 0; k < n; ++k) {
        mean_re[k] = 0.0;
        mean_im[k] = 0.0;
        noise_var[k] = 0.0;
    }
    for (std::size_t r = 0; r < repeats; ++r) {
        const double* rr = raw_re + r * n;
        const double* ri = raw_im + r * n;
        for (std::size_t k = 0; k < n; ++k) {
            mean_re[k] += rr[k] / count;
            mean_im[k] += ri[k] / count;
        }
    }
    for (std::size_t r = 0; r < repeats; ++r) {
        const double* rr = raw_re + r * n;
        const double* ri = raw_im + r * n;
        for (std::size_t k = 0; k < n; ++k) {
            const double dre = rr[k] - mean_re[k];
            const double dim = ri[k] - mean_im[k];
            noise_var[k] += (dre * dre + dim * dim) / (count - 1.0);
        }
    }
}

}  // namespace scalar

// ---------------------------------------------------------------------
// Native flavor: the same arithmetic over __restrict__ spans in blocks
// of kLanes so the auto-vectorizer maps lanes onto SIMD registers. The
// block tail feeds lane (i & 3) — the association the scalar flavor's
// rolling lane index produces — so the two flavors combine identically.
// ---------------------------------------------------------------------
namespace native {

void copy(const double* __restrict__ sr, const double* __restrict__ si,
          double* __restrict__ dr, double* __restrict__ di, std::size_t n) {
#pragma GCC ivdep
    for (std::size_t k = 0; k < n; ++k) {
        dr[k] = sr[k];
        di[k] = si[k];
    }
}

void copy_accumulate(const double* __restrict__ sr,
                     const double* __restrict__ si,
                     const double* __restrict__ rr,
                     const double* __restrict__ ri, double* __restrict__ dr,
                     double* __restrict__ di, std::size_t n) {
#pragma GCC ivdep
    for (std::size_t k = 0; k < n; ++k) {
        dr[k] = sr[k] + rr[k];
        di[k] = si[k] + ri[k];
    }
}

void accumulate(const double* __restrict__ rr,
                const double* __restrict__ ri, double* __restrict__ dr,
                double* __restrict__ di, std::size_t n) {
#pragma GCC ivdep
    for (std::size_t k = 0; k < n; ++k) {
        dr[k] += rr[k];
        di[k] += ri[k];
    }
}

template <typename Value>
double reduce_sum(std::size_t n, Value value) {
    double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
    const std::size_t n4 = n & ~std::size_t{3};
    for (std::size_t i = 0; i < n4; i += kLanes) {
        l0 += value(i);
        l1 += value(i + 1);
        l2 += value(i + 2);
        l3 += value(i + 3);
    }
    if (n4 + 0 < n) l0 += value(n4 + 0);
    if (n4 + 1 < n) l1 += value(n4 + 1);
    if (n4 + 2 < n) l2 += value(n4 + 2);
    const double lanes[kLanes] = {l0, l1, l2, l3};
    return combine_sum(lanes);
}

template <typename Value>
double reduce_min(std::size_t n, Value value) {
    constexpr double inf = std::numeric_limits<double>::infinity();
    double l0 = inf, l1 = inf, l2 = inf, l3 = inf;
    const std::size_t n4 = n & ~std::size_t{3};
    for (std::size_t i = 0; i < n4; i += kLanes) {
        l0 = std::min(l0, value(i));
        l1 = std::min(l1, value(i + 1));
        l2 = std::min(l2, value(i + 2));
        l3 = std::min(l3, value(i + 3));
    }
    if (n4 + 0 < n) l0 = std::min(l0, value(n4 + 0));
    if (n4 + 1 < n) l1 = std::min(l1, value(n4 + 1));
    if (n4 + 2 < n) l2 = std::min(l2, value(n4 + 2));
    const double lanes[kLanes] = {l0, l1, l2, l3};
    return combine_min(lanes);
}

void ltf_mean_var(const double* __restrict__ raw_re,
                  const double* __restrict__ raw_im, std::size_t repeats,
                  std::size_t n, double* __restrict__ mean_re,
                  double* __restrict__ mean_im,
                  double* __restrict__ noise_var) {
    const double count = static_cast<double>(repeats);
#pragma GCC ivdep
    for (std::size_t k = 0; k < n; ++k) {
        mean_re[k] = 0.0;
        mean_im[k] = 0.0;
        noise_var[k] = 0.0;
    }
    for (std::size_t r = 0; r < repeats; ++r) {
        const double* __restrict__ rr = raw_re + r * n;
        const double* __restrict__ ri = raw_im + r * n;
#pragma GCC ivdep
        for (std::size_t k = 0; k < n; ++k) {
            mean_re[k] += rr[k] / count;
            mean_im[k] += ri[k] / count;
        }
    }
    for (std::size_t r = 0; r < repeats; ++r) {
        const double* __restrict__ rr = raw_re + r * n;
        const double* __restrict__ ri = raw_im + r * n;
#pragma GCC ivdep
        for (std::size_t k = 0; k < n; ++k) {
            const double dre = rr[k] - mean_re[k];
            const double dim = ri[k] - mean_im[k];
            noise_var[k] += (dre * dre + dim * dim) / (count - 1.0);
        }
    }
}

}  // namespace native

std::atomic<Dispatch>& active_slot() {
    // Resolved once from the environment on first use; set_dispatch()
    // overrides it afterwards (tests, in-process A/B comparisons).
    static std::atomic<Dispatch> slot{obs::env_kernel_dispatch() == "scalar"
                                          ? Dispatch::kScalar
                                          : Dispatch::kNative};
    return slot;
}

}  // namespace

Dispatch active() {
    return active_slot().load(std::memory_order_relaxed);
}

void set_dispatch(Dispatch d) {
    active_slot().store(d, std::memory_order_relaxed);
}

const char* dispatch_name(Dispatch d) {
    return d == Dispatch::kScalar ? "scalar" : "native";
}

void copy(Dispatch d, const double* src_re, const double* src_im,
          double* dst_re, double* dst_im, std::size_t n) {
    if (d == Dispatch::kScalar)
        scalar::copy(src_re, src_im, dst_re, dst_im, n);
    else
        native::copy(src_re, src_im, dst_re, dst_im, n);
}

void accumulate(Dispatch d, const double* row_re, const double* row_im,
                double* dst_re, double* dst_im, std::size_t n) {
    if (d == Dispatch::kScalar)
        scalar::accumulate(row_re, row_im, dst_re, dst_im, n);
    else
        native::accumulate(row_re, row_im, dst_re, dst_im, n);
}

void copy_accumulate(Dispatch d, const double* src_re, const double* src_im,
                     const double* row_re, const double* row_im,
                     double* dst_re, double* dst_im, std::size_t n) {
    if (d == Dispatch::kScalar)
        scalar::copy_accumulate(src_re, src_im, row_re, row_im, dst_re,
                                dst_im, n);
    else
        native::copy_accumulate(src_re, src_im, row_re, row_im, dst_re,
                                dst_im, n);
}

void gather_accumulate(Dispatch d, const double* table_re,
                       const double* table_im, const std::size_t* rows,
                       std::size_t num_rows, double* dst_re, double* dst_im,
                       std::size_t n) {
    for (std::size_t r = 0; r < num_rows; ++r)
        accumulate(d, table_re + rows[r] * n, table_im + rows[r] * n,
                   dst_re, dst_im, n);
}

void interleave(const double* re, const double* im,
                std::complex<double>* out, std::size_t n) {
    for (std::size_t k = 0; k < n; ++k)
        out[k] = std::complex<double>{re[k], im[k]};
}

void deinterleave(const std::complex<double>* in, double* re, double* im,
                  std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
        re[k] = in[k].real();
        im[k] = in[k].imag();
    }
}

double min(Dispatch d, const double* x, std::size_t n) {
    PRESS_EXPECTS(n > 0, "min of an empty span");
    const auto value = [x](std::size_t i) { return x[i]; };
    return d == Dispatch::kScalar ? scalar::reduce_min(n, value)
                                  : native::reduce_min(n, value);
}

double mean(Dispatch d, const double* x, std::size_t n) {
    PRESS_EXPECTS(n > 0, "mean of an empty span");
    const auto value = [x](std::size_t i) { return x[i]; };
    const double sum = d == Dispatch::kScalar
                           ? scalar::reduce_sum(n, value)
                           : native::reduce_sum(n, value);
    return sum / static_cast<double>(n);
}

double abs2_min(Dispatch d, const double* re, const double* im,
                std::size_t n) {
    PRESS_EXPECTS(n > 0, "min of an empty span");
    const auto value = [re, im](std::size_t i) {
        return abs2_value(re[i], im[i]);
    };
    return d == Dispatch::kScalar ? scalar::reduce_min(n, value)
                                  : native::reduce_min(n, value);
}

double abs2_mean(Dispatch d, const double* re, const double* im,
                 std::size_t n) {
    PRESS_EXPECTS(n > 0, "mean of an empty span");
    const auto value = [re, im](std::size_t i) {
        return abs2_value(re[i], im[i]);
    };
    const double sum = d == Dispatch::kScalar
                           ? scalar::reduce_sum(n, value)
                           : native::reduce_sum(n, value);
    return sum / static_cast<double>(n);
}

void ltf_mean_var(Dispatch d, const double* raw_re, const double* raw_im,
                  std::size_t repeats, std::size_t n, double* mean_re,
                  double* mean_im, double* noise_var) {
    PRESS_EXPECTS(repeats >= 2,
                  "noise estimation needs at least two repetitions");
    if (d == Dispatch::kScalar)
        scalar::ltf_mean_var(raw_re, raw_im, repeats, n, mean_re, mean_im,
                             noise_var);
    else
        native::ltf_mean_var(raw_re, raw_im, repeats, n, mean_re, mean_im,
                             noise_var);
}

void snr_db_into(Dispatch d, const double* mean_re, const double* mean_im,
                 const double* noise_var, std::size_t n, double cap_db,
                 double floor_db, double* out) {
    PRESS_EXPECTS(floor_db < cap_db, "floor must sit below the cap");
    // Element-wise: the flavor distinction is vacuous, one loop serves.
    (void)d;
    for (std::size_t k = 0; k < n; ++k)
        out[k] = snr_db_value(mean_re[k], mean_im[k], noise_var[k], cap_db,
                              floor_db);
}

double snr_db_min(Dispatch d, const double* mean_re, const double* mean_im,
                  const double* noise_var, std::size_t n, double cap_db,
                  double floor_db) {
    PRESS_EXPECTS(n > 0, "min of an empty span");
    PRESS_EXPECTS(floor_db < cap_db, "floor must sit below the cap");
    const auto value = [=](std::size_t i) {
        return snr_db_value(mean_re[i], mean_im[i], noise_var[i], cap_db,
                            floor_db);
    };
    return d == Dispatch::kScalar ? scalar::reduce_min(n, value)
                                  : native::reduce_min(n, value);
}

double snr_db_mean(Dispatch d, const double* mean_re,
                   const double* mean_im, const double* noise_var,
                   std::size_t n, double cap_db, double floor_db) {
    PRESS_EXPECTS(n > 0, "mean of an empty span");
    PRESS_EXPECTS(floor_db < cap_db, "floor must sit below the cap");
    const auto value = [=](std::size_t i) {
        return snr_db_value(mean_re[i], mean_im[i], noise_var[i], cap_db,
                            floor_db);
    };
    const double sum = d == Dispatch::kScalar
                           ? scalar::reduce_sum(n, value)
                           : native::reduce_sum(n, value);
    return sum / static_cast<double>(n);
}

void masked_gather(Dispatch d, const double* src_re, const double* src_im,
                   const std::size_t* idx, std::size_t m, double* dst_re,
                   double* dst_im) {
    // Element-wise compaction: the flavor distinction is vacuous.
    (void)d;
    for (std::size_t i = 0; i < m; ++i) {
        dst_re[i] = src_re[idx[i]];
        dst_im[i] = src_im[idx[i]];
    }
}

void masked_accumulate(Dispatch d, const double* row_re,
                       const double* row_im, double* dst_re, double* dst_im,
                       const IndexRange* ranges, std::size_t num_ranges) {
    for (std::size_t r = 0; r < num_ranges; ++r) {
        const std::size_t o = ranges[r].offset;
        accumulate(d, row_re + o, row_im + o, dst_re + o, dst_im + o,
                   ranges[r].len);
    }
}

void masked_copy_accumulate(Dispatch d, const double* src_re,
                            const double* src_im, const double* row_re,
                            const double* row_im, double* dst_re,
                            double* dst_im, const IndexRange* ranges,
                            std::size_t num_ranges) {
    for (std::size_t r = 0; r < num_ranges; ++r) {
        const std::size_t o = ranges[r].offset;
        copy_accumulate(d, src_re + o, src_im + o, row_re + o, row_im + o,
                        dst_re + o, dst_im + o, ranges[r].len);
    }
}

void masked_ltf_mean_var(Dispatch d, const double* raw_re,
                         const double* raw_im, std::size_t repeats,
                         std::size_t row_stride, const std::size_t* idx,
                         std::size_t m, double* mean_re, double* mean_im,
                         double* noise_var) {
    PRESS_EXPECTS(repeats >= 2,
                  "noise estimation needs at least two repetitions");
    // Per-tone arithmetic is element-wise across the dense axis (no
    // cross-tone reduction), so one indirected loop serves both flavors
    // bit-identically — same structure as ltf_mean_var with k := idx[i].
    (void)d;
    const double count = static_cast<double>(repeats);
    for (std::size_t i = 0; i < m; ++i) {
        mean_re[i] = 0.0;
        mean_im[i] = 0.0;
        noise_var[i] = 0.0;
    }
    for (std::size_t r = 0; r < repeats; ++r) {
        const double* rr = raw_re + r * row_stride;
        const double* ri = raw_im + r * row_stride;
        for (std::size_t i = 0; i < m; ++i) {
            mean_re[i] += rr[idx[i]] / count;
            mean_im[i] += ri[idx[i]] / count;
        }
    }
    for (std::size_t r = 0; r < repeats; ++r) {
        const double* rr = raw_re + r * row_stride;
        const double* ri = raw_im + r * row_stride;
        for (std::size_t i = 0; i < m; ++i) {
            const double dre = rr[idx[i]] - mean_re[i];
            const double dim = ri[idx[i]] - mean_im[i];
            noise_var[i] += (dre * dre + dim * dim) / (count - 1.0);
        }
    }
}

double masked_snr_db_min(Dispatch d, const double* mean_re,
                         const double* mean_im, const double* noise_var,
                         const std::size_t* idx, std::size_t m,
                         double cap_db, double floor_db) {
    PRESS_EXPECTS(m > 0, "min of an empty mask");
    PRESS_EXPECTS(floor_db < cap_db, "floor must sit below the cap");
    const auto value = [=](std::size_t i) {
        const std::size_t k = idx[i];
        return snr_db_value(mean_re[k], mean_im[k], noise_var[k], cap_db,
                            floor_db);
    };
    return d == Dispatch::kScalar ? scalar::reduce_min(m, value)
                                  : native::reduce_min(m, value);
}

double masked_snr_db_mean(Dispatch d, const double* mean_re,
                          const double* mean_im, const double* noise_var,
                          const std::size_t* idx, std::size_t m,
                          double cap_db, double floor_db) {
    PRESS_EXPECTS(m > 0, "mean of an empty mask");
    PRESS_EXPECTS(floor_db < cap_db, "floor must sit below the cap");
    const auto value = [=](std::size_t i) {
        const std::size_t k = idx[i];
        return snr_db_value(mean_re[k], mean_im[k], noise_var[k], cap_db,
                            floor_db);
    };
    const double sum = d == Dispatch::kScalar
                           ? scalar::reduce_sum(m, value)
                           : native::reduce_sum(m, value);
    return sum / static_cast<double>(m);
}

double effective_snr_db(Dispatch d, const double* snr_db, std::size_t n) {
    PRESS_EXPECTS(n > 0, "empty SNR profile");
    const auto value = [snr_db](std::size_t i) {
        return std::log2(1.0 + db_to_linear(snr_db[i]));
    };
    const double acc = d == Dispatch::kScalar ? scalar::reduce_sum(n, value)
                                              : native::reduce_sum(n, value);
    const double mean_bits = acc / static_cast<double>(n);
    return linear_to_db(std::pow(2.0, mean_bits) - 1.0);
}

}  // namespace press::util::kernels
