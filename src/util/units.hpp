// Physical constants and unit conversions.
//
// All quantities in this library are SI (Hz, m, s, W, K) unless a function
// name says otherwise. dB conversions are explicit free functions so that a
// reader can always tell whether a value is linear or logarithmic.
#pragma once

#include <cmath>

namespace press::util {

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380'649e-23;

/// Reference temperature for thermal noise [K].
inline constexpr double kReferenceTemperature = 290.0;

inline constexpr double kPi = 3.141592653589793238462643383279502884;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Wavelength [m] of a carrier at `frequency_hz`.
inline double wavelength(double frequency_hz) {
    return kSpeedOfLight / frequency_hz;
}

/// Power ratio -> dB.
inline double linear_to_db(double linear) { return 10.0 * std::log10(linear); }

/// dB -> power ratio.
inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

/// Amplitude (field) ratio -> dB.
inline double amplitude_to_db(double amplitude) {
    return 20.0 * std::log10(amplitude);
}

/// dB -> amplitude (field) ratio.
inline double db_to_amplitude(double db) { return std::pow(10.0, db / 20.0); }

/// Watts -> dBm.
inline double watt_to_dbm(double watt) {
    return 10.0 * std::log10(watt * 1e3);
}

/// dBm -> Watts.
inline double dbm_to_watt(double dbm) { return std::pow(10.0, dbm / 10.0) / 1e3; }

/// Thermal noise power [W] in `bandwidth_hz` at kReferenceTemperature,
/// scaled by a receiver noise figure given in dB.
inline double thermal_noise_watt(double bandwidth_hz, double noise_figure_db) {
    return kBoltzmann * kReferenceTemperature * bandwidth_hz *
           db_to_linear(noise_figure_db);
}

/// Wraps an angle to (-pi, pi].
inline double wrap_angle(double radians) {
    double w = std::remainder(radians, kTwoPi);
    if (w <= -kPi) w += kTwoPi;
    return w;
}

}  // namespace press::util
