#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace press::util {

double mean(const std::vector<double>& v) {
    PRESS_EXPECTS(!v.empty(), "mean of empty sample");
    double acc = 0.0;
    for (double x : v) acc += x;
    return acc / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
    PRESS_EXPECTS(v.size() >= 2, "variance needs at least two samples");
    const double m = mean(v);
    double acc = 0.0;
    for (double x : v) acc += (x - m) * (x - m);
    return acc / static_cast<double>(v.size() - 1);
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double median(std::vector<double> v) { return percentile(std::move(v), 50.0); }

double percentile(std::vector<double> v, double p) {
    PRESS_EXPECTS(!v.empty(), "percentile of empty sample");
    PRESS_EXPECTS(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
    std::sort(v.begin(), v.end());
    if (v.size() == 1) return v.front();
    const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(idx));
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double min_value(const std::vector<double>& v) {
    PRESS_EXPECTS(!v.empty(), "min of empty sample");
    return *std::min_element(v.begin(), v.end());
}

double max_value(const std::vector<double>& v) {
    PRESS_EXPECTS(!v.empty(), "max of empty sample");
    return *std::max_element(v.begin(), v.end());
}

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : sorted_(std::move(samples)) {
    PRESS_EXPECTS(!sorted_.empty(), "empirical distribution needs samples");
    std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalDistribution::cdf(double x) const {
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::quantile(double q) const {
    PRESS_EXPECTS(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
    if (sorted_.size() == 1) return sorted_.front();
    const double idx = q * static_cast<double>(sorted_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(idx));
    const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>> EmpiricalDistribution::cdf_grid(
    std::size_t points) const {
    PRESS_EXPECTS(points >= 2, "grid needs at least two points");
    std::vector<std::pair<double, double>> out;
    out.reserve(points);
    const double lo = min();
    const double hi = max();
    for (std::size_t i = 0; i < points; ++i) {
        const double x =
            lo + (hi - lo) * static_cast<double>(i) /
                     static_cast<double>(points - 1);
        out.emplace_back(x, cdf(x));
    }
    return out;
}

std::vector<std::pair<double, double>> EmpiricalDistribution::ccdf_grid(
    std::size_t points) const {
    auto grid = cdf_grid(points);
    for (auto& [x, p] : grid) p = 1.0 - p;
    return grid;
}

std::vector<std::size_t> integer_histogram(const std::vector<double>& v,
                                           std::size_t max_bin) {
    std::vector<std::size_t> bins(max_bin + 1, 0);
    for (double x : v) {
        const long b = std::lround(x);
        if (b >= 0 && static_cast<std::size_t>(b) <= max_bin)
            ++bins[static_cast<std::size_t>(b)];
    }
    return bins;
}

double fraction_above(const std::vector<double>& v, double x) {
    PRESS_EXPECTS(!v.empty(), "fraction_above of empty sample");
    std::size_t n = 0;
    for (double s : v)
        if (s > x) ++n;
    return static_cast<double>(n) / static_cast<double>(v.size());
}

double fraction_below(const std::vector<double>& v, double x) {
    PRESS_EXPECTS(!v.empty(), "fraction_below of empty sample");
    std::size_t n = 0;
    for (double s : v)
        if (s < x) ++n;
    return static_cast<double>(n) / static_cast<double>(v.size());
}

}  // namespace press::util
