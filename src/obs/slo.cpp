#include "obs/slo.hpp"

#include <cmath>

namespace press::obs {

SloTracker::SloTracker(SloOptions options) : options_(options) {
    if (options_.buckets == 0) options_.buckets = 1;
    if (options_.window_s <= 0.0) options_.window_s = 1.0;
    if (options_.miss_budget <= 0.0) options_.miss_budget = 1e-9;
    bucket_span_s_ = options_.window_s /
                     static_cast<double>(options_.buckets);
    buckets_.resize(options_.buckets);
}

void SloTracker::rotate(double now_s) {
    const std::int64_t index =
        static_cast<std::int64_t>(std::floor(now_s / bucket_span_s_));
    if (!started_) {
        started_ = true;
        newest_index_ = index;
        return;
    }
    if (index <= newest_index_) return;  // same bucket (or time stood still)
    const std::int64_t advance = index - newest_index_;
    // Clear every bucket the window slid past; cap at a full wipe.
    const std::int64_t steps =
        advance >= static_cast<std::int64_t>(buckets_.size())
            ? static_cast<std::int64_t>(buckets_.size())
            : advance;
    for (std::int64_t i = 1; i <= steps; ++i) {
        const std::size_t slot = static_cast<std::size_t>(
            ((newest_index_ + i) % static_cast<std::int64_t>(
                                       buckets_.size()) +
             static_cast<std::int64_t>(buckets_.size())) %
            static_cast<std::int64_t>(buckets_.size()));
        buckets_[slot] = Bucket{};
    }
    newest_index_ = index;
}

SloTracker::Bucket& SloTracker::current(double now_s) {
    rotate(now_s);
    const std::size_t slot = static_cast<std::size_t>(
        (newest_index_ % static_cast<std::int64_t>(buckets_.size()) +
         static_cast<std::int64_t>(buckets_.size())) %
        static_cast<std::int64_t>(buckets_.size()));
    return buckets_[slot];
}

void SloTracker::record_ok(double now_s, double latency_us) {
    Bucket& b = current(now_s);
    ++b.total;
    if (latency_us > options_.latency_target_us) ++b.slow;
}

void SloTracker::record_miss(double now_s) {
    Bucket& b = current(now_s);
    ++b.total;
    ++b.misses;
}

std::uint64_t SloTracker::window_total(double now_s) {
    rotate(now_s);
    std::uint64_t total = 0;
    for (const Bucket& b : buckets_) total += b.total;
    return total;
}

std::uint64_t SloTracker::window_misses(double now_s) {
    rotate(now_s);
    std::uint64_t misses = 0;
    for (const Bucket& b : buckets_) misses += b.misses;
    return misses;
}

double SloTracker::burn_rate(double now_s) {
    rotate(now_s);
    std::uint64_t total = 0, misses = 0;
    for (const Bucket& b : buckets_) {
        total += b.total;
        misses += b.misses;
    }
    if (total == 0) return 0.0;
    const double miss_fraction =
        static_cast<double>(misses) / static_cast<double>(total);
    return miss_fraction / options_.miss_budget;
}

double SloTracker::compliance(double now_s) {
    rotate(now_s);
    std::uint64_t total = 0, bad = 0;
    for (const Bucket& b : buckets_) {
        total += b.total;
        bad += b.misses + b.slow;
    }
    if (total == 0) return 1.0;
    return 1.0 -
           static_cast<double>(bad) / static_cast<double>(total);
}

}  // namespace press::obs
