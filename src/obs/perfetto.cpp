#include "obs/perfetto.hpp"

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

namespace press::obs {

namespace {

/// The layer a span belongs to: its name prefix before the first '.'
/// ("control.batch.worker" -> "control"), or the whole name when there
/// is no dot.
std::string layer_of(const std::string& name) {
    const std::size_t dot = name.find('.');
    return dot == std::string::npos ? name : name.substr(0, dot);
}

Json meta_event(const char* what, double pid, double tid,
                const std::string& name) {
    Json::Object args;
    args.emplace("name", name);
    Json::Object event;
    event.emplace("name", what);
    event.emplace("ph", "M");
    event.emplace("pid", pid);
    event.emplace("tid", tid);
    event.emplace("args", std::move(args));
    return Json(std::move(event));
}

}  // namespace

Json perfetto_export(const Json& telemetry) {
    const Json::Array empty;
    const Json::Array& spans =
        telemetry.contains("spans") && telemetry.at("spans").is_array()
            ? telemetry.at("spans").as_array()
            : empty;

    // First pass: assign pids to layers (sorted, so two exports of the
    // same content are byte-identical) and remember where each span sits
    // so flow arrows can point at their source slice.
    std::map<std::string, double> layer_pid;
    for (const Json& s : spans)
        layer_pid.emplace(layer_of(s.at("name").as_string()), 0.0);
    double next_pid = 1.0;
    for (auto& [layer, pid] : layer_pid) pid = next_pid++;

    struct Site {
        double pid;
        double tid;
        double ts;
    };
    std::map<std::uint64_t, Site> site_of;  // span_id -> slice location
    std::set<std::pair<double, double>> threads_seen;
    for (const Json& s : spans) {
        const Site site{layer_pid.at(layer_of(s.at("name").as_string())),
                        s.at("thread").as_double(),
                        s.at("start_us").as_double()};
        site_of[static_cast<std::uint64_t>(
            s.at("span_id").as_double())] = site;
        threads_seen.emplace(site.pid, site.tid);
    }

    Json::Array events;
    for (const auto& [layer, pid] : layer_pid)
        events.push_back(meta_event("process_name", pid, 0.0, layer));
    for (const auto& [pid, tid] : threads_seen)
        events.push_back(meta_event("thread_name", pid, tid,
                                    "thread " + std::to_string(
                                                    static_cast<long long>(
                                                        tid))));

    for (const Json& s : spans) {
        const std::string& name = s.at("name").as_string();
        const Site& site = site_of.at(
            static_cast<std::uint64_t>(s.at("span_id").as_double()));
        Json::Object args;
        args.emplace("trace_id", s.at("trace_id"));
        args.emplace("span_id", s.at("span_id"));
        args.emplace("parent_span", s.at("parent_span"));
        args.emplace("adopted", s.at("adopted"));
        if (s.contains("sim_start_s")) {
            args.emplace("sim_start_s", s.at("sim_start_s"));
            args.emplace("sim_elapsed_s", s.at("sim_elapsed_s"));
        }
        Json::Object event;
        event.emplace("name", name);
        event.emplace("cat", layer_of(name));
        event.emplace("ph", "X");
        event.emplace("pid", site.pid);
        event.emplace("tid", site.tid);
        event.emplace("ts", s.at("start_us"));
        event.emplace("dur", s.at("wall_us"));
        event.emplace("args", std::move(args));
        events.emplace_back(std::move(event));
    }

    // Flow arrows for adopted parentage: the shipped-context edge from
    // the parent slice to the child slice. Lexical nesting needs none —
    // slice containment already shows it. A parent missing from this
    // export (still open, or overwritten in the span ring) gets no
    // arrow; the identity args above still record the edge.
    for (const Json& s : spans) {
        if (!s.at("adopted").as_bool()) continue;
        const std::uint64_t parent = static_cast<std::uint64_t>(
            s.at("parent_span").as_double());
        const auto parent_site = site_of.find(parent);
        if (parent == 0 || parent_site == site_of.end()) continue;
        const std::uint64_t child_id =
            static_cast<std::uint64_t>(s.at("span_id").as_double());
        const Site& child_site = site_of.at(child_id);
        Json::Object start;
        start.emplace("name", "causal");
        start.emplace("cat", "flow");
        start.emplace("ph", "s");
        start.emplace("id", static_cast<double>(child_id));
        start.emplace("pid", parent_site->second.pid);
        start.emplace("tid", parent_site->second.tid);
        start.emplace("ts", parent_site->second.ts);
        events.emplace_back(std::move(start));
        Json::Object finish;
        finish.emplace("name", "causal");
        finish.emplace("cat", "flow");
        finish.emplace("ph", "f");
        finish.emplace("bp", "e");
        finish.emplace("id", static_cast<double>(child_id));
        finish.emplace("pid", child_site.pid);
        finish.emplace("tid", child_site.tid);
        finish.emplace("ts", child_site.ts);
        events.emplace_back(std::move(finish));
    }

    Json::Object root;
    root.emplace("traceEvents", std::move(events));
    root.emplace("displayTimeUnit", "ms");
    return Json(std::move(root));
}

std::string validate_trace(const Json& t) {
    if (!t.is_object()) return "document is not an object";
    if (!t.contains("traceEvents") || !t.at("traceEvents").is_array())
        return "missing traceEvents array";

    std::map<std::uint64_t, std::uint64_t> trace_of;  // span -> trace
    std::map<std::uint64_t, std::uint64_t> parent_of;
    std::set<std::uint64_t> flow_starts;
    std::set<std::uint64_t> flow_finishes;

    for (const Json& e : t.at("traceEvents").as_array()) {
        if (!e.is_object()) return "event is not an object";
        if (!e.contains("ph") || !e.at("ph").is_string())
            return "event missing string \"ph\"";
        if (!e.contains("name") || !e.at("name").is_string())
            return "event missing string \"name\"";
        for (const char* key : {"pid", "tid"})
            if (!e.contains(key) || !e.at(key).is_number())
                return std::string("event missing number \"") + key +
                       "\"";
        const std::string& ph = e.at("ph").as_string();
        if (ph == "M") {
            if (!e.contains("args") || !e.at("args").is_object() ||
                !e.at("args").contains("name") ||
                !e.at("args").at("name").is_string())
                return "metadata event missing args.name";
            const std::string& what = e.at("name").as_string();
            if (what != "process_name" && what != "thread_name")
                return "unknown metadata event \"" + what + "\"";
        } else if (ph == "X") {
            for (const char* key : {"ts", "dur"})
                if (!e.contains(key) || !e.at(key).is_number())
                    return std::string(
                               "complete event missing number \"") +
                           key + "\"";
            if (!e.contains("args") || !e.at("args").is_object())
                return "complete event missing args";
            const Json& args = e.at("args");
            for (const char* key :
                 {"trace_id", "span_id", "parent_span"})
                if (!args.contains(key) || !args.at(key).is_number() ||
                    args.at(key).as_double() < 0.0)
                    return std::string("complete event args missing \"") +
                           key + "\"";
            const std::uint64_t span = static_cast<std::uint64_t>(
                args.at("span_id").as_double());
            if (span == 0) return "complete event span_id must be >= 1";
            if (!trace_of
                     .emplace(span, static_cast<std::uint64_t>(
                                        args.at("trace_id").as_double()))
                     .second)
                return "duplicate span_id " + std::to_string(span);
            parent_of[span] = static_cast<std::uint64_t>(
                args.at("parent_span").as_double());
        } else if (ph == "s" || ph == "f") {
            if (!e.contains("ts") || !e.at("ts").is_number())
                return "flow event missing number \"ts\"";
            if (!e.contains("id") || !e.at("id").is_number())
                return "flow event missing \"id\"";
            const std::uint64_t id =
                static_cast<std::uint64_t>(e.at("id").as_double());
            if (ph == "s") {
                if (!flow_starts.insert(id).second)
                    return "duplicate flow start id " +
                           std::to_string(id);
            } else {
                if (!e.contains("bp") || !e.at("bp").is_string() ||
                    e.at("bp").as_string() != "e")
                    return "flow finish must bind enclosing (bp: \"e\")";
                if (!flow_finishes.insert(id).second)
                    return "duplicate flow finish id " +
                           std::to_string(id);
            }
        } else {
            return "unknown event phase \"" + ph + "\"";
        }
    }

    for (const std::uint64_t id : flow_finishes)
        if (flow_starts.count(id) == 0)
            return "flow finish id " + std::to_string(id) +
                   " has no start";
    for (const std::uint64_t id : flow_starts)
        if (flow_finishes.count(id) == 0)
            return "flow start id " + std::to_string(id) +
                   " has no finish";
    // A flow arrow lands on the slice whose span_id is its id.
    for (const std::uint64_t id : flow_finishes)
        if (trace_of.count(id) == 0)
            return "flow id " + std::to_string(id) +
                   " names no complete event";

    // Causal coherence: a child and its parent (when both were exported)
    // must agree on the trace they belong to.
    for (const auto& [span, parent] : parent_of) {
        if (parent == 0) continue;
        const auto it = trace_of.find(parent);
        if (it != trace_of.end() && it->second != trace_of.at(span))
            return "span " + std::to_string(span) +
                   " and its parent disagree on trace_id";
    }
    return "";
}

}  // namespace press::obs
