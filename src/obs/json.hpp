// Observability: a minimal JSON document model, writer and parser.
//
// The telemetry exporter needs to *emit* JSON deterministically and the
// tests / CI validator need to *parse and check* what was emitted — both
// without external dependencies. This is a deliberately small JSON
// implementation for that round trip, not a general-purpose library:
// objects keep their keys sorted (std::map), numbers are doubles (with an
// integer fast-path on output so counters print as integers), and parse
// errors throw std::runtime_error with an offset. Strings support the
// standard escapes including \uXXXX (decoded to UTF-8; surrogate pairs
// supported).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>
#include <vector>

namespace press::obs {

class Json {
public:
    using Array = std::vector<Json>;
    using Object = std::map<std::string, Json>;

    Json() : value_(nullptr) {}
    Json(std::nullptr_t) : value_(nullptr) {}
    Json(bool b) : value_(b) {}
    /// Any arithmetic type narrows to double (JSON's only number kind).
    template <typename T,
              typename = std::enable_if_t<std::is_arithmetic_v<T> &&
                                          !std::is_same_v<T, bool>>>
    Json(T n) : value_(static_cast<double>(n)) {}
    Json(const char* s) : value_(std::string(s)) {}
    Json(std::string s) : value_(std::move(s)) {}
    Json(Array a) : value_(std::move(a)) {}
    Json(Object o) : value_(std::move(o)) {}

    static Json array() { return Json(Array{}); }
    static Json object() { return Json(Object{}); }

    bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
    bool is_bool() const { return std::holds_alternative<bool>(value_); }
    bool is_number() const { return std::holds_alternative<double>(value_); }
    bool is_string() const { return std::holds_alternative<std::string>(value_); }
    bool is_array() const { return std::holds_alternative<Array>(value_); }
    bool is_object() const { return std::holds_alternative<Object>(value_); }

    bool as_bool() const { return std::get<bool>(value_); }
    double as_double() const { return std::get<double>(value_); }
    const std::string& as_string() const {
        return std::get<std::string>(value_);
    }
    const Array& as_array() const { return std::get<Array>(value_); }
    Array& as_array() { return std::get<Array>(value_); }
    const Object& as_object() const { return std::get<Object>(value_); }
    Object& as_object() { return std::get<Object>(value_); }

    bool contains(const std::string& key) const {
        return is_object() && as_object().count(key) > 0;
    }
    /// Object member access; throws std::out_of_range on a missing key.
    const Json& at(const std::string& key) const {
        return as_object().at(key);
    }
    /// Mutable member access; inserts a null on a missing key.
    Json& operator[](const std::string& key) {
        return as_object()[key];
    }

    /// Serializes with 2-space indentation and sorted object keys, so two
    /// exports of identical content are byte-identical.
    std::string dump() const;

    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error. Throws std::runtime_error with a byte offset on bad input.
    static Json parse(std::string_view text);

private:
    void write(std::string& out, int indent) const;

    std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
        value_;
};

}  // namespace press::obs
