#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace press::obs {

namespace {

/// -1 unset, 0 off, 1 on — runtime override of the environment default.
std::atomic<int> g_enabled_override{-1};

bool env_disables() {
    const char* env = std::getenv("PRESS_TELEMETRY");
    if (env == nullptr) return false;
    return classify_telemetry_env(env) == TelemetryEnv::kOff;
}

}  // namespace

TelemetryEnv classify_telemetry_env(std::string_view value) {
    std::string lower(value);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    if (lower.empty() || lower == "1" || lower == "on" ||
        lower == "true" || lower == "yes")
        return TelemetryEnv::kOn;
    if (lower == "0" || lower == "off" || lower == "false" ||
        lower == "no")
        return TelemetryEnv::kOff;
    return TelemetryEnv::kDirectory;
}

bool enabled() {
    const int override = g_enabled_override.load(std::memory_order_relaxed);
    if (override >= 0) return override != 0;
    // The environment cannot change after process start; cache the answer
    // in the override slot so later calls are one relaxed load.
    const bool on = !env_disables();
    int expected = -1;
    g_enabled_override.compare_exchange_strong(expected, on ? 1 : 0,
                                               std::memory_order_relaxed);
    return on;
}

void set_enabled(bool on) {
    g_enabled_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::string export_dir() {
    const char* env = std::getenv("PRESS_TELEMETRY");
    if (env == nullptr ||
        classify_telemetry_env(env) != TelemetryEnv::kDirectory)
        return ".";
    return env;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        throw std::invalid_argument(
            "histogram bounds must be ascending");
}

void Histogram::observe(double v) noexcept {
    std::size_t i = bounds_.size();  // overflow bucket by default
    if (std::isfinite(v)) {
        const auto it =
            std::lower_bound(bounds_.begin(), bounds_.end(), v);
        i = static_cast<std::size_t>(it - bounds_.begin());
        sum_.fetch_add(v, std::memory_order_relaxed);
    }
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
    std::vector<std::uint64_t> out(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

void Histogram::reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

void Series::set(const std::vector<double>& values) {
    std::lock_guard<std::mutex> lock(mutex_);
    total_length_ = values.size();
    values_.assign(values.begin(),
                   values.begin() +
                       static_cast<std::ptrdiff_t>(
                           std::min(values.size(), kMaxPoints)));
}

void Series::append(double v) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++total_length_;
    if (values_.size() < kMaxPoints) values_.push_back(v);
}

void Series::append(const std::vector<double>& values) {
    std::lock_guard<std::mutex> lock(mutex_);
    total_length_ += values.size();
    const std::size_t room = kMaxPoints - values_.size();
    const std::size_t n = std::min(values.size(), room);
    values_.insert(values_.end(), values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(n));
}

std::vector<double> Series::values() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return values_;
}

std::size_t Series::total_length() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_length_;
}

void Series::reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    values_.clear();
    total_length_ = 0;
}

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry registry;
    return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_
                 .emplace(std::string(name), std::make_unique<Counter>())
                 .first;
    return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
                 .first;
    return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_
                 .emplace(std::string(name),
                          std::make_unique<Histogram>(std::move(bounds)))
                 .first;
    return *it->second;
}

Series& MetricsRegistry::series(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = series_.find(name);
    if (it == series_.end())
        it = series_.emplace(std::string(name), std::make_unique<Series>())
                 .first;
    return *it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_)
        snap.counters.emplace_back(name, c->value());
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_)
        snap.gauges.emplace_back(name, g->value());
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
        Snapshot::HistogramData data;
        data.name = name;
        data.bounds = h->bounds();
        data.counts = h->bucket_counts();
        data.count = h->count();
        data.sum = h->sum();
        snap.histograms.push_back(std::move(data));
    }
    snap.series.reserve(series_.size());
    for (const auto& [name, s] : series_) {
        Snapshot::SeriesData data;
        data.name = name;
        data.values = s->values();
        data.total_length = s->total_length();
        snap.series.push_back(std::move(data));
    }
    return snap;
}

std::size_t MetricsRegistry::metric_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_.size() + gauges_.size() + histograms_.size() +
           series_.size();
}

void MetricsRegistry::reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : histograms_) h->reset();
    for (auto& [name, s] : series_) s->reset();
}

}  // namespace press::obs
