#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <mutex>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace press::obs {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::uint64_t now_ns_since_epoch() {
    // One process-wide epoch so span start times are comparable across
    // threads. Captured on first use.
    static const SteadyClock::time_point epoch = SteadyClock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            SteadyClock::now() - epoch)
            .count());
}

/// Process-unique ids for spans (and thus traces: a root span's trace is
/// its own id). Never 0 — 0 means "absent" everywhere.
std::uint64_t next_id() {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Bounded global store of completed spans (circular; overwrites oldest).
class SpanRing {
public:
    static SpanRing& instance() {
        static SpanRing ring;
        return ring;
    }

    void push(SpanRecord&& record) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (records_.size() < capacity_) {
            records_.push_back(std::move(record));
        } else {
            records_[head_] = std::move(record);
            head_ = (head_ + 1) % capacity_;
            ++dropped_;
        }
    }

    std::vector<SpanRecord> flush() {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<SpanRecord> out;
        out.reserve(records_.size());
        // Oldest first: the ring head is the oldest surviving record.
        for (std::size_t i = 0; i < records_.size(); ++i)
            out.push_back(
                std::move(records_[(head_ + i) % records_.size()]));
        records_.clear();
        head_ = 0;
        dropped_ = 0;
        return out;
    }

    std::uint64_t dropped() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return dropped_;
    }

    void set_capacity(std::size_t capacity) {
        std::lock_guard<std::mutex> lock(mutex_);
        capacity_ = capacity == 0 ? 1 : capacity;
        records_.clear();
        records_.reserve(capacity_);
        head_ = 0;
        dropped_ = 0;
    }

private:
    mutable std::mutex mutex_;
    std::size_t capacity_ = 4096;
    std::vector<SpanRecord> records_;
    std::size_t head_ = 0;  ///< index of the oldest record once full
    std::uint64_t dropped_ = 0;
};

/// One entry of a thread's causal stack: an open span, or an adopted
/// context installed by a ContextGuard (ambient). New spans parent into
/// the top entry of either kind; only ambient parentage is flagged
/// `adopted` (it is the edge that crossed a thread or the wire).
struct Frame {
    std::uint64_t trace_id;
    std::uint64_t span_id;
    bool ambient;
};

/// Per-thread nesting state. The index is dense (0, 1, 2, ...) in
/// first-use order so exports stay small and readable.
struct ThreadState {
    std::uint32_t index;
    std::uint32_t depth = 0;
    std::uint64_t seq = 0;
    std::vector<Frame> stack{};
};

ThreadState& thread_state() {
    static std::atomic<std::uint32_t> next_index{0};
    thread_local ThreadState state{
        next_index.fetch_add(1, std::memory_order_relaxed)};
    return state;
}

}  // namespace

TraceSpan::TraceSpan(const char* name, const SimTimeSource* sim)
    : name_(name), sim_(sim) {
    if (!enabled()) return;
    active_ = true;
    ThreadState& state = thread_state();
    ++state.depth;
    span_id_ = next_id();
    if (state.stack.empty()) {
        // Root of a fresh trace: the trace is named after its root span.
        trace_id_ = span_id_;
        parent_span_ = 0;
    } else {
        const Frame& top = state.stack.back();
        trace_id_ = top.trace_id;
        parent_span_ = top.span_id;
        adopted_ = top.ambient;
    }
    state.stack.push_back(Frame{trace_id_, span_id_, /*ambient=*/false});
    if (sim_ != nullptr) sim_start_s_ = sim_->sim_now_s();
    start_ns_ = now_ns_since_epoch();  // last: excludes setup from the span
}

TraceSpan::~TraceSpan() {
    if (!active_) return;
    const std::uint64_t end_ns = now_ns_since_epoch();
    ThreadState& state = thread_state();
    state.stack.pop_back();
    SpanRecord record;
    record.name = name_;
    record.thread = state.index;
    record.depth = --state.depth;
    record.seq = state.seq++;
    record.trace_id = trace_id_;
    record.span_id = span_id_;
    record.parent_span = parent_span_;
    record.adopted = adopted_;
    record.start_ns = start_ns_;
    record.wall_ns = end_ns - start_ns_;
    if (sim_ != nullptr) {
        record.has_sim = true;
        record.sim_start_s = sim_start_s_;
        record.sim_elapsed_s = sim_->sim_now_s() - sim_start_s_;
    }
    flight_note(record);
    SpanRing::instance().push(std::move(record));
}

TraceContext TraceSpan::context() const {
    if (!active_) return {};
    return TraceContext{trace_id_, span_id_};
}

TraceContext current_context() {
    if (!enabled()) return {};
    const ThreadState& state = thread_state();
    if (state.stack.empty()) return {};
    const Frame& top = state.stack.back();
    return TraceContext{top.trace_id, top.span_id};
}

ContextGuard::ContextGuard(const TraceContext& ctx) {
    if (!enabled() || !ctx.valid()) return;
    active_ = true;
    thread_state().stack.push_back(
        Frame{ctx.trace_id, ctx.parent_span, /*ambient=*/true});
}

ContextGuard::~ContextGuard() {
    if (!active_) return;
    thread_state().stack.pop_back();
}

std::vector<SpanRecord> flush_spans() {
    return SpanRing::instance().flush();
}

std::uint64_t spans_dropped() { return SpanRing::instance().dropped(); }

void set_span_capacity(std::size_t capacity) {
    SpanRing::instance().set_capacity(capacity);
}

}  // namespace press::obs
