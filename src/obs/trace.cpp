#include "obs/trace.hpp"

#include <chrono>
#include <mutex>

#include "obs/metrics.hpp"

namespace press::obs {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::uint64_t now_ns_since_epoch() {
    // One process-wide epoch so span start times are comparable across
    // threads. Captured on first use.
    static const SteadyClock::time_point epoch = SteadyClock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            SteadyClock::now() - epoch)
            .count());
}

/// Bounded global store of completed spans (circular; overwrites oldest).
class SpanRing {
public:
    static SpanRing& instance() {
        static SpanRing ring;
        return ring;
    }

    void push(SpanRecord&& record) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (records_.size() < capacity_) {
            records_.push_back(std::move(record));
        } else {
            records_[head_] = std::move(record);
            head_ = (head_ + 1) % capacity_;
            ++dropped_;
        }
    }

    std::vector<SpanRecord> flush() {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<SpanRecord> out;
        out.reserve(records_.size());
        // Oldest first: the ring head is the oldest surviving record.
        for (std::size_t i = 0; i < records_.size(); ++i)
            out.push_back(
                std::move(records_[(head_ + i) % records_.size()]));
        records_.clear();
        head_ = 0;
        dropped_ = 0;
        return out;
    }

    std::uint64_t dropped() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return dropped_;
    }

    void set_capacity(std::size_t capacity) {
        std::lock_guard<std::mutex> lock(mutex_);
        capacity_ = capacity == 0 ? 1 : capacity;
        records_.clear();
        records_.reserve(capacity_);
        head_ = 0;
        dropped_ = 0;
    }

private:
    mutable std::mutex mutex_;
    std::size_t capacity_ = 4096;
    std::vector<SpanRecord> records_;
    std::size_t head_ = 0;  ///< index of the oldest record once full
    std::uint64_t dropped_ = 0;
};

/// Per-thread nesting state. The index is dense (0, 1, 2, ...) in
/// first-use order so exports stay small and readable.
struct ThreadState {
    std::uint32_t index;
    std::uint32_t depth = 0;
    std::uint64_t seq = 0;
};

ThreadState& thread_state() {
    static std::atomic<std::uint32_t> next_index{0};
    thread_local ThreadState state{
        next_index.fetch_add(1, std::memory_order_relaxed)};
    return state;
}

}  // namespace

TraceSpan::TraceSpan(const char* name, const SimTimeSource* sim)
    : name_(name), sim_(sim) {
    if (!enabled()) return;
    active_ = true;
    ++thread_state().depth;
    if (sim_ != nullptr) sim_start_s_ = sim_->sim_now_s();
    start_ns_ = now_ns_since_epoch();  // last: excludes setup from the span
}

TraceSpan::~TraceSpan() {
    if (!active_) return;
    const std::uint64_t end_ns = now_ns_since_epoch();
    ThreadState& state = thread_state();
    SpanRecord record;
    record.name = name_;
    record.thread = state.index;
    record.depth = --state.depth;
    record.seq = state.seq++;
    record.start_ns = start_ns_;
    record.wall_ns = end_ns - start_ns_;
    if (sim_ != nullptr) {
        record.has_sim = true;
        record.sim_start_s = sim_start_s_;
        record.sim_elapsed_s = sim_->sim_now_s() - sim_start_s_;
    }
    SpanRing::instance().push(std::move(record));
}

std::vector<SpanRecord> flush_spans() {
    return SpanRing::instance().flush();
}

std::uint64_t spans_dropped() { return SpanRing::instance().dropped(); }

void set_span_capacity(std::size_t capacity) {
    SpanRing::instance().set_capacity(capacity);
}

}  // namespace press::obs
