// Observability: diffing a run's telemetry against a committed baseline.
//
// PR 2 made the evaluation pipeline bit-reproducible: with the same
// seed, scenario and PRESS_THREADS, every *counter* the library emits
// (evals, traces, cache hits, retries) is identical from run to run.
// That determinism is an asset CI should spend: a change that silently
// doubles evaluations or halves the cache hit-rate shifts a counter long
// before anyone reads a timing chart. make_baseline() distills a
// telemetry document to its comparable core (manifest identity +
// counters + gauges); diff_telemetry() compares a later run against it,
// failing on counter drift beyond a tolerance and only *warning* on
// gauge drift — gauges carry wall-clock noise by design.
//
// Comparability is checked, not assumed: a baseline recorded at
// different press_threads/seed/scenario fails outright (the comparison
// is meaningless — scenario is compared as a comma-separated scene-token
// set, so a run that adds a scene only warns while one that drops a
// baseline scene fails), while a different compiler/build_type/sanitize
// downgrades counter failures to warnings — floating-point differences
// across toolchains can legitimately steer a search down another
// trajectory, and the gate must not punish a toolchain bump as a
// regression. tools/bench_diff.cpp is the CI-facing CLI; the tolerance
// knob is `--tolerance-pct` / PRESS_BENCH_DIFF_TOLERANCE_PCT
// (docs/TELEMETRY.md).
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace press::obs {

/// Default counter-drift tolerance, percent.
inline constexpr double kDefaultDiffTolerancePct = 2.0;

/// Distills a `press.telemetry/v2` document into the committed
/// `press.bench_baseline/v1` form: manifest identity fields plus every
/// counter and gauge value.
Json make_baseline(const Json& telemetry);

struct DiffResult {
    /// False when manifest identity (press_threads/seed/scenario)
    /// mismatched and the counter comparison was skipped as meaningless.
    bool comparable = true;
    std::vector<std::string> failures;  ///< CI-gating violations
    std::vector<std::string> warnings;  ///< advisory drift
    bool ok() const { return failures.empty(); }
};

/// Compares `current` (a full telemetry document) against `baseline` (a
/// make_baseline() document). Counter drift beyond `tolerance_pct` is a
/// failure (a warning when the toolchain differs, see file comment);
/// gauge drift is always a warning.
DiffResult diff_telemetry(const Json& baseline, const Json& current,
                          double tolerance_pct = kDefaultDiffTolerancePct);

/// The tolerance override from PRESS_BENCH_DIFF_TOLERANCE_PCT, else
/// `fallback`. Unparsable or negative values fall back too.
double diff_tolerance_from_env(
    double fallback = kDefaultDiffTolerancePct);

}  // namespace press::obs
