#include "obs/flight.hpp"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace press::obs {

namespace {

constexpr std::size_t kNameBytes = 64;
constexpr std::size_t kNameWords = kNameBytes / sizeof(std::uint64_t);

/// One recorded span, every field an atomic so concurrent writers and a
/// mid-write dump stay data-race-free (TSan-clean); the per-slot seqlock
/// version below is what detects *torn* entries, the atomics only keep
/// the tearing benign. The name is stored inline (truncated to 63 bytes)
/// as words — the recorder must not allocate on the span hot path.
struct FlightEntry {
    std::atomic<std::uint64_t> name_words[kNameWords];
    std::atomic<std::uint32_t> thread{0};
    std::atomic<std::uint32_t> depth{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> span_id{0};
    std::atomic<std::uint64_t> parent_span{0};
    std::atomic<bool> adopted{false};
    std::atomic<bool> has_sim{false};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> wall_ns{0};
    std::atomic<double> sim_start_s{0.0};
    std::atomic<double> sim_elapsed_s{0.0};
};

struct Slot {
    /// Seqlock generation: 2k+1 while the k-th note is writing, 2k+2
    /// once it finished. A reader expecting write k skips the slot on
    /// any other value (in-progress, or lapped by write k + capacity).
    std::atomic<std::uint64_t> version{0};
    FlightEntry entry;
};

struct Storage {
    explicit Storage(std::size_t capacity)
        : slots(capacity == 0 ? 1 : capacity) {}
    std::vector<Slot> slots;
    std::atomic<std::uint64_t> head{0};  ///< total notes since arming
};

struct FlightState {
    std::mutex mutex;  ///< guards arm/disarm/dump and the cold fields
    std::atomic<Storage*> storage{nullptr};
    std::atomic<bool> armed{false};
    std::vector<std::pair<std::string, std::uint64_t>> baseline;
    /// Replaced rings are retired, not freed: a writer that loaded the
    /// old pointer may still be mid-note. Bounded by the number of
    /// flight_arm() calls, which is O(1) per process outside tests.
    std::vector<std::unique_ptr<Storage>> retired;
};

FlightState& state() {
    static FlightState s;
    return s;
}

void store_name(FlightEntry& e, const std::string& name) {
    char buf[kNameBytes] = {};
    std::memcpy(buf, name.data(),
                std::min(name.size(), kNameBytes - 1));
    for (std::size_t w = 0; w < kNameWords; ++w) {
        std::uint64_t word = 0;
        std::memcpy(&word, buf + w * sizeof word, sizeof word);
        e.name_words[w].store(word, std::memory_order_relaxed);
    }
}

std::string load_name(const FlightEntry& e) {
    char buf[kNameBytes];
    for (std::size_t w = 0; w < kNameWords; ++w) {
        const std::uint64_t word =
            e.name_words[w].load(std::memory_order_relaxed);
        std::memcpy(buf + w * sizeof word, &word, sizeof word);
    }
    buf[kNameBytes - 1] = '\0';
    return std::string(buf);
}

/// Name of the flight dump the signal handler writes; set before the
/// handlers are installed, never mutated afterwards.
std::string& signal_dump_name() {
    static std::string name;
    return name;
}

void signal_dump_handler(int signum) {
    // Best effort: write_flight allocates and takes a mutex, neither of
    // which is async-signal-safe — acceptable for a simulator
    // post-mortem, where the alternative is no dump at all.
    if (const auto path = write_flight(signal_dump_name()))
        std::fprintf(stderr, "flight recorder dumped to %s (signal %d)\n",
                     path->c_str(), signum);
    std::signal(signum, SIG_DFL);
    std::raise(signum);
}

}  // namespace

void flight_arm(std::size_t capacity) {
    FlightState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    auto fresh = std::make_unique<Storage>(capacity);
    Storage* old = s.storage.load(std::memory_order_relaxed);
    s.storage.store(fresh.get(), std::memory_order_release);
    if (old != nullptr)
        s.retired.emplace_back(old);  // adopt; see FlightState::retired
    fresh.release();
    s.baseline = MetricsRegistry::global().snapshot().counters;
    s.armed.store(true, std::memory_order_release);
}

void flight_disarm() {
    state().armed.store(false, std::memory_order_release);
}

bool flight_armed() {
    return state().armed.load(std::memory_order_acquire);
}

void flight_note(const SpanRecord& record) {
    FlightState& s = state();
    if (!s.armed.load(std::memory_order_acquire)) return;
    Storage* store = s.storage.load(std::memory_order_acquire);
    if (store == nullptr) return;
    const std::uint64_t k =
        store->head.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = store->slots[k % store->slots.size()];
    slot.version.store(2 * k + 1, std::memory_order_release);
    FlightEntry& e = slot.entry;
    store_name(e, record.name);
    e.thread.store(record.thread, std::memory_order_relaxed);
    e.depth.store(record.depth, std::memory_order_relaxed);
    e.trace_id.store(record.trace_id, std::memory_order_relaxed);
    e.span_id.store(record.span_id, std::memory_order_relaxed);
    e.parent_span.store(record.parent_span, std::memory_order_relaxed);
    e.adopted.store(record.adopted, std::memory_order_relaxed);
    e.has_sim.store(record.has_sim, std::memory_order_relaxed);
    e.start_ns.store(record.start_ns, std::memory_order_relaxed);
    e.wall_ns.store(record.wall_ns, std::memory_order_relaxed);
    e.sim_start_s.store(record.sim_start_s, std::memory_order_relaxed);
    e.sim_elapsed_s.store(record.sim_elapsed_s,
                          std::memory_order_relaxed);
    slot.version.store(2 * k + 2, std::memory_order_release);
}

Json flight_dump() {
    FlightState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);

    Json::Object root;
    root.emplace("schema", "press.flight/v1");

    Storage* store = s.storage.load(std::memory_order_acquire);
    Json::Array spans;
    std::uint64_t recorded = 0;
    std::size_t capacity = 0;
    if (store != nullptr) {
        capacity = store->slots.size();
        const std::uint64_t head =
            store->head.load(std::memory_order_acquire);
        recorded = head;
        const std::uint64_t window =
            std::min<std::uint64_t>(head, capacity);
        for (std::uint64_t k = head - window; k < head; ++k) {
            const Slot& slot = store->slots[k % capacity];
            if (slot.version.load(std::memory_order_acquire) !=
                2 * k + 2)
                continue;  // in-progress or already lapped: torn, skip
            const FlightEntry& e = slot.entry;
            Json::Object span;
            span.emplace("name", load_name(e));
            span.emplace("thread",
                         e.thread.load(std::memory_order_relaxed));
            span.emplace("depth",
                         e.depth.load(std::memory_order_relaxed));
            span.emplace("trace_id",
                         e.trace_id.load(std::memory_order_relaxed));
            span.emplace("span_id",
                         e.span_id.load(std::memory_order_relaxed));
            span.emplace("parent_span",
                         e.parent_span.load(std::memory_order_relaxed));
            span.emplace("adopted",
                         e.adopted.load(std::memory_order_relaxed));
            span.emplace(
                "start_us",
                static_cast<double>(
                    e.start_ns.load(std::memory_order_relaxed)) /
                    1000.0);
            span.emplace(
                "wall_us",
                static_cast<double>(
                    e.wall_ns.load(std::memory_order_relaxed)) /
                    1000.0);
            if (e.has_sim.load(std::memory_order_relaxed)) {
                span.emplace(
                    "sim_start_s",
                    e.sim_start_s.load(std::memory_order_relaxed));
                span.emplace(
                    "sim_elapsed_s",
                    e.sim_elapsed_s.load(std::memory_order_relaxed));
            }
            // Re-check after the field reads: a writer that started
            // while we copied leaves a different version behind.
            if (slot.version.load(std::memory_order_acquire) !=
                2 * k + 2)
                continue;
            spans.emplace_back(std::move(span));
        }
    }
    root.emplace("spans", std::move(spans));
    root.emplace("spans_recorded", recorded);
    root.emplace("capacity", capacity);

    // Counter deltas since arming; counters created after the baseline
    // snapshot delta from zero.
    Json::Object counters;
    const auto current = MetricsRegistry::global().snapshot().counters;
    for (const auto& [name, value] : current) {
        std::uint64_t base = 0;
        const auto it = std::lower_bound(
            s.baseline.begin(), s.baseline.end(), name,
            [](const auto& entry, const std::string& n) {
                return entry.first < n;
            });
        if (it != s.baseline.end() && it->first == name)
            base = it->second;
        Json::Object entry;
        entry.emplace("value", value);
        entry.emplace("delta", value >= base ? value - base
                                             : std::uint64_t{0});
        counters.emplace(name, std::move(entry));
    }
    root.emplace("counters", std::move(counters));
    return Json(std::move(root));
}

std::optional<std::string> write_flight(const std::string& name) {
    if (state().storage.load(std::memory_order_acquire) == nullptr)
        return std::nullopt;
    const std::string path = export_dir() + "/flight_" + name + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return std::nullopt;
    const std::string doc = flight_dump().dump();
    const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    if (written != doc.size()) return std::nullopt;
    return path;
}

void flight_install_signal_dump(const std::string& name) {
    signal_dump_name() = name;
    for (int signum : {SIGABRT, SIGSEGV, SIGFPE, SIGILL})
        std::signal(signum, signal_dump_handler);
}

std::string validate_flight(const Json& t) {
    if (!t.is_object()) return "document is not an object";
    for (const char* key :
         {"schema", "spans", "spans_recorded", "capacity", "counters"})
        if (!t.contains(key))
            return std::string("missing root key \"") + key + "\"";
    if (!t.at("schema").is_string() ||
        t.at("schema").as_string() != "press.flight/v1")
        return "schema is not \"press.flight/v1\"";
    if (!t.at("spans").is_array()) return "spans is not an array";
    const auto is_uint = [](const Json& v) {
        return v.is_number() && v.as_double() >= 0.0;
    };
    for (const Json& s : t.at("spans").as_array()) {
        if (!s.is_object() || !s.contains("name") ||
            !s.at("name").is_string())
            return "flight span missing string \"name\"";
        for (const char* key :
             {"thread", "depth", "trace_id", "span_id", "parent_span"})
            if (!s.contains(key) || !is_uint(s.at(key)))
                return std::string("flight span \"") +
                       s.at("name").as_string() +
                       "\" missing integer \"" + key + "\"";
        if (!s.contains("adopted") || !s.at("adopted").is_bool())
            return "flight span missing bool \"adopted\"";
        for (const char* key : {"start_us", "wall_us"})
            if (!s.contains(key) || !s.at(key).is_number())
                return std::string("flight span \"") +
                       s.at("name").as_string() +
                       "\" missing number \"" + key + "\"";
    }
    if (!is_uint(t.at("spans_recorded")) || !is_uint(t.at("capacity")))
        return "spans_recorded/capacity must be non-negative integers";
    if (!t.at("counters").is_object())
        return "counters is not an object";
    for (const auto& [name, entry] : t.at("counters").as_object())
        if (!entry.is_object() || !entry.contains("value") ||
            !entry.contains("delta") || !is_uint(entry.at("value")) ||
            !is_uint(entry.at("delta")))
            return "counters." + name +
                   " must be {value: n, delta: n}";
    return "";
}

}  // namespace press::obs
