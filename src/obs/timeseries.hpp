// Observability: the Timeseries store — a rolling window on the metrics
// registry.
//
// The registry (obs/metrics.hpp) answers "what happened since the
// process started"; a live operator needs "what is happening *now*".
// Timeseries closes that gap: on a fixed cadence (the caller supplies
// `now_s`, so the same store runs on a SimClock or on wall time) it
// samples every tracked metric into a fixed-capacity ring of windows:
//
//   Counter    the delta accumulated during the window,
//   Gauge      the value at the window boundary,
//   Histogram  a per-window digest — count/sum deltas plus approximate
//              p50/p99 derived from the window's bucket deltas.
//
// On top of the numeric windows ride trace *exemplars*: sampled
// trace_ids attached to slow observations of one latency metric (the
// service feeds `service.request_us`), so a p99 spike in a streamed
// frame links directly to a span tree in the Perfetto export instead of
// being an anonymous number. Each window always keeps its worst
// observation plus every observation above `exemplar_threshold_us`, up
// to a fixed capacity.
//
// The sampling path is alloc-free and lock-free by construction:
// refresh() (cold, allocating) resolves stable registry handles and
// sizes every ring up front; sample() then only reads relaxed atomics
// through those handles and writes into preallocated slots — this is
// what lets the perf gate assert zero operator-new calls on the path.
// Like control::Service, a Timeseries is single-writer: one thread owns
// refresh()/sample()/note_exemplar(); the metrics being sampled may be
// written from anywhere (they are atomics).
//
// latest_frame() renders the newest window as a `press.timeseries/v1`
// JSON document (the payload of a control-plane TelemetryFrame);
// validate_timeseries() checks a parsed frame — or a captured stream of
// frames — against that schema, the same emit/validate pairing
// obs/export.hpp uses for press.telemetry/v2.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace press::obs {

struct TimeseriesOptions {
    /// Windows retained per metric (ring capacity).
    std::size_t ring_capacity = 120;
    /// Sampling cadence, in the caller's clock domain. <= 0 disables
    /// sampling entirely (Service treats it as "introspection off").
    double interval_s = 0.5;
    /// Exemplar slots kept per window (the window max plus the slowest
    /// threshold-crossers).
    std::size_t exemplar_capacity = 4;
    /// Observations above this are exemplar-worthy on their own; the
    /// per-window maximum is kept regardless.
    double exemplar_threshold_us = 5000.0;
    /// Metric name exemplars are attributed to in emitted frames.
    std::string exemplar_metric = "service.request_us";
};

/// One sampled trace exemplar: a slow observation and the trace it
/// belongs to.
struct Exemplar {
    double value_us = 0.0;
    std::uint64_t trace_id = 0;
    double t_s = 0.0;  ///< clock reading when the observation was noted
};

/// Per-window digest of one histogram's activity.
struct HistogramWindow {
    std::uint64_t count = 0;  ///< observations during the window
    double sum = 0.0;         ///< sum delta during the window
    double p50 = 0.0;         ///< approximate (bucket upper bound)
    double p99 = 0.0;
};

class Timeseries {
public:
    explicit Timeseries(TimeseriesOptions options = {});

    const TimeseriesOptions& options() const { return options_; }

    /// Resolves registry handles for every metric currently registered
    /// and (re)sizes rings for newly seen names. Cold path: allocates.
    /// Existing rings and baselines are preserved. Returns the number of
    /// tracked metrics.
    std::size_t refresh();

    /// refresh() only when the registry has grown since the last call —
    /// the cheap steady-state guard Service runs before each sample.
    void refresh_if_grown();

    /// Closes the current window at `now_s`: every tracked metric gets
    /// one ring slot (counter delta, gauge value, histogram digest), the
    /// accumulating exemplar set rotates into the closed window, and the
    /// revision advances. Alloc-free after refresh().
    std::uint64_t sample(double now_s);

    /// Feeds one latency observation to the exemplar sampler (the
    /// service calls this alongside its service.request_us observe).
    /// Alloc-free; a zero trace_id is kept but marks "no trace".
    void note_exemplar(double value_us, std::uint64_t trace_id,
                       double now_s);

    /// Monotonic count of completed sample() calls — the metrics
    /// snapshot revision StatusReply advertises.
    std::uint64_t revision() const { return revision_; }
    /// Clock reading of the newest closed window (0 before the first).
    double last_sample_s() const { return last_sample_s_; }

    std::size_t tracked_metrics() const;

    /// The newest closed window rendered as a `press.timeseries/v1`
    /// document, restricted to metric names starting with `prefix`
    /// (empty = everything). `with_exemplars` gates the exemplars array.
    /// Cold path: allocates. Valid (if empty) even before any sample().
    Json latest_frame(const std::string& prefix = std::string(),
                      bool with_exemplars = true) const;

    /// Ring contents oldest-first, for tests and offline rendering.
    std::vector<double> counter_deltas(const std::string& name) const;
    std::vector<double> gauge_samples(const std::string& name) const;
    std::vector<HistogramWindow> histogram_windows(
        const std::string& name) const;
    /// Exemplars of the newest closed window, slowest first.
    std::vector<Exemplar> window_exemplars() const;

private:
    template <typename Slot>
    struct Ring {
        std::vector<Slot> slots;  ///< capacity fixed at refresh()
        std::size_t head = 0;     ///< next write position
        std::size_t size = 0;

        void push(const Slot& s) {
            slots[head] = s;
            head = (head + 1) % slots.size();
            if (size < slots.size()) ++size;
        }
        /// i = 0 is the oldest retained slot.
        const Slot& at(std::size_t i) const {
            return slots[(head + slots.size() - size + i) % slots.size()];
        }
        const Slot& newest() const { return at(size - 1); }
    };

    struct CounterTrack {
        std::string name;
        const Counter* handle = nullptr;
        std::uint64_t last = 0;
        Ring<std::uint64_t> ring;
    };
    struct GaugeTrack {
        std::string name;
        const Gauge* handle = nullptr;
        Ring<double> ring;
    };
    struct HistogramTrack {
        std::string name;
        const Histogram* handle = nullptr;
        std::vector<double> bounds;
        std::vector<std::uint64_t> last_counts;   ///< bounds+1 entries
        std::vector<std::uint64_t> delta_counts;  ///< scratch, bounds+1
        std::uint64_t last_count = 0;
        double last_sum = 0.0;
        Ring<HistogramWindow> ring;
    };

    static double percentile_from_deltas(
        const std::vector<double>& bounds,
        const std::vector<std::uint64_t>& deltas, std::uint64_t total,
        double q);

    TimeseriesOptions options_;
    std::vector<CounterTrack> counters_;
    std::vector<GaugeTrack> gauges_;
    std::vector<HistogramTrack> histograms_;
    std::size_t known_registry_size_ = 0;

    // Exemplars: `pending_` accumulates during the open window (slot 0
    // reserved for the running max), `closed_` is the last completed
    // window. Fixed capacity, swap on sample().
    std::vector<Exemplar> pending_;
    std::size_t pending_size_ = 0;
    bool pending_has_max_ = false;
    std::vector<Exemplar> closed_;
    std::size_t closed_size_ = 0;

    std::uint64_t revision_ = 0;
    double last_sample_s_ = 0.0;
    double prev_sample_s_ = 0.0;
};

/// Validates a parsed document against the `press.timeseries/v1` schema:
/// either one frame (objects of counters/gauges/histogram digests plus
/// an exemplars array) or a captured stream `{schema, frames: [...]}`.
/// Returns an empty string when valid, else the first violation.
std::string validate_timeseries(const Json& doc);

}  // namespace press::obs
