// Observability: named metrics with cheap, thread-safe updates.
//
// The registry is the single sink every instrumented component reports
// into, so a run can be exported as one machine-readable document (see
// obs/export.hpp, schema `press.telemetry/v2`) instead of each subsystem
// keeping ad-hoc counters. Four metric kinds cover the library's needs:
//
//   Counter    monotonic event count (cache hits, frames dropped),
//   Gauge      last-written value (worker idle seconds, elapsed time),
//   Histogram  fixed-bucket distribution (task latency in microseconds),
//   Series     a bounded vector of doubles (a search's best-score
//              convergence trace).
//
// Updates are lock-free relaxed atomics (Counter/Gauge/Histogram) or a
// short uncontended mutex (Series); handles returned by the registry are
// stable for the registry's lifetime, so hot paths resolve a metric once
// (function-local static reference) and update it with a single atomic
// add. Metric names are dot-separated `<layer>.<component>.<metric>` with
// a unit suffix where one applies (`_s` seconds, `_us` microseconds,
// `_db` decibels); docs/TELEMETRY.md documents every name the library
// emits.
//
// Collection is globally gated by obs::enabled() — the PRESS_TELEMETRY
// environment variable, overridable at runtime — and instrumented call
// sites are expected to check it so that disabling telemetry reduces the
// instrumentation to one relaxed bool load per site.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace press::obs {

/// True when telemetry collection is on. Defaults from the PRESS_TELEMETRY
/// environment variable at first call ("0"/"off"/"false"/"no" disable,
/// case-insensitively; any other value, or the variable being unset,
/// enables).
bool enabled();

/// Runtime override of the PRESS_TELEMETRY default (benches use this to
/// measure the instrumentation's own overhead).
void set_enabled(bool on);

/// Directory exports land in: PRESS_TELEMETRY when it names a directory
/// (any value other than the on/off literals), else ".".
std::string export_dir();

/// How a PRESS_TELEMETRY value is interpreted. The on/off literals
/// ("1"/"on"/"true"/"yes", "0"/"off"/"false"/"no") match
/// case-insensitively — `TRUE`, `On` and `OFF` are switches, not export
/// directories; anything else (and the empty string aside) names the
/// export directory, which also implies collection is on.
enum class TelemetryEnv { kOn, kOff, kDirectory };

/// Classifies one PRESS_TELEMETRY value; the single parser behind both
/// enabled() and export_dir(). An empty value classifies as kOn.
TelemetryEnv classify_telemetry_env(std::string_view value);

/// Monotonic event counter.
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written value.
class Gauge {
public:
    void set(double v) noexcept {
        value_.store(v, std::memory_order_relaxed);
    }
    void add(double v) noexcept {
        value_.fetch_add(v, std::memory_order_relaxed);
    }
    double value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations v <= bounds[i]
/// (first matching bound); one implicit overflow bucket collects
/// v > bounds.back() and non-finite observations. Bounds are set at
/// creation and never change.
class Histogram {
public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double v) noexcept;

    const std::vector<double>& bounds() const { return bounds_; }
    /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
    std::vector<std::uint64_t> bucket_counts() const;
    /// One bucket's count without materializing the vector — the
    /// alloc-free read the Timeseries sampler uses. `i` must be
    /// < bounds().size() + 1.
    std::uint64_t bucket_value(std::size_t i) const noexcept {
        return buckets_[i].load(std::memory_order_relaxed);
    }
    std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const noexcept {
        return sum_.load(std::memory_order_relaxed);
    }
    void reset() noexcept;

private:
    std::vector<double> bounds_;  ///< ascending upper bounds
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/// A bounded vector of doubles (e.g. one search's best-score-so-far
/// trajectory). set() replaces the content; values beyond kMaxPoints are
/// truncated (total_length() keeps the untruncated size).
class Series {
public:
    static constexpr std::size_t kMaxPoints = 16384;

    void set(const std::vector<double>& values);
    void append(double v);
    void append(const std::vector<double>& values);
    std::vector<double> values() const;
    std::size_t total_length() const;
    void reset();

private:
    mutable std::mutex mutex_;
    std::vector<double> values_;
    std::size_t total_length_ = 0;
};

/// Process-wide registry of named metrics. Lookup takes a mutex (resolve
/// once, cache the reference); updates through the returned handles are
/// lock-free. Handles stay valid for the registry's lifetime.
class MetricsRegistry {
public:
    static MetricsRegistry& global();

    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    /// `bounds` is consulted only when `name` is first created.
    Histogram& histogram(std::string_view name, std::vector<double> bounds);
    Series& series(std::string_view name);

    /// A coherent copy for export, names sorted lexicographically.
    struct Snapshot {
        std::vector<std::pair<std::string, std::uint64_t>> counters;
        std::vector<std::pair<std::string, double>> gauges;
        struct HistogramData {
            std::string name;
            std::vector<double> bounds;
            std::vector<std::uint64_t> counts;
            std::uint64_t count = 0;
            double sum = 0.0;
        };
        std::vector<HistogramData> histograms;
        struct SeriesData {
            std::string name;
            std::vector<double> values;
            std::size_t total_length = 0;
        };
        std::vector<SeriesData> series;
    };
    Snapshot snapshot() const;

    /// Total registered metrics of all four kinds. Cheap (one lock, no
    /// allocation): the Timeseries store polls it to decide whether a
    /// re-resolve of its handle set is due.
    std::size_t metric_count() const;

    /// Zeroes every registered metric (handles stay valid). For tests and
    /// benches that want a per-phase export.
    void reset();

private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms_;
    std::map<std::string, std::unique_ptr<Series>, std::less<>> series_;
};

}  // namespace press::obs
