#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace press::obs {

namespace {

void write_escaped(std::string& out, const std::string& s) {
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
}

void write_number(std::string& out, double d) {
    if (!std::isfinite(d)) {  // JSON has no inf/nan; export null
        out += "null";
        return;
    }
    // Integers (the common case: counters, counts) print without a
    // fraction so they survive a parse-reserialize cycle unchanged.
    if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", d);
        out += buf;
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
}

void indent_to(std::string& out, int indent) {
    out.append(static_cast<std::size_t>(indent) * 2, ' ');
}

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json run() {
        Json v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters");
        return v;
    }

private:
    [[noreturn]] void fail(const char* what) const {
        throw std::runtime_error("JSON parse error at offset " +
                                 std::to_string(pos_) + ": " + what);
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    char take() {
        const char c = peek();
        ++pos_;
        return c;
    }

    void expect(char c) {
        if (take() != c) {
            --pos_;
            fail("unexpected character");
        }
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    Json parse_value() {
        skip_ws();
        const char c = peek();
        switch (c) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return Json(parse_string());
            case 't':
                if (!consume_literal("true")) fail("bad literal");
                return Json(true);
            case 'f':
                if (!consume_literal("false")) fail("bad literal");
                return Json(false);
            case 'n':
                if (!consume_literal("null")) fail("bad literal");
                return Json(nullptr);
            default: return parse_number();
        }
    }

    Json parse_object() {
        expect('{');
        Json::Object obj;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return Json(std::move(obj));
        }
        for (;;) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            obj.emplace(std::move(key), parse_value());
            skip_ws();
            const char c = take();
            if (c == '}') return Json(std::move(obj));
            if (c != ',') {
                --pos_;
                fail("expected ',' or '}'");
            }
        }
    }

    Json parse_array() {
        expect('[');
        Json::Array arr;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return Json(std::move(arr));
        }
        for (;;) {
            arr.push_back(parse_value());
            skip_ws();
            const char c = take();
            if (c == ']') return Json(std::move(arr));
            if (c != ',') {
                --pos_;
                fail("expected ',' or ']'");
            }
        }
    }

    void append_utf8(std::string& out, std::uint32_t cp) {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    std::uint32_t parse_hex4() {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = take();
            v <<= 4;
            if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
            else fail("bad \\u escape");
        }
        return v;
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            const char c = take();
            if (c == '"') return out;
            if (c == '\\') {
                const char e = take();
                switch (e) {
                    case '"': out.push_back('"'); break;
                    case '\\': out.push_back('\\'); break;
                    case '/': out.push_back('/'); break;
                    case 'b': out.push_back('\b'); break;
                    case 'f': out.push_back('\f'); break;
                    case 'n': out.push_back('\n'); break;
                    case 'r': out.push_back('\r'); break;
                    case 't': out.push_back('\t'); break;
                    case 'u': {
                        std::uint32_t cp = parse_hex4();
                        if (cp >= 0xD800 && cp <= 0xDBFF) {
                            // High surrogate: require the low half.
                            if (take() != '\\' || take() != 'u')
                                fail("lone surrogate");
                            const std::uint32_t lo = parse_hex4();
                            if (lo < 0xDC00 || lo > 0xDFFF)
                                fail("bad surrogate pair");
                            cp = 0x10000 + ((cp - 0xD800) << 10) +
                                 (lo - 0xDC00);
                        }
                        append_utf8(out, cp);
                        break;
                    }
                    default: fail("bad escape");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
            } else {
                out.push_back(c);
            }
        }
    }

    Json parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) fail("expected a value");
        const std::string token(text_.substr(start, pos_ - start));
        char* end = nullptr;
        const double d = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) fail("bad number");
        return Json(d);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

void Json::write(std::string& out, int indent) const {
    if (is_null()) {
        out += "null";
    } else if (is_bool()) {
        out += as_bool() ? "true" : "false";
    } else if (is_number()) {
        write_number(out, as_double());
    } else if (is_string()) {
        write_escaped(out, as_string());
    } else if (is_array()) {
        const Array& arr = as_array();
        if (arr.empty()) {
            out += "[]";
            return;
        }
        out += "[\n";
        for (std::size_t i = 0; i < arr.size(); ++i) {
            indent_to(out, indent + 1);
            arr[i].write(out, indent + 1);
            if (i + 1 < arr.size()) out.push_back(',');
            out.push_back('\n');
        }
        indent_to(out, indent);
        out.push_back(']');
    } else {
        const Object& obj = as_object();
        if (obj.empty()) {
            out += "{}";
            return;
        }
        out += "{\n";
        std::size_t i = 0;
        for (const auto& [key, value] : obj) {
            indent_to(out, indent + 1);
            write_escaped(out, key);
            out += ": ";
            value.write(out, indent + 1);
            if (++i < obj.size()) out.push_back(',');
            out.push_back('\n');
        }
        indent_to(out, indent);
        out.push_back('}');
    }
}

std::string Json::dump() const {
    std::string out;
    write(out, 0);
    out.push_back('\n');
    return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace press::obs
