#include "obs/manifest.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <thread>

#include "obs/build_info.hpp"

namespace press::obs {

std::size_t env_threads() {
    const char* env = std::getenv("PRESS_THREADS");
    if (env == nullptr) return 0;
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || parsed <= 0) return 0;
    return static_cast<std::size_t>(std::min(parsed, 64L));
}

std::string env_kernel_dispatch() {
    const char* env = std::getenv("PRESS_KERNEL");
    if (env == nullptr) return "native";
    std::string value(env);
    std::transform(value.begin(), value.end(), value.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return value == "scalar" ? "scalar" : "native";
}

RunManifest RunManifest::capture(std::string scenario, std::uint64_t seed) {
    RunManifest m;
    m.git_describe = kBuildGitDescribe;
    m.build_type = kBuildType;
    m.compiler = kBuildCompiler;
    m.cxx_flags = kBuildCxxFlags;
    m.sanitize = kBuildSanitize;
    const std::size_t env = env_threads();
    if (env != 0) {
        m.press_threads = env;
    } else {
        const unsigned hw = std::thread::hardware_concurrency();
        m.press_threads = hw == 0 ? 1 : static_cast<std::size_t>(hw);
    }
    m.kernel_dispatch = env_kernel_dispatch();
    m.seed = seed;
    m.scenario = std::move(scenario);
    return m;
}

}  // namespace press::obs
