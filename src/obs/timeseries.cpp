#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace press::obs {

namespace {

bool is_uint(const Json& v) {
    if (!v.is_number()) return false;
    const double d = v.as_double();
    return d >= 0.0 && std::floor(d) == d;
}

bool is_hex_id(const std::string& s) {
    if (s.size() < 3 || s.compare(0, 2, "0x") != 0) return false;
    for (std::size_t i = 2; i < s.size(); ++i) {
        const char c = s[i];
        const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
        if (!hex) return false;
    }
    return true;
}

std::string hex_id(std::uint64_t id) {
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(id));
    return buf;
}

}  // namespace

Timeseries::Timeseries(TimeseriesOptions options)
    : options_(std::move(options)) {
    if (options_.ring_capacity == 0) options_.ring_capacity = 1;
    if (options_.exemplar_capacity == 0) options_.exemplar_capacity = 1;
    pending_.resize(options_.exemplar_capacity);
    closed_.resize(options_.exemplar_capacity);
}

std::size_t Timeseries::refresh() {
    MetricsRegistry& registry = MetricsRegistry::global();
    const MetricsRegistry::Snapshot snap = registry.snapshot();

    auto known = [](const auto& tracks, const std::string& name) {
        for (const auto& t : tracks)
            if (t.name == name) return true;
        return false;
    };

    for (const auto& [name, value] : snap.counters) {
        if (known(counters_, name)) continue;
        CounterTrack track;
        track.name = name;
        track.handle = &registry.counter(name);
        // Baseline at discovery: the first window reports activity since
        // tracking began, not since process start.
        track.last = value;
        track.ring.slots.resize(options_.ring_capacity);
        counters_.push_back(std::move(track));
    }
    for (const auto& [name, value] : snap.gauges) {
        if (known(gauges_, name)) continue;
        GaugeTrack track;
        track.name = name;
        track.handle = &registry.gauge(name);
        track.ring.slots.resize(options_.ring_capacity);
        gauges_.push_back(std::move(track));
    }
    for (const auto& h : snap.histograms) {
        if (known(histograms_, h.name)) continue;
        HistogramTrack track;
        track.name = h.name;
        track.handle = &registry.histogram(h.name, h.bounds);
        track.bounds = h.bounds;
        track.last_counts = h.counts;
        track.delta_counts.resize(h.counts.size());
        track.last_count = h.count;
        track.last_sum = h.sum;
        track.ring.slots.resize(options_.ring_capacity);
        histograms_.push_back(std::move(track));
    }
    // Series are deliberately not sampled: they are already bounded
    // per-run vectors, and replaying them per window would dwarf every
    // frame.
    known_registry_size_ = registry.metric_count();
    return tracked_metrics();
}

void Timeseries::refresh_if_grown() {
    if (MetricsRegistry::global().metric_count() != known_registry_size_)
        refresh();
}

std::size_t Timeseries::tracked_metrics() const {
    return counters_.size() + gauges_.size() + histograms_.size();
}

double Timeseries::percentile_from_deltas(
    const std::vector<double>& bounds,
    const std::vector<std::uint64_t>& deltas, std::uint64_t total,
    double q) {
    if (total == 0) return 0.0;
    const std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < deltas.size(); ++i) {
        cumulative += deltas[i];
        if (cumulative >= target) {
            // Overflow bucket: everything beyond the last bound reports
            // the last bound — approximate, like the export digests.
            if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
            return bounds[i];
        }
    }
    return bounds.empty() ? 0.0 : bounds.back();
}

std::uint64_t Timeseries::sample(double now_s) {
    for (auto& t : counters_) {
        const std::uint64_t value = t.handle->value();
        // A registry reset() moves a counter backwards; treat the new
        // value as the whole window's activity rather than underflowing.
        const std::uint64_t delta = value >= t.last ? value - t.last : value;
        t.last = value;
        t.ring.push(delta);
    }
    for (auto& t : gauges_) t.ring.push(t.handle->value());
    for (auto& t : histograms_) {
        const std::uint64_t count = t.handle->count();
        const double sum = t.handle->sum();
        const bool reset = count < t.last_count;
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < t.delta_counts.size(); ++i) {
            const std::uint64_t bucket = t.handle->bucket_value(i);
            t.delta_counts[i] =
                reset || bucket < t.last_counts[i]
                    ? bucket
                    : bucket - t.last_counts[i];
            t.last_counts[i] = bucket;
            total += t.delta_counts[i];
        }
        HistogramWindow window;
        window.count = reset ? count : count - t.last_count;
        window.sum = reset ? sum : sum - t.last_sum;
        window.p50 =
            percentile_from_deltas(t.bounds, t.delta_counts, total, 0.50);
        window.p99 =
            percentile_from_deltas(t.bounds, t.delta_counts, total, 0.99);
        t.last_count = count;
        t.last_sum = sum;
        t.ring.push(window);
    }

    // Rotate the exemplar window: pending becomes the closed window the
    // next frame reports; the accumulator restarts empty.
    std::swap(pending_, closed_);
    closed_size_ = pending_size_;
    pending_size_ = 0;
    pending_has_max_ = false;
    // Slowest first, so a frame trimmed to capacity keeps the worst.
    std::sort(closed_.begin(),
              closed_.begin() + static_cast<std::ptrdiff_t>(closed_size_),
              [](const Exemplar& a, const Exemplar& b) {
                  return a.value_us > b.value_us;
              });

    prev_sample_s_ = last_sample_s_;
    last_sample_s_ = now_s;
    return ++revision_;
}

void Timeseries::note_exemplar(double value_us, std::uint64_t trace_id,
                               double now_s) {
    // Slot 0 always tracks the window's worst observation, so every
    // window with any traffic yields at least one exemplar; the
    // remaining slots collect threshold-crossers first come. An
    // observation lives in exactly one slot: a new maximum takes slot 0
    // and the max it displaced — if it crossed the threshold on its own
    // merits — moves into a threshold slot, so no frame ever lists the
    // same observation twice.
    if (!pending_has_max_ || value_us > pending_[0].value_us) {
        const Exemplar displaced = pending_[0];
        const bool had_max = pending_has_max_;
        pending_[0] = Exemplar{value_us, trace_id, now_s};
        pending_has_max_ = true;
        if (pending_size_ == 0) pending_size_ = 1;
        if (had_max && displaced.value_us >= options_.exemplar_threshold_us &&
            pending_size_ < pending_.size()) {
            pending_[pending_size_++] = displaced;
        }
    } else if (value_us >= options_.exemplar_threshold_us &&
               pending_size_ < pending_.size()) {
        pending_[pending_size_++] = Exemplar{value_us, trace_id, now_s};
    }
}

Json Timeseries::latest_frame(const std::string& prefix,
                              bool with_exemplars) const {
    auto matches = [&prefix](const std::string& name) {
        return prefix.empty() || name.rfind(prefix, 0) == 0;
    };

    Json counters = Json::object();
    for (const auto& t : counters_) {
        if (t.ring.size == 0 || !matches(t.name)) continue;
        counters[t.name] = static_cast<double>(t.ring.newest());
    }
    Json gauges = Json::object();
    for (const auto& t : gauges_) {
        if (t.ring.size == 0 || !matches(t.name)) continue;
        gauges[t.name] = t.ring.newest();
    }
    Json histograms = Json::object();
    for (const auto& t : histograms_) {
        if (t.ring.size == 0 || !matches(t.name)) continue;
        const HistogramWindow& w = t.ring.newest();
        Json digest = Json::object();
        digest["count"] = static_cast<double>(w.count);
        digest["sum"] = w.sum;
        digest["p50"] = w.p50;
        digest["p99"] = w.p99;
        histograms[t.name] = std::move(digest);
    }
    Json exemplars = Json::array();
    if (with_exemplars && matches(options_.exemplar_metric)) {
        for (std::size_t i = 0; i < closed_size_; ++i) {
            Json e = Json::object();
            e["metric"] = options_.exemplar_metric;
            e["value_us"] = closed_[i].value_us;
            e["trace_id"] = hex_id(closed_[i].trace_id);
            e["t_s"] = closed_[i].t_s;
            exemplars.as_array().push_back(std::move(e));
        }
    }

    Json frame = Json::object();
    frame["schema"] = "press.timeseries/v1";
    frame["revision"] = static_cast<double>(revision_);
    frame["t_s"] = last_sample_s_;
    frame["interval_s"] =
        revision_ > 1 ? last_sample_s_ - prev_sample_s_ : options_.interval_s;
    frame["counters"] = std::move(counters);
    frame["gauges"] = std::move(gauges);
    frame["histograms"] = std::move(histograms);
    frame["exemplars"] = std::move(exemplars);
    return frame;
}

std::vector<double> Timeseries::counter_deltas(
    const std::string& name) const {
    std::vector<double> out;
    for (const auto& t : counters_) {
        if (t.name != name) continue;
        out.reserve(t.ring.size);
        for (std::size_t i = 0; i < t.ring.size; ++i)
            out.push_back(static_cast<double>(t.ring.at(i)));
    }
    return out;
}

std::vector<double> Timeseries::gauge_samples(
    const std::string& name) const {
    std::vector<double> out;
    for (const auto& t : gauges_) {
        if (t.name != name) continue;
        out.reserve(t.ring.size);
        for (std::size_t i = 0; i < t.ring.size; ++i)
            out.push_back(t.ring.at(i));
    }
    return out;
}

std::vector<HistogramWindow> Timeseries::histogram_windows(
    const std::string& name) const {
    std::vector<HistogramWindow> out;
    for (const auto& t : histograms_) {
        if (t.name != name) continue;
        out.reserve(t.ring.size);
        for (std::size_t i = 0; i < t.ring.size; ++i)
            out.push_back(t.ring.at(i));
    }
    return out;
}

std::vector<Exemplar> Timeseries::window_exemplars() const {
    return std::vector<Exemplar>(
        closed_.begin(),
        closed_.begin() + static_cast<std::ptrdiff_t>(closed_size_));
}

namespace {

std::string validate_frame(const Json& frame) {
    if (!frame.is_object()) return "frame is not an object";
    for (const char* key : {"schema", "revision", "t_s", "interval_s",
                            "counters", "gauges", "histograms",
                            "exemplars"}) {
        if (!frame.contains(key))
            return std::string("frame missing key: ") + key;
    }
    if (!frame.at("schema").is_string() ||
        frame.at("schema").as_string() != "press.timeseries/v1")
        return "frame schema is not press.timeseries/v1";
    if (!is_uint(frame.at("revision"))) return "revision must be a uint";
    if (!frame.at("t_s").is_number()) return "t_s must be a number";
    if (!frame.at("interval_s").is_number() ||
        frame.at("interval_s").as_double() < 0.0)
        return "interval_s must be a non-negative number";
    if (!frame.at("counters").is_object())
        return "counters must be an object";
    for (const auto& [name, v] : frame.at("counters").as_object()) {
        if (!is_uint(v))
            return "counter delta must be a uint: " + name;
    }
    if (!frame.at("gauges").is_object()) return "gauges must be an object";
    for (const auto& [name, v] : frame.at("gauges").as_object()) {
        if (!v.is_number()) return "gauge sample must be a number: " + name;
    }
    if (!frame.at("histograms").is_object())
        return "histograms must be an object";
    for (const auto& [name, digest] : frame.at("histograms").as_object()) {
        if (!digest.is_object())
            return "histogram digest must be an object: " + name;
        for (const char* key : {"count", "sum", "p50", "p99"}) {
            if (!digest.contains(key))
                return "histogram digest missing " + std::string(key) +
                       ": " + name;
        }
        if (!is_uint(digest.at("count")))
            return "histogram count must be a uint: " + name;
        for (const char* key : {"sum", "p50", "p99"}) {
            if (!digest.at(key).is_number())
                return "histogram " + std::string(key) +
                       " must be a number: " + name;
        }
    }
    // Optional live-state keys the control-plane service injects into
    // pushed frames (per-session outbox depths and the backpressure
    // watermark they are judged against).
    if (frame.contains("queue_depth") && !is_uint(frame.at("queue_depth")))
        return "queue_depth must be a uint";
    if (frame.contains("outbox_watermark") &&
        !is_uint(frame.at("outbox_watermark")))
        return "outbox_watermark must be a uint";
    if (frame.contains("sessions")) {
        if (!frame.at("sessions").is_object())
            return "sessions must be an object";
        for (const auto& [sid, entry] : frame.at("sessions").as_object()) {
            if (!entry.is_object())
                return "session entry must be an object: " + sid;
            if (!entry.contains("outbox") || !is_uint(entry.at("outbox")))
                return "session entry needs a uint outbox: " + sid;
            if (entry.contains("subscribed") &&
                !entry.at("subscribed").is_bool())
                return "session subscribed must be a bool: " + sid;
        }
    }
    if (!frame.at("exemplars").is_array())
        return "exemplars must be an array";
    for (const Json& e : frame.at("exemplars").as_array()) {
        if (!e.is_object()) return "exemplar must be an object";
        for (const char* key : {"metric", "value_us", "trace_id", "t_s"}) {
            if (!e.contains(key))
                return std::string("exemplar missing key: ") + key;
        }
        if (!e.at("metric").is_string() || e.at("metric").as_string().empty())
            return "exemplar metric must be a non-empty string";
        if (!e.at("value_us").is_number() ||
            e.at("value_us").as_double() < 0.0)
            return "exemplar value_us must be non-negative";
        if (!e.at("trace_id").is_string() ||
            !is_hex_id(e.at("trace_id").as_string()))
            return "exemplar trace_id must be a 0x-prefixed hex string";
        if (!e.at("t_s").is_number()) return "exemplar t_s must be a number";
    }
    return std::string();
}

}  // namespace

std::string validate_timeseries(const Json& doc) {
    if (!doc.is_object()) return "document is not an object";
    if (!doc.contains("schema") || !doc.at("schema").is_string())
        return "missing schema string";
    if (doc.at("schema").as_string() != "press.timeseries/v1")
        return "schema is not press.timeseries/v1";
    if (doc.contains("frames")) {
        // Captured subscription stream: {schema, frames: [frame...]}.
        if (!doc.at("frames").is_array()) return "frames must be an array";
        std::size_t index = 0;
        for (const Json& frame : doc.at("frames").as_array()) {
            const std::string violation = validate_frame(frame);
            if (!violation.empty())
                return "frame " + std::to_string(index) + ": " + violation;
            ++index;
        }
        return std::string();
    }
    return validate_frame(doc);
}

}  // namespace press::obs
