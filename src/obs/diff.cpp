#include "obs/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace press::obs {

namespace {

/// Manifest fields that must match for counters to be comparable at all.
/// `scenario` is also strict identity but compared separately as a
/// comma-separated scene-token set, so a run that *adds* a scene stays
/// comparable (new-scene counters warn like any new counter) while a run
/// that *drops* a baseline scene fails outright.
constexpr const char* kStrictIdentity[] = {"press_threads", "seed"};
/// Manifest fields whose mismatch only softens counter failures to
/// warnings (toolchain changes may legitimately shift FP trajectories).
constexpr const char* kAdvisoryIdentity[] = {"build_type", "compiler",
                                             "sanitize"};
/// Manifest fields recorded and reported on mismatch but deliberately
/// NOT softening: the scalar and native kernel flavors are bit-identical
/// by contract, so counter drift across a kernel_dispatch change is a
/// real regression (the CI scalar-vs-native leg diffs at 0% tolerance
/// and must stay a hard gate).
constexpr const char* kInformationalIdentity[] = {"kernel_dispatch"};

std::string value_str(const Json& v) {
    if (v.is_string()) return v.as_string();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", v.as_double());
    return buf;
}

double rel_drift_pct(double base, double current) {
    const double denom = std::max(std::fabs(base), 1.0);
    return std::fabs(current - base) / denom * 100.0;
}

/// Splits a scenario id into its comma-separated scene tokens (empty
/// tokens dropped). A single-token scenario degenerates to the old exact
/// string comparison.
std::vector<std::string> scenario_tokens(const std::string& scenario) {
    std::vector<std::string> tokens;
    std::size_t start = 0;
    while (start <= scenario.size()) {
        const std::size_t comma = scenario.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? scenario.size() : comma;
        if (end > start) tokens.push_back(scenario.substr(start, end - start));
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return tokens;
}

bool contains_token(const std::vector<std::string>& tokens,
                    const std::string& token) {
    return std::find(tokens.begin(), tokens.end(), token) != tokens.end();
}

}  // namespace

Json make_baseline(const Json& telemetry) {
    Json::Object manifest;
    const Json& src = telemetry.at("manifest");
    for (const char* key : kStrictIdentity)
        manifest.emplace(key, src.at(key));
    manifest.emplace("scenario", src.at("scenario"));
    for (const char* key : kAdvisoryIdentity)
        manifest.emplace(key, src.at(key));
    // Older exports predate kernel_dispatch; baselines written from them
    // simply omit the field.
    for (const char* key : kInformationalIdentity)
        if (src.contains(key)) manifest.emplace(key, src.at(key));

    Json::Object root;
    root.emplace("schema", "press.bench_baseline/v1");
    root.emplace("manifest", std::move(manifest));
    root.emplace("counters",
                 telemetry.at("metrics").at("counters"));
    root.emplace("gauges", telemetry.at("metrics").at("gauges"));
    return Json(std::move(root));
}

DiffResult diff_telemetry(const Json& baseline, const Json& current,
                          double tolerance_pct) {
    DiffResult result;
    if (!baseline.is_object() || !baseline.contains("schema") ||
        !baseline.at("schema").is_string() ||
        baseline.at("schema").as_string() != "press.bench_baseline/v1") {
        result.comparable = false;
        result.failures.push_back(
            "baseline schema is not \"press.bench_baseline/v1\"");
        return result;
    }
    if (!current.is_object() || !current.contains("manifest") ||
        !current.contains("metrics")) {
        result.comparable = false;
        result.failures.push_back(
            "current document is not a telemetry export");
        return result;
    }

    const Json& base_manifest = baseline.at("manifest");
    const Json& cur_manifest = current.at("manifest");
    for (const char* key : kStrictIdentity) {
        if (!base_manifest.contains(key) || !cur_manifest.contains(key) ||
            !(value_str(base_manifest.at(key)) ==
              value_str(cur_manifest.at(key)))) {
            result.comparable = false;
            result.failures.push_back(
                std::string("manifest.") + key +
                " differs from the baseline — runs are not comparable");
        }
    }
    // Scenario identity by scene-token set: every baseline scene must
    // still run (a missing one means its counters silently vanish —
    // incomparable), while scenes added since the baseline only warn so a
    // bench can grow without first invalidating its own gate.
    if (!base_manifest.contains("scenario") ||
        !cur_manifest.contains("scenario")) {
        result.comparable = false;
        result.failures.push_back(
            "manifest.scenario differs from the baseline — runs are not "
            "comparable");
    } else {
        const std::vector<std::string> base_scenes =
            scenario_tokens(value_str(base_manifest.at("scenario")));
        const std::vector<std::string> cur_scenes =
            scenario_tokens(value_str(cur_manifest.at("scenario")));
        for (const std::string& scene : base_scenes) {
            if (!contains_token(cur_scenes, scene)) {
                result.comparable = false;
                result.failures.push_back(
                    "manifest.scenario scene \"" + scene +
                    "\" present in the baseline but missing from this "
                    "run — runs are not comparable");
            }
        }
        for (const std::string& scene : cur_scenes)
            if (!contains_token(base_scenes, scene))
                result.warnings.push_back(
                    "manifest.scenario scene \"" + scene +
                    "\" is new since the baseline (re-snapshot to gate "
                    "its counters)");
    }
    if (!result.comparable) return result;

    bool soften = false;
    for (const char* key : kAdvisoryIdentity) {
        if (base_manifest.contains(key) && cur_manifest.contains(key) &&
            value_str(base_manifest.at(key)) !=
                value_str(cur_manifest.at(key))) {
            soften = true;
            result.warnings.push_back(
                std::string("manifest.") + key + " changed (\"" +
                value_str(base_manifest.at(key)) + "\" -> \"" +
                value_str(cur_manifest.at(key)) +
                "\"); counter drift reported as warnings only");
        }
    }
    for (const char* key : kInformationalIdentity) {
        if (base_manifest.contains(key) && cur_manifest.contains(key) &&
            value_str(base_manifest.at(key)) !=
                value_str(cur_manifest.at(key))) {
            result.warnings.push_back(
                std::string("manifest.") + key + " changed (\"" +
                value_str(base_manifest.at(key)) + "\" -> \"" +
                value_str(cur_manifest.at(key)) +
                "\"); flavors are bit-identical by contract, so counter "
                "drift still fails");
        }
    }
    auto flag = [&](std::string message) {
        (soften ? result.warnings : result.failures)
            .push_back(std::move(message));
    };

    const Json& base_counters = baseline.at("counters");
    const Json& cur_counters = current.at("metrics").at("counters");
    for (const auto& [name, base_value] : base_counters.as_object()) {
        if (!cur_counters.contains(name)) {
            flag("counter " + name +
                 " present in the baseline but missing from this run");
            continue;
        }
        const double base = base_value.as_double();
        const double cur = cur_counters.at(name).as_double();
        const double drift = rel_drift_pct(base, cur);
        if (drift > tolerance_pct) {
            char buf[160];
            std::snprintf(buf, sizeof buf,
                          "counter %s drifted %.2f%% (baseline %.0f, "
                          "current %.0f, tolerance %.2f%%)",
                          name.c_str(), drift, base, cur, tolerance_pct);
            flag(buf);
        }
    }
    for (const auto& [name, value] : cur_counters.as_object())
        if (!base_counters.contains(name))
            result.warnings.push_back(
                "counter " + name +
                " is new since the baseline (re-snapshot to gate it)");

    if (baseline.contains("gauges")) {
        const Json& base_gauges = baseline.at("gauges");
        const Json& cur_gauges = current.at("metrics").at("gauges");
        for (const auto& [name, base_value] : base_gauges.as_object()) {
            if (!cur_gauges.contains(name)) {
                result.warnings.push_back("gauge " + name +
                                          " missing from this run");
                continue;
            }
            const double base = base_value.as_double();
            const double cur = cur_gauges.at(name).as_double();
            const double drift = rel_drift_pct(base, cur);
            if (drift > tolerance_pct) {
                char buf[160];
                std::snprintf(buf, sizeof buf,
                              "gauge %s drifted %.2f%% (baseline %g, "
                              "current %g) — wall-clock noise, not gated",
                              name.c_str(), drift, base, cur);
                result.warnings.push_back(buf);
            }
        }
    }
    return result;
}

double diff_tolerance_from_env(double fallback) {
    const char* env = std::getenv("PRESS_BENCH_DIFF_TOLERANCE_PCT");
    if (env == nullptr || *env == '\0') return fallback;
    char* end = nullptr;
    const double value = std::strtod(env, &end);
    if (end == env || *end != '\0' || !std::isfinite(value) ||
        value < 0.0)
        return fallback;
    return value;
}

}  // namespace press::obs
