// Observability: the flight recorder — a crash-tolerant window on the
// recent past.
//
// Telemetry exports (obs/export.hpp) describe a run that *finished*; a
// post-mortem needs the opposite: what the process was doing just before
// it degraded or died. The flight recorder is a fixed-size, lock-free
// ring of the most recent completed spans (fed by every TraceSpan
// destructor once armed) plus the counter deltas accumulated since
// arming. Dumping it is independent of the main span ring — the ring
// buffer in obs/trace.hpp is drained by exports, while the flight ring
// always holds the freshest N spans regardless of what else consumed
// them.
//
// Writers are wait-free: one fetch_add on the global write index and a
// per-slot seqlock (version bumped odd before the write, even after), so
// the hot path never blocks and a dump taken mid-write simply skips the
// torn slot. Arm/dump/disarm are cold-path and mutex-guarded.
//
// fault::HealthMonitor dumps `flight_<name>.json` when a probe sweep
// flags degradation; benches arm the signal hook so SIGABRT/SIGSEGV also
// leave a dump behind instead of dying silently (best effort — the
// handler allocates, which is fine for a simulator post-mortem but not
// strictly async-signal-safe).
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace press::obs {

inline constexpr std::size_t kDefaultFlightCapacity = 256;

/// Starts recording: allocates a ring of `capacity` slots and snapshots
/// the current counter values as the delta baseline. Re-arming resets
/// the window and the baseline.
void flight_arm(std::size_t capacity = kDefaultFlightCapacity);

/// Stops recording (the last window stays dumpable).
void flight_disarm();

bool flight_armed();

/// Records one completed span; wait-free, called by every TraceSpan
/// destructor. No-op while disarmed.
void flight_note(const SpanRecord& record);

/// The `press.flight/v1` document: the surviving window of spans (oldest
/// first, torn slots skipped) and every counter's value now plus its
/// delta since flight_arm().
Json flight_dump();

/// Writes flight_<name>.json into export_dir() and returns the path, or
/// std::nullopt when nothing was ever armed or the file cannot be
/// written. Works even when obs::enabled() was flipped off afterwards —
/// a post-mortem must not be suppressed by the telemetry gate.
std::optional<std::string> write_flight(const std::string& name);

/// Installs SIGABRT/SIGSEGV/SIGFPE/SIGILL handlers that write
/// flight_<name>.json and re-raise with the default disposition.
/// Best-effort: the handler is not strictly async-signal-safe.
void flight_install_signal_dump(const std::string& name);

/// Validates a parsed document against the `press.flight/v1` schema.
/// Returns an empty string when valid, else the first violation.
std::string validate_flight(const Json& flight);

}  // namespace press::obs
