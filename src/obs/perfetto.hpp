// Observability: rendering a telemetry document as a Chrome Trace Event
// Format JSON that Perfetto (https://ui.perfetto.dev) and
// chrome://tracing open directly.
//
// The exporter is a pure function of the `press.telemetry/v2` document:
// it reads the "spans" array and emits one "X" (complete) event per
// span, grouped so the timeline reads like the system's architecture —
// pid = layer (the span-name prefix before the first '.': core, em,
// control, fault, ...), tid = the recording thread — with "M" metadata
// events naming both axes. Causality that crossed a thread or the
// simulated control wire (spans flagged `adopted`) is drawn as flow
// arrows: an "s"/"f" event pair from the parent span's slice to the
// adopted child's, bound by the child's span_id. Lexically nested spans
// need no arrows — containment on the timeline already shows them.
//
// Every "X" event carries the span's identity (trace_id / span_id /
// parent_span) and its simulated-clock pricing in args, so a slice
// selected in the Perfetto UI shows which causal tree it belongs to and
// what the modeled hardware paid. docs/TRACING.md documents the format;
// tools/validate_trace gates it in CI via validate_trace().
#pragma once

#include <string>

#include "obs/json.hpp"

namespace press::obs {

/// Renders a `press.telemetry/v2` document (its "spans" array) as a
/// Chrome Trace Event Format document: {"traceEvents": [...],
/// "displayTimeUnit": "ms"}.
Json perfetto_export(const Json& telemetry);

/// Validates a parsed Chrome Trace Event document as emitted by
/// perfetto_export(): structural event checks ("X"/"M"/"s"/"f" phases
/// with their required fields) plus causal coherence — every flow "f"
/// has a matching "s" with the same id, and every "X" parent_span that
/// is present among the events belongs to the same trace_id. Returns an
/// empty string when valid, else the first violation.
std::string validate_trace(const Json& trace);

}  // namespace press::obs
