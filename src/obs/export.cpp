#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <limits>

#include "obs/perfetto.hpp"
#include "obs/trace.hpp"

namespace press::obs {

namespace {

Json manifest_json(const RunManifest& m) {
    Json::Object obj;
    obj.emplace("git_describe", m.git_describe);
    obj.emplace("build_type", m.build_type);
    obj.emplace("compiler", m.compiler);
    obj.emplace("cxx_flags", m.cxx_flags);
    obj.emplace("sanitize", m.sanitize);
    obj.emplace("press_threads", m.press_threads);
    obj.emplace("kernel_dispatch", m.kernel_dispatch);
    obj.emplace("seed", m.seed);
    obj.emplace("scenario", m.scenario);
    return Json(std::move(obj));
}

Json metrics_json(const MetricsRegistry::Snapshot& snap) {
    Json::Object counters;
    for (const auto& [name, value] : snap.counters)
        counters.emplace(name, value);
    Json::Object gauges;
    for (const auto& [name, value] : snap.gauges)
        gauges.emplace(name, value);
    Json::Object histograms;
    for (const auto& h : snap.histograms) {
        Json::Object entry;
        Json::Array bounds;
        for (double b : h.bounds) bounds.emplace_back(b);
        Json::Array counts;
        for (std::uint64_t c : h.counts) counts.emplace_back(c);
        entry.emplace("bounds", std::move(bounds));
        entry.emplace("counts", std::move(counts));
        entry.emplace("count", h.count);
        entry.emplace("sum", h.sum);
        histograms.emplace(h.name, std::move(entry));
    }
    Json::Object metrics;
    metrics.emplace("counters", std::move(counters));
    metrics.emplace("gauges", std::move(gauges));
    metrics.emplace("histograms", std::move(histograms));
    return Json(std::move(metrics));
}

Json series_json(const MetricsRegistry::Snapshot& snap) {
    Json::Object series;
    for (const auto& s : snap.series) {
        Json::Object entry;
        Json::Array points;
        for (double v : s.values) points.emplace_back(v);
        entry.emplace("points", std::move(points));
        entry.emplace("length", s.total_length);
        series.emplace(s.name, std::move(entry));
    }
    return Json(std::move(series));
}

Json spans_json(const std::vector<SpanRecord>& spans) {
    Json::Array arr;
    for (const SpanRecord& s : spans) {
        Json::Object entry;
        entry.emplace("name", s.name);
        entry.emplace("thread", s.thread);
        entry.emplace("depth", s.depth);
        entry.emplace("seq", s.seq);
        entry.emplace("trace_id", s.trace_id);
        entry.emplace("span_id", s.span_id);
        entry.emplace("parent_span", s.parent_span);
        entry.emplace("adopted", s.adopted);
        entry.emplace("start_us",
                      static_cast<double>(s.start_ns) / 1000.0);
        entry.emplace("wall_us", static_cast<double>(s.wall_ns) / 1000.0);
        if (s.has_sim) {
            entry.emplace("sim_start_s", s.sim_start_s);
            entry.emplace("sim_elapsed_s", s.sim_elapsed_s);
        }
        arr.emplace_back(std::move(entry));
    }
    return Json(std::move(arr));
}

}  // namespace

Json build_telemetry(const RunManifest& manifest, bool drain_spans) {
    // Read the drop count before draining — flush resets it.
    const std::uint64_t dropped = drain_spans ? spans_dropped() : 0;
    const std::vector<SpanRecord> spans =
        drain_spans ? flush_spans() : std::vector<SpanRecord>{};
    const MetricsRegistry::Snapshot snap =
        MetricsRegistry::global().snapshot();

    Json::Object root;
    root.emplace("schema", manifest.schema);
    root.emplace("manifest", manifest_json(manifest));
    root.emplace("metrics", metrics_json(snap));
    root.emplace("series", series_json(snap));
    root.emplace("spans", spans_json(spans));
    root.emplace("spans_dropped", dropped);
    return Json(std::move(root));
}

std::string render_table(const Json& telemetry) {
    std::string out;
    char line[256];

    const auto& manifest = telemetry.at("manifest").as_object();
    out += "== run manifest ==\n";
    for (const auto& [key, value] : manifest) {
        std::snprintf(line, sizeof line, "  %-14s %s\n", key.c_str(),
                      value.is_string()
                          ? value.as_string().c_str()
                          : std::to_string(static_cast<long long>(
                                               value.as_double()))
                                .c_str());
        out += line;
    }

    const auto& metrics = telemetry.at("metrics").as_object();
    const auto& counters = metrics.at("counters").as_object();
    if (!counters.empty()) out += "== counters ==\n";
    for (const auto& [name, value] : counters) {
        std::snprintf(line, sizeof line, "  %-44s %12.0f\n", name.c_str(),
                      value.as_double());
        out += line;
    }
    const auto& gauges = metrics.at("gauges").as_object();
    if (!gauges.empty()) out += "== gauges ==\n";
    for (const auto& [name, value] : gauges) {
        std::snprintf(line, sizeof line, "  %-44s %12.4g\n", name.c_str(),
                      value.as_double());
        out += line;
    }
    const auto& histograms = metrics.at("histograms").as_object();
    if (!histograms.empty()) out += "== histograms ==\n";
    for (const auto& [name, h] : histograms) {
        const double count = h.at("count").as_double();
        const double sum = h.at("sum").as_double();
        std::snprintf(line, sizeof line,
                      "  %-44s n=%-8.0f mean=%.4g\n", name.c_str(), count,
                      count > 0 ? sum / count : 0.0);
        out += line;
    }
    const auto& series = telemetry.at("series").as_object();
    if (!series.empty()) out += "== series ==\n";
    for (const auto& [name, s] : series) {
        const auto& points = s.at("points").as_array();
        const double last =
            points.empty() ? 0.0 : points.back().as_double();
        std::snprintf(line, sizeof line,
                      "  %-44s len=%-6.0f last=%.4g\n", name.c_str(),
                      s.at("length").as_double(), last);
        out += line;
    }

    const auto& spans = telemetry.at("spans").as_array();
    if (!spans.empty()) out += "== spans (completion order) ==\n";
    for (const auto& s : spans) {
        const auto& obj = s.as_object();
        const int depth =
            static_cast<int>(obj.at("depth").as_double());
        std::string sim;
        if (obj.count("sim_elapsed_s") > 0) {
            char buf[48];
            std::snprintf(buf, sizeof buf, "  sim=%.4gs",
                          obj.at("sim_elapsed_s").as_double());
            sim = buf;
        }
        std::snprintf(line, sizeof line, "  t%.0f %*s%-40s %10.1f us%s\n",
                      obj.at("thread").as_double(), depth * 2, "",
                      obj.at("name").as_string().c_str(),
                      obj.at("wall_us").as_double(), sim.c_str());
        out += line;
    }
    return out;
}

namespace {

std::optional<std::string> write_document(const std::string& path,
                                          const Json& document) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return std::nullopt;
    const std::string doc = document.dump();
    const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    if (written != doc.size()) return std::nullopt;
    return path;
}

}  // namespace

std::optional<std::string> write_telemetry(const std::string& name,
                                           const RunManifest& manifest) {
    if (!enabled()) return std::nullopt;
    return write_document(export_dir() + "/telemetry_" + name + ".json",
                          build_telemetry(manifest));
}

RunExportPaths write_run_exports(const std::string& name,
                                 const RunManifest& manifest) {
    RunExportPaths paths;
    if (!enabled()) return paths;
    const Json telemetry = build_telemetry(manifest);
    paths.telemetry = write_document(
        export_dir() + "/telemetry_" + name + ".json", telemetry);
    paths.trace = write_document(
        export_dir() + "/trace_" + name + ".json",
        perfetto_export(telemetry));
    return paths;
}

namespace {

bool is_uint(const Json& v) {
    return v.is_number() && v.as_double() >= 0.0 &&
           v.as_double() == std::floor(v.as_double());
}

std::string check_number_object(const Json& obj, const char* where) {
    for (const auto& [name, value] : obj.as_object())
        if (!value.is_number())
            return std::string(where) + "." + name + " is not a number";
    return "";
}

}  // namespace

std::string validate_telemetry(const Json& t) {
    if (!t.is_object()) return "document is not an object";
    static const char* kRootKeys[] = {"schema",  "manifest", "metrics",
                                      "series",  "spans",    "spans_dropped"};
    for (const char* key : kRootKeys)
        if (!t.contains(key))
            return std::string("missing root key \"") + key + "\"";
    for (const auto& [key, value] : t.as_object()) {
        const bool known =
            std::any_of(std::begin(kRootKeys), std::end(kRootKeys),
                        [&](const char* k) { return key == k; });
        if (!known)
            return "unknown root key \"" + key + "\" (schema drift)";
    }

    if (!t.at("schema").is_string() ||
        t.at("schema").as_string() != "press.telemetry/v2")
        return "schema is not \"press.telemetry/v2\"";

    const Json& manifest = t.at("manifest");
    if (!manifest.is_object()) return "manifest is not an object";
    static const std::pair<const char*, bool> kManifestKeys[] = {
        // name, is_string (else unsigned number)
        {"git_describe", true}, {"build_type", true},
        {"compiler", true},     {"cxx_flags", true},
        {"sanitize", true},     {"press_threads", false},
        {"kernel_dispatch", true},
        {"seed", false},        {"scenario", true}};
    for (const auto& [key, is_string] : kManifestKeys) {
        if (!manifest.contains(key))
            return std::string("manifest missing \"") + key + "\"";
        const Json& v = manifest.at(key);
        if (is_string ? !v.is_string() : !is_uint(v))
            return std::string("manifest.") + key + " has the wrong type";
    }
    if (manifest.as_object().size() != std::size(kManifestKeys))
        return "manifest carries unknown keys (schema drift)";
    if (manifest.at("press_threads").as_double() < 1)
        return "manifest.press_threads must be >= 1";

    const Json& metrics = t.at("metrics");
    if (!metrics.is_object()) return "metrics is not an object";
    for (const char* key : {"counters", "gauges", "histograms"})
        if (!metrics.contains(key) || !metrics.at(key).is_object())
            return std::string("metrics.") + key + " missing or not an object";
    for (const auto& [name, value] :
         metrics.at("counters").as_object())
        if (!is_uint(value))
            return "metrics.counters." + name +
                   " is not a non-negative integer";
    if (std::string err =
            check_number_object(metrics.at("gauges"), "metrics.gauges");
        !err.empty())
        return err;
    for (const auto& [name, h] : metrics.at("histograms").as_object()) {
        const std::string where = "metrics.histograms." + name;
        if (!h.is_object()) return where + " is not an object";
        for (const char* key : {"bounds", "counts", "count", "sum"})
            if (!h.contains(key)) return where + " missing \"" + key + "\"";
        if (!h.at("bounds").is_array() || !h.at("counts").is_array())
            return where + ".bounds/.counts must be arrays";
        const auto& bounds = h.at("bounds").as_array();
        const auto& counts = h.at("counts").as_array();
        if (counts.size() != bounds.size() + 1)
            return where + ": counts must have bounds+1 entries";
        double prev = -std::numeric_limits<double>::infinity();
        for (const Json& b : bounds) {
            if (!b.is_number() || b.as_double() < prev)
                return where + ".bounds must be ascending numbers";
            prev = b.as_double();
        }
        double total = 0.0;
        for (const Json& c : counts) {
            if (!is_uint(c)) return where + ".counts must be integers";
            total += c.as_double();
        }
        if (!is_uint(h.at("count")) ||
            h.at("count").as_double() != total)
            return where + ".count must equal the bucket total";
        if (!h.at("sum").is_number()) return where + ".sum must be a number";
    }

    const Json& series = t.at("series");
    if (!series.is_object()) return "series is not an object";
    for (const auto& [name, s] : series.as_object()) {
        if (!s.is_object() || !s.contains("points") ||
            !s.contains("length") || !s.at("points").is_array() ||
            !is_uint(s.at("length")))
            return "series." + name +
                   " must be {points: [...], length: n}";
        const auto& points = s.at("points").as_array();
        if (s.at("length").as_double() <
            static_cast<double>(points.size()))
            return "series." + name + ".length below the point count";
        for (const Json& p : points)
            if (!p.is_number())
                return "series." + name + ".points must be numbers";
    }

    const Json& spans = t.at("spans");
    if (!spans.is_array()) return "spans is not an array";
    for (const Json& s : spans.as_array()) {
        if (!s.is_object()) return "span entry is not an object";
        if (!s.contains("name") || !s.at("name").is_string())
            return "span missing string \"name\"";
        for (const char* key : {"thread", "depth", "seq", "trace_id",
                                "span_id", "parent_span"})
            if (!s.contains(key) || !is_uint(s.at(key)))
                return std::string("span \"") + s.at("name").as_string() +
                       "\" missing integer \"" + key + "\"";
        if (s.at("span_id").as_double() < 1 ||
            s.at("trace_id").as_double() < 1)
            return std::string("span \"") + s.at("name").as_string() +
                   "\" span_id/trace_id must be >= 1";
        if (!s.contains("adopted") || !s.at("adopted").is_bool())
            return std::string("span \"") + s.at("name").as_string() +
                   "\" missing bool \"adopted\"";
        for (const char* key : {"start_us", "wall_us"})
            if (!s.contains(key) || !s.at(key).is_number())
                return std::string("span \"") + s.at("name").as_string() +
                       "\" missing number \"" + key + "\"";
        const bool has_start = s.contains("sim_start_s");
        const bool has_elapsed = s.contains("sim_elapsed_s");
        if (has_start != has_elapsed)
            return "span sim_start_s/sim_elapsed_s must appear together";
        if (has_start && (!s.at("sim_start_s").is_number() ||
                          !s.at("sim_elapsed_s").is_number()))
            return "span sim fields must be numbers";
    }

    if (!is_uint(t.at("spans_dropped")))
        return "spans_dropped is not a non-negative integer";
    return "";
}

}  // namespace press::obs
