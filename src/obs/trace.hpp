// Observability: RAII scoped timers that form a per-thread span tree.
//
// A TraceSpan prices the region between its construction and destruction
// on the wall clock (std::chrono::steady_clock, relative to a process-wide
// epoch) and — when given a SimTimeSource — on the simulated wall clock
// the control plane runs on (control::SimClock implements the interface).
// Both timescales matter here: wall time says what the *simulator* paid,
// simulated time says what the *modeled hardware* paid, and comparing the
// two is exactly what a perf PR needs.
//
// Nesting is tracked per thread with a thread-local depth counter, so the
// flushed records reconstruct each thread's span tree: a record at depth d
// is a child of the most recent earlier record of the same thread whose
// depth is < d (spans complete in child-before-parent order, and `seq`
// numbers completions per thread). Completed spans land in a bounded
// global ring buffer — the hot path never allocates, and a run that emits
// more spans than the capacity keeps the newest ones and counts the
// overwritten remainder in spans_dropped().
//
// When obs::enabled() is false, constructing a TraceSpan costs one relaxed
// bool load and records nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace press::obs {

/// Read-only view of a simulated clock. control::SimClock implements
/// this; obs stays below the control layer by depending only on the
/// interface.
class SimTimeSource {
public:
    virtual ~SimTimeSource() = default;
    virtual double sim_now_s() const = 0;
};

/// One completed span.
struct SpanRecord {
    std::string name;
    std::uint32_t thread = 0;  ///< dense per-process thread index
    std::uint32_t depth = 0;   ///< nesting depth on its thread (0 = root)
    std::uint64_t seq = 0;     ///< completion order on its thread
    std::uint64_t start_ns = 0;  ///< steady-clock ns since process epoch
    std::uint64_t wall_ns = 0;   ///< wall-clock duration
    bool has_sim = false;        ///< sim fields valid
    double sim_start_s = 0.0;    ///< SimTimeSource reading at entry
    double sim_elapsed_s = 0.0;  ///< simulated seconds spanned
};

/// RAII scoped timer. `name` must outlive the span (string literals).
class TraceSpan {
public:
    explicit TraceSpan(const char* name,
                       const SimTimeSource* sim = nullptr);
    ~TraceSpan();

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

private:
    const char* name_;
    const SimTimeSource* sim_;
    std::uint64_t start_ns_ = 0;
    double sim_start_s_ = 0.0;
    bool active_ = false;
};

/// Drains every completed span, oldest first. Thread-safe.
std::vector<SpanRecord> flush_spans();

/// Spans overwritten since the last flush because the ring was full.
std::uint64_t spans_dropped();

/// Resizes the ring (drops current content). Default capacity 4096.
void set_span_capacity(std::size_t capacity);

}  // namespace press::obs
