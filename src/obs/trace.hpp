// Observability: RAII scoped timers that form a causal span tree.
//
// A TraceSpan prices the region between its construction and destruction
// on the wall clock (std::chrono::steady_clock, relative to a process-wide
// epoch) and — when given a SimTimeSource — on the simulated wall clock
// the control plane runs on (control::SimClock implements the interface).
// Both timescales matter here: wall time says what the *simulator* paid,
// simulated time says what the *modeled hardware* paid, and comparing the
// two is exactly what a perf PR needs.
//
// Every span carries an identity: a process-unique `span_id`, the
// `span_id` of its parent, and a `trace_id` naming the causal tree it
// belongs to (a root span's trace_id is its own span_id). Within one
// thread, parentage follows lexical nesting via a thread-local frame
// stack. Across threads and across the simulated control wire, causality
// is carried explicitly as a TraceContext {trace_id, parent_span}:
// capture current_context() on the producing side, ship it (message
// header, task struct), and adopt it on the consuming side with a
// ContextGuard — spans opened under the guard parent into the shipped
// context and are flagged `adopted`, which is what the Perfetto exporter
// turns into flow arrows (docs/TRACING.md).
//
// Completed spans land in a bounded global ring buffer — the hot path
// never allocates beyond the record itself, and a run that emits more
// spans than the capacity keeps the newest ones and counts the
// overwritten remainder in spans_dropped().
//
// When obs::enabled() is false, constructing a TraceSpan or ContextGuard
// costs one relaxed bool load and records nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace press::obs {

/// Read-only view of a simulated clock. control::SimClock implements
/// this; obs stays below the control layer by depending only on the
/// interface.
class SimTimeSource {
public:
    virtual ~SimTimeSource() = default;
    virtual double sim_now_s() const = 0;
};

/// Causal coordinates shipped across threads or the control wire.
/// trace_id == 0 means "no context" (spans start a fresh trace).
struct TraceContext {
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span = 0;

    bool valid() const { return trace_id != 0; }
    bool operator==(const TraceContext&) const = default;
};

/// One completed span.
struct SpanRecord {
    std::string name;
    std::uint32_t thread = 0;  ///< dense per-process thread index
    std::uint32_t depth = 0;   ///< nesting depth on its thread (0 = root)
    std::uint64_t seq = 0;     ///< completion order on its thread
    std::uint64_t trace_id = 0;   ///< causal tree this span belongs to
    std::uint64_t span_id = 0;    ///< process-unique id of this span
    std::uint64_t parent_span = 0;  ///< parent span_id; 0 = trace root
    /// True when the parent came from an adopted TraceContext (cross-
    /// thread or cross-wire) rather than lexical nesting — the exporter
    /// draws these edges as flow arrows.
    bool adopted = false;
    std::uint64_t start_ns = 0;  ///< steady-clock ns since process epoch
    std::uint64_t wall_ns = 0;   ///< wall-clock duration
    bool has_sim = false;        ///< sim fields valid
    double sim_start_s = 0.0;    ///< SimTimeSource reading at entry
    double sim_elapsed_s = 0.0;  ///< simulated seconds spanned
};

/// RAII scoped timer. `name` must outlive the span (string literals).
class TraceSpan {
public:
    explicit TraceSpan(const char* name,
                       const SimTimeSource* sim = nullptr);
    ~TraceSpan();

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

    /// This span's identity while it is open; zero when telemetry is off.
    TraceContext context() const;

private:
    const char* name_;
    const SimTimeSource* sim_;
    std::uint64_t trace_id_ = 0;
    std::uint64_t span_id_ = 0;
    std::uint64_t parent_span_ = 0;
    bool adopted_ = false;
    std::uint64_t start_ns_ = 0;
    double sim_start_s_ = 0.0;
    bool active_ = false;
};

/// The innermost causal frame of the calling thread: the open span, or
/// the adopted context of the innermost active ContextGuard, whichever
/// is newer. Invalid (trace_id 0) when neither exists or telemetry is
/// off. This is what message encoders stamp into wire headers.
TraceContext current_context();

/// Adopts a shipped TraceContext for the guard's lifetime: spans opened
/// under it parent into ctx.parent_span within ctx.trace_id and are
/// flagged `adopted`. A no-op for an invalid ctx or when telemetry is
/// off. Guards and spans must nest strictly (RAII scopes).
class ContextGuard {
public:
    explicit ContextGuard(const TraceContext& ctx);
    ~ContextGuard();

    ContextGuard(const ContextGuard&) = delete;
    ContextGuard& operator=(const ContextGuard&) = delete;

private:
    bool active_ = false;
};

/// Drains every completed span, oldest first. Thread-safe.
std::vector<SpanRecord> flush_spans();

/// Spans overwritten since the last flush because the ring was full.
std::uint64_t spans_dropped();

/// Resizes the ring (drops current content). Default capacity 4096.
void set_span_capacity(std::size_t capacity);

}  // namespace press::obs
