// Observability: the run manifest stamped into every telemetry export.
//
// A metric without provenance is a trap: a cache hit-rate from a dirty
// tree at 2 threads is not comparable to one from CI at 8. RunManifest
// records what produced a telemetry document — the build (git describe,
// build type, compiler, flags, sanitizer, all captured at CMake configure
// time) and the run (resolved worker thread count, top-level seed,
// scenario id). Exports embed it under the "manifest" key of
// `press.telemetry/v2` (docs/TELEMETRY.md).
//
// The manifest is deliberately free of wall-clock timestamps, hostnames
// and other per-invocation noise: two runs of the same binary with the
// same seed, scenario and PRESS_THREADS produce byte-identical manifests,
// so diffing two exports shows only what actually changed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace press::obs {

/// PRESS_THREADS from the environment, clamped to [1, 64]; 0 when unset
/// or unparsable. The single source of the env policy —
/// control::BatchEvaluator::resolve_threads delegates here.
std::size_t env_threads();

/// PRESS_KERNEL from the environment, normalized to "scalar" or "native"
/// ("native" when unset or unrecognized; case-insensitive). The single
/// source of the env policy — util::kernels::active() delegates here so
/// the manifest and the kernel dispatcher can never disagree.
std::string env_kernel_dispatch();

struct RunManifest {
    std::string schema = "press.telemetry/v2";
    std::string git_describe;   ///< `git describe --always --dirty` at configure
    std::string build_type;     ///< CMAKE_BUILD_TYPE
    std::string compiler;       ///< compiler id + version
    std::string cxx_flags;      ///< global CXX flags
    std::string sanitize;       ///< PRESS_SANITIZE flavor (OFF/asan/tsan)
    std::size_t press_threads = 1;  ///< resolved worker thread count
    /// Resolved kernel flavor ("scalar" or "native", PRESS_KERNEL env).
    /// Informational in bench diffs: the two flavors are bit-identical by
    /// contract, so a mismatch never softens counter failures.
    std::string kernel_dispatch = "native";
    std::uint64_t seed = 0;         ///< the run's top-level seed
    std::string scenario;           ///< scenario / bench id

    bool operator==(const RunManifest&) const = default;

    /// Captures the build fields and resolves press_threads with the same
    /// policy as the BatchEvaluator (PRESS_THREADS env clamped to [1, 64],
    /// else hardware concurrency).
    static RunManifest capture(std::string scenario, std::uint64_t seed);
};

}  // namespace press::obs
