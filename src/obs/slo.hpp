// Observability: rolling-window SLO arithmetic for a request-serving
// loop.
//
// The service's raw counters (served, expired) are monotonic; an
// operator deciding whether the system is *currently* violating its
// objective needs a windowed view: of the requests that terminated in
// the last W seconds, what fraction missed their deadline, and how fast
// is that burning the error budget? SloTracker keeps that window as a
// fixed set of time buckets rotated in place (no allocation after
// construction, no per-request division), the standard multi-bucket
// approximation of a sliding window.
//
// Two derived figures, both exported by the service as `service.slo.*`
// gauges and streamed in telemetry frames:
//
//   burn_rate    windowed deadline-miss fraction divided by the miss
//                budget: 1.0 means the budget is being consumed exactly
//                as provisioned, >1 means the error budget is burning
//                down faster than sustainable (the alerting convention
//                popularized by SRE multi-window burn alerts).
//   compliance   fraction of windowed requests that met the latency
//                target (deadline misses count against it).
//
// Time is supplied by the caller (`now_s`), so the tracker runs on the
// service SimClock in-process and on mapped wall time under pressd —
// the same convention obs::Timeseries uses. Single-writer, like the
// service that owns it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace press::obs {

struct SloOptions {
    double window_s = 5.0;      ///< rolling window span
    std::size_t buckets = 16;   ///< rotation granularity
    /// Deadline-miss fraction the budget provisions for; the burn rate
    /// is the observed miss fraction over this.
    double miss_budget = 0.01;
    /// Latency target for compliance (microseconds).
    double latency_target_us = 100000.0;
};

class SloTracker {
public:
    explicit SloTracker(SloOptions options = {});

    const SloOptions& options() const { return options_; }

    /// One request served within its deadline; `latency_us` is judged
    /// against the latency target for compliance.
    void record_ok(double now_s, double latency_us);
    /// One request whose deadline passed (rejected kExpired).
    void record_miss(double now_s);

    /// Requests/misses/latency-target violations currently in-window.
    std::uint64_t window_total(double now_s);
    std::uint64_t window_misses(double now_s);

    /// Miss fraction over the provisioned budget; 0 when the window is
    /// empty.
    double burn_rate(double now_s);
    /// Fraction of in-window requests that met both deadline and
    /// latency target; 1 when the window is empty.
    double compliance(double now_s);

private:
    struct Bucket {
        std::uint64_t total = 0;
        std::uint64_t misses = 0;   ///< deadline misses
        std::uint64_t slow = 0;     ///< served but over the latency target
    };

    /// Rotates stale buckets so the live set covers (now_s - window_s,
    /// now_s].
    void rotate(double now_s);
    Bucket& current(double now_s);

    SloOptions options_;
    double bucket_span_s_ = 0.0;
    std::vector<Bucket> buckets_;
    /// Absolute index of the newest bucket (monotonic; index %
    /// buckets.size() addresses storage).
    std::int64_t newest_index_ = 0;
    bool started_ = false;
};

}  // namespace press::obs
