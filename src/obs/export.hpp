// Observability: serializing a run to the `press.telemetry/v2` document.
//
// One schema, two renderings: build_telemetry() assembles the manifest, a
// coherent snapshot of the metrics registry and the completed trace spans
// into a Json document (the machine-readable export CI diffs between
// runs), and render_table() formats the same document as a human-readable
// table for terminals. write_telemetry() is the one-call emission path
// benches use: it is a no-op when telemetry is disabled, and lands
// `telemetry_<name>.json` in obs::export_dir().
//
// validate_telemetry() checks a parsed document against the schema that
// docs/TELEMETRY.md documents, field by field; the CI schema-gate tool
// (tools/validate_telemetry.cpp) and the exporter round-trip test share
// it, so the documented schema, the emitted schema and the enforced
// schema cannot drift apart silently.
#pragma once

#include <optional>
#include <string>

#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

namespace press::obs {

/// Assembles the full `press.telemetry/v2` document from `manifest`, the
/// global registry and — when `drain_spans` is true (the default) — the
/// span ring, which is emptied in the process.
Json build_telemetry(const RunManifest& manifest, bool drain_spans = true);

/// Human-readable rendering of a telemetry document: manifest header,
/// counters/gauges sorted by name, histogram summaries, series lengths
/// and the spans grouped per thread with nesting indentation.
std::string render_table(const Json& telemetry);

/// Emits `telemetry_<name>.json` into export_dir() and returns the path,
/// or std::nullopt when telemetry is disabled or the file cannot be
/// written. Drains the span ring.
std::optional<std::string> write_telemetry(const std::string& name,
                                           const RunManifest& manifest);

/// Paths produced by write_run_exports(); each is std::nullopt when its
/// file was not written.
struct RunExportPaths {
    std::optional<std::string> telemetry;
    std::optional<std::string> trace;
};

/// One-call emission of both run artifacts — `telemetry_<name>.json` and
/// the Perfetto-compatible `trace_<name>.json` — from a single span-ring
/// drain, so the two files describe the same spans. A no-op (both paths
/// nullopt) when telemetry is disabled.
RunExportPaths write_run_exports(const std::string& name,
                                 const RunManifest& manifest);

/// Validates a parsed document against the `press.telemetry/v2` schema.
/// Returns an empty string when valid, else a description of the first
/// violation found.
std::string validate_telemetry(const Json& telemetry);

}  // namespace press::obs
