// Configuration-space search strategies.
//
// "With N PRESS elements, each having M possible reflection coefficients,
// enumerating the M^N possibilities ... becomes impractical" (Section 4.2).
// Every strategy shares one interface: propose configurations, learn their
// measured score through an evaluation callback, and return the best found
// within an evaluation budget. The controller translates coherence-time
// budgets into evaluation budgets.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "press/config.hpp"
#include "util/rng.hpp"

namespace press::control {

/// Measures one configuration; larger scores are better.
using EvalFn = std::function<double(const surface::Config&)>;

/// Measures a batch of independent configurations; results[i] scores
/// batch[i]. Backed by a BatchEvaluator thread pool when the evaluation is
/// a pure function of the configuration (the factored channel cache), or
/// by a trivial serial loop otherwise.
using BatchEvalFn = std::function<std::vector<double>(
    const std::vector<surface::Config>&)>;

/// Measures every state in `states` for one coordinate: results[i] scores
/// base-with-element=states[i], the rest of `base` held fixed. The
/// coordinate sweep's natural batch — a callee owning the factored cache
/// can serve it through the incremental delta path (base response built
/// once per coordinate, one row-add per candidate) instead of a full
/// gather per candidate. Candidates must consume the same rng streams, in
/// the same order, as the equivalent BatchEvalFn batch would.
using CoordinateEvalFn = std::function<std::vector<double>(
    const surface::Config& base, std::size_t element,
    const std::vector<int>& states)>;

/// Optional early-termination predicate checked before every evaluation.
/// Lets a controller end a search when simulated wall-clock (not just the
/// evaluation count) runs out — e.g. when control-channel retries have
/// eaten the coherence-time budget.
using StopFn = std::function<bool()>;

/// Outcome of a search.
struct SearchResult {
    surface::Config best_config;
    /// Score of best_config as measured when it was first evaluated. With a
    /// noisy EvalFn this is the maximum over noisy samples, so it is biased
    /// high — and memoizing strategies (GreedyCoordinateDescent) never
    /// re-measure a configuration, so a single positive outlier can be
    /// locked in. Use best_score_remeasured for an unbiased estimate.
    double best_score = 0.0;
    /// Unbiased estimate of best_config's quality: the mean of
    /// `remeasure_evals` fresh measurements taken after the search ended
    /// (the search budget is spent on exploration; the confirmation
    /// measurements are priced separately). Filled by callers that own
    /// the evaluation pipeline — Controller::optimize and
    /// System::optimize_fast — not by the strategies; equals best_score
    /// when remeasure_evals is 0.
    double best_score_remeasured = 0.0;
    std::size_t remeasure_evals = 0;
    std::size_t evaluations = 0;
    /// Wall-clock seconds the request waited before its search started.
    /// Filled by owners of a request queue (control::Service); zero for
    /// direct calls. Kept beside compute_s so service p99 latency is
    /// attributable: request latency = queue_wait_s + compute_s.
    double queue_wait_s = 0.0;
    /// Wall-clock seconds the search itself consumed. Filled by the
    /// entry points that own timing (Controller::optimize,
    /// System::optimize_fast), not by the strategies.
    double compute_s = 0.0;
    /// best_score after each evaluation (length == evaluations); lets the
    /// ablation benches plot anytime curves.
    std::vector<double> trajectory;
};

/// Strategy interface.
class Searcher {
public:
    virtual ~Searcher() = default;

    /// Runs at most `max_evals` evaluations of `eval` over `space`,
    /// stopping early as soon as `stop` (when provided) returns true.
    virtual SearchResult search(const surface::ConfigSpace& space,
                                const EvalFn& eval, std::size_t max_evals,
                                util::Rng& rng,
                                const StopFn& stop = nullptr) const = 0;

    /// Batched search: the strategy proposes groups of independent
    /// candidates — up to `batch_hint` at a time, never more than the
    /// remaining budget — so the caller can evaluate them concurrently.
    /// Scores are folded into the result in proposal order, keeping the
    /// outcome independent of evaluation concurrency. The base adapter
    /// degenerates to one-candidate batches (serial semantics);
    /// strategies with natural parallelism (exhaustive chunks, the
    /// all-states sweep of one coordinate) override it.
    virtual SearchResult search_batched(const surface::ConfigSpace& space,
                                        const BatchEvalFn& eval,
                                        std::size_t max_evals,
                                        util::Rng& rng,
                                        const StopFn& stop = nullptr,
                                        std::size_t batch_hint = 1) const;

    /// Batched search with a coordinate-sweep fast path: strategies whose
    /// proposals are all-states sweeps of one element route those through
    /// `coordinate` (when non-empty) and everything else through `eval`.
    /// The base adapter ignores `coordinate`; only GreedyCoordinateDescent
    /// currently exploits it. The hook never changes which candidates run
    /// or which rng streams they consume — only how a candidate's
    /// response is assembled (base-plus-swept-row instead of a full
    /// gather, a different but fixed summation association).
    virtual SearchResult search_batched(const surface::ConfigSpace& space,
                                        const BatchEvalFn& eval,
                                        const CoordinateEvalFn& coordinate,
                                        std::size_t max_evals,
                                        util::Rng& rng,
                                        const StopFn& stop = nullptr,
                                        std::size_t batch_hint = 1) const;

    virtual std::string name() const = 0;
};

/// Exhaustive enumeration in index order (optimal when affordable; the
/// paper's prototype swept all 64 configurations this way).
class ExhaustiveSearcher : public Searcher {
public:
    SearchResult search(const surface::ConfigSpace& space, const EvalFn& eval,
                        std::size_t max_evals, util::Rng& rng,
                        const StopFn& stop = nullptr) const override;
    /// Proposes index-order chunks of `batch_hint` configurations.
    SearchResult search_batched(const surface::ConfigSpace& space,
                                const BatchEvalFn& eval,
                                std::size_t max_evals, util::Rng& rng,
                                const StopFn& stop = nullptr,
                                std::size_t batch_hint = 1) const override;
    std::string name() const override { return "exhaustive"; }
};

/// Uniform random sampling without early termination.
class RandomSearcher : public Searcher {
public:
    SearchResult search(const surface::ConfigSpace& space, const EvalFn& eval,
                        std::size_t max_evals, util::Rng& rng,
                        const StopFn& stop = nullptr) const override;
    std::string name() const override { return "random"; }
};

/// Greedy coordinate descent: sweep elements round-robin, trying every
/// state of one element while others stay fixed; restart from a random
/// configuration when a pass makes no progress. Already-scored
/// configurations are memoized, so revisits (common near local optima and
/// after restarts) consume no evaluation budget; the search ends early if
/// an entire restart pass touches only memoized configurations.
class GreedyCoordinateDescent : public Searcher {
public:
    SearchResult search(const surface::ConfigSpace& space, const EvalFn& eval,
                        std::size_t max_evals, util::Rng& rng,
                        const StopFn& stop = nullptr) const override;
    /// Proposes all unseen alternative states of one element as a batch
    /// (the coordinate sweep's natural parallel unit); `batch_hint` is
    /// ignored. Evaluation order matches the serial search exactly.
    SearchResult search_batched(const surface::ConfigSpace& space,
                                const BatchEvalFn& eval,
                                std::size_t max_evals, util::Rng& rng,
                                const StopFn& stop = nullptr,
                                std::size_t batch_hint = 1) const override;
    /// Routes coordinate sweeps through `coordinate` when provided
    /// (restart seeds still go through `eval`); candidate order — and
    /// therefore every rng stream — matches the plain batched search
    /// exactly.
    SearchResult search_batched(const surface::ConfigSpace& space,
                                const BatchEvalFn& eval,
                                const CoordinateEvalFn& coordinate,
                                std::size_t max_evals, util::Rng& rng,
                                const StopFn& stop = nullptr,
                                std::size_t batch_hint = 1) const override;
    std::string name() const override { return "greedy-coordinate"; }
};

/// Simulated annealing over single-element mutations with a geometric
/// cooling schedule.
class SimulatedAnnealingSearcher : public Searcher {
public:
    /// `initial_temp` is in score units; `cooling` in (0, 1).
    explicit SimulatedAnnealingSearcher(double initial_temp = 6.0,
                                        double cooling = 0.97);
    SearchResult search(const surface::ConfigSpace& space, const EvalFn& eval,
                        std::size_t max_evals, util::Rng& rng,
                        const StopFn& stop = nullptr) const override;
    std::string name() const override { return "annealing"; }

private:
    double initial_temp_;
    double cooling_;
};

/// A compact generational genetic algorithm: tournament selection, uniform
/// crossover, per-element mutation.
class GeneticSearcher : public Searcher {
public:
    explicit GeneticSearcher(std::size_t population = 16,
                             double mutation_rate = 0.15);
    SearchResult search(const surface::ConfigSpace& space, const EvalFn& eval,
                        std::size_t max_evals, util::Rng& rng,
                        const StopFn& stop = nullptr) const override;
    std::string name() const override { return "genetic"; }

private:
    std::size_t population_;
    double mutation_rate_;
};

/// RFocus-style majority voting for massive element counts (Arun &
/// Balakrishnan, "RFocus: Beamforming Using Thousands of Passive
/// Antennas", arXiv:1905.05130). Per round the searcher draws
/// `probes_per_round` random partitions of the current consensus — every
/// element re-randomized with probability flip_prob, annealed by
/// flip_decay down to min_flip_prob — and measures them as ONE batch.
/// Every element then votes: a state's weight is the mean measured score
/// of the probes that held the element in that state, the per-element
/// argmax forms the consensus candidate, and the candidate is measured
/// once and adopted if it improves. Budget per round is probes_per_round
/// + 1 regardless of element count, which is what makes 1,000–4,000
/// two-state elements tractable where per-coordinate sweeps cost O(N)
/// per pass. Never calls ConfigSpace::size(), so it is safe on spaces
/// whose cardinality overflows. Deterministic given the rng; batch_hint
/// is ignored (the probe count fixes the batch), so the outcome is
/// bit-identical for any evaluator thread count.
class MajorityVoteSearcher : public Searcher {
public:
    explicit MajorityVoteSearcher(std::size_t probes_per_round = 64,
                                  double flip_prob = 0.5,
                                  double flip_decay = 0.92,
                                  double min_flip_prob = 0.015625);
    SearchResult search(const surface::ConfigSpace& space, const EvalFn& eval,
                        std::size_t max_evals, util::Rng& rng,
                        const StopFn& stop = nullptr) const override;
    SearchResult search_batched(const surface::ConfigSpace& space,
                                const BatchEvalFn& eval,
                                std::size_t max_evals, util::Rng& rng,
                                const StopFn& stop = nullptr,
                                std::size_t batch_hint = 1) const override;
    SearchResult search_batched(const surface::ConfigSpace& space,
                                const BatchEvalFn& eval,
                                const CoordinateEvalFn& coordinate,
                                std::size_t max_evals, util::Rng& rng,
                                const StopFn& stop = nullptr,
                                std::size_t batch_hint = 1) const override;
    std::string name() const override { return "majority-vote"; }

private:
    std::size_t probes_per_round_;
    double flip_prob_;
    double flip_decay_;
    double min_flip_prob_;
};

/// Randomized block descent: each round shuffles the elements into
/// `groups` random contiguous blocks, proposes one candidate per block
/// (every element of the block re-randomized to a different state), and
/// adopts the best improving candidate. Rounds without improvement double
/// the group count (finer perturbations) up to min(max_groups, N); the
/// search ends when the finest granularity goes stale. Large early blocks
/// move measured deltas well above the noise floor — the same reason
/// RFocus perturbs element groups rather than single elements — while the
/// late fine blocks polish. Never calls ConfigSpace::size(); batch_hint
/// is ignored (the group count fixes the batch), so results are
/// bit-identical for any thread count.
class RandomizedPartitionSearcher : public Searcher {
public:
    explicit RandomizedPartitionSearcher(std::size_t initial_groups = 8,
                                         std::size_t max_groups = 256);
    SearchResult search(const surface::ConfigSpace& space, const EvalFn& eval,
                        std::size_t max_evals, util::Rng& rng,
                        const StopFn& stop = nullptr) const override;
    SearchResult search_batched(const surface::ConfigSpace& space,
                                const BatchEvalFn& eval,
                                std::size_t max_evals, util::Rng& rng,
                                const StopFn& stop = nullptr,
                                std::size_t batch_hint = 1) const override;
    SearchResult search_batched(const surface::ConfigSpace& space,
                                const BatchEvalFn& eval,
                                const CoordinateEvalFn& coordinate,
                                std::size_t max_evals, util::Rng& rng,
                                const StopFn& stop = nullptr,
                                std::size_t batch_hint = 1) const override;
    std::string name() const override { return "random-partition"; }

private:
    std::size_t initial_groups_;
    std::size_t max_groups_;
};

/// Every strategy, for comparison sweeps. The first five entries keep
/// their historical order (tests and benches index into them); newer
/// strategies append.
std::vector<std::unique_ptr<Searcher>> all_searchers();

/// Folds a finished search into the telemetry registry (no-op when
/// observability is disabled): appends the anytime best-score trajectory
/// to the series `control.search.<searcher_name>.best_score`, bumps
/// `control.search.<searcher_name>.runs`, and adds the evaluation count to
/// `control.search.<searcher_name>.evaluations`. Callers that already hold
/// a SearchResult (Controller, System::optimize_fast) invoke this once per
/// search, so the convergence curves the ablation benches plot are also
/// visible in a plain telemetry export.
void record_search_telemetry(const std::string& searcher_name,
                             const SearchResult& result);

}  // namespace press::control
