// Per-worker evaluation scratch: the zero-allocation contract's memory.
//
// Every BatchEvaluator worker owns one EvalScratch for its whole
// lifetime. Score callbacks write candidate responses, sounding draws and
// derived SNR spans into it instead of allocating; all buffers grow to
// their steady-state size during the first few candidates (tracked in
// grow_events / bytes_reserved) and are only ever resized within
// capacity afterwards, so a steady-state sweep performs zero heap
// allocations per candidate. perf_snapshot gates on exactly that: the
// arena stats plus a global operator-new counter must both stay flat
// across the timed sweep.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "control/objective.hpp"
#include "press/config.hpp"
#include "util/kernels.hpp"

namespace press::control {

struct EvalScratch {
    /// Candidate response accumulator (split-complex).
    util::kernels::SplitVec h;
    /// Raw LTF sounding draws, [repeats x num_sc] row-major.
    std::vector<double> raw_re;
    std::vector<double> raw_im;
    /// Combined estimate and per-subcarrier noise variance / SNR.
    std::vector<double> mean_re;
    std::vector<double> mean_im;
    std::vector<double> noise_var;
    std::vector<double> snr_db;
    /// Per-group wide response accumulators for multi-link scoring: one
    /// stacked SplitVec per transmitter group of the shared basis
    /// (core::MultiLinkCache). Sized once per worker, then reused.
    std::vector<util::kernels::SplitVec> group_h;
    /// Per-term utilities of a composite multi-link objective.
    std::vector<double> term_utility;
    /// Reused by the general (non-fused) objective path.
    Observation observation;
    /// Fault-distortion output (the distorted candidate configuration).
    surface::Config config;

    /// Arena accounting: how many times any buffer had to grow capacity,
    /// and the bytes those growths reserved. Flat counters in steady
    /// state == the zero-allocation contract holds.
    std::uint64_t grow_events = 0;
    std::size_t bytes_reserved = 0;

    /// resize() that tracks capacity growth. Shrinking or resizing within
    /// capacity never touches the heap.
    template <typename T>
    void resize_tracked(std::vector<T>& v, std::size_t n) {
        if (v.capacity() < n) {
            ++grow_events;
            bytes_reserved += (n - v.capacity()) * sizeof(T);
            v.reserve(n);
        }
        v.resize(n);
    }

    void resize_tracked(util::kernels::SplitVec& v, std::size_t n) {
        resize_tracked(v.re, n);
        resize_tracked(v.im, n);
    }
};

}  // namespace press::control
