#include "control/plane.hpp"

#include "util/contracts.hpp"

namespace press::control {

ControlPlaneModel ControlPlaneModel::prototype() {
    ControlPlaneModel m;
    m.bitrate_bps = 115200.0;  // serial link to the switching MCU
    m.latency_s = 18e-3;       // host round-trip; 4 messages/trial over 64
                               // trials reproduces the paper's ~5 s sweep
    m.element_switch_s = 10e-6;
    m.measurement_s = 1.5e-3;
    return m;
}

ControlPlaneModel ControlPlaneModel::fast() {
    ControlPlaneModel m;
    m.bitrate_bps = 2e6;
    m.latency_s = 100e-6;
    m.element_switch_s = 2e-6;
    m.measurement_s = 500e-6;
    return m;
}

double ControlPlaneModel::transfer_time_s(std::size_t message_bytes) const {
    PRESS_EXPECTS(bitrate_bps > 0.0, "control bitrate must be positive");
    return latency_s +
           static_cast<double>(message_bytes) * 8.0 / bitrate_bps;
}

double ControlPlaneModel::apply_cost_s(const SetConfig& set_config) const {
    // Configuration push and acknowledgment.
    double t = transfer_time_s(encoded_size(Message{set_config}));
    SetConfigAck ack;
    t += transfer_time_s(encoded_size(Message{ack}));
    t += element_switch_s;
    return t;
}

double ControlPlaneModel::measure_cost_s(std::size_t num_links,
                                         std::size_t num_subcarriers) const {
    // Measurements over every observed link.
    MeasureRequest req;
    MeasureReport rep;
    rep.snr_centi_db.assign(num_subcarriers, 0);
    double t = 0.0;
    for (std::size_t l = 0; l < num_links; ++l) {
        t += transfer_time_s(encoded_size(Message{req}));
        t += measurement_s;
        t += transfer_time_s(encoded_size(Message{rep}));
    }
    return t;
}

double ControlPlaneModel::config_trial_time_s(
    const SetConfig& set_config, std::size_t num_links,
    std::size_t num_subcarriers) const {
    return apply_cost_s(set_config) +
           measure_cost_s(num_links, num_subcarriers);
}

void SimClock::advance(double seconds) {
    PRESS_EXPECTS(seconds >= 0.0, "time cannot run backwards");
    now_s_ += seconds;
}

}  // namespace press::control
