// Multi-link scheduling: the paper's agility-vs-optimization trade-off.
//
// Section 2: "a trade-off exists between agility and optimization: one
// might jointly optimize over a large set of likely communication links,
// obviating the need to change the PRESS array for each link's
// communication, but possibly complicating the optimization problem. On
// the other end of the design space, one might optimize solely over a
// single communication link ... hard-forcing the above timing
// constraints." With traffic multiplexed over packet-timescale slots
// (1-2 ms), per-link reconfiguration buys each link its best channel but
// pays switching overhead out of every slot; a joint configuration pays
// nothing per slot but serves every link with one compromise setting.
#pragma once

#include <functional>
#include <vector>

#include "control/plane.hpp"
#include "control/search.hpp"
#include "press/config.hpp"
#include "util/rng.hpp"

namespace press::control {

/// How the array serves a set of time-multiplexed links.
enum class MultiLinkStrategy {
    kStaticOff,   ///< baseline: elements terminated, never reconfigured
    kJoint,       ///< one configuration maximizing the mean across links
    kPerLink,     ///< each link's slot gets its own optimized configuration
};

const char* to_string(MultiLinkStrategy strategy);

/// Result of serving the link set under one strategy.
struct MultiLinkOutcome {
    /// Mean per-link objective score weighted by useful airtime.
    double mean_effective_score = 0.0;
    /// Mean raw objective score (ignoring switching overhead).
    double mean_raw_score = 0.0;
    /// Fraction of each slot left for data after reconfiguration.
    double airtime_fraction = 1.0;
    /// Configuration used per link (identical entries under kJoint).
    std::vector<surface::Config> configs;
    /// Measurement trials spent searching.
    std::size_t evaluations = 0;
};

/// Evaluates one link's objective (e.g. its throughput in Mb/s) under a
/// configuration.
using LinkEval =
    std::function<double(std::size_t link, const surface::Config& config)>;

/// Explores the agility-vs-optimization spectrum for `num_links` links
/// sharing the array in round-robin slots of `slot_duration_s`.
class MultiLinkScheduler {
public:
    MultiLinkScheduler(ControlPlaneModel plane, double slot_duration_s);

    /// Runs `strategy`. The search uses `searcher` with `search_budget`
    /// evaluations per optimization target (one target under kJoint, one
    /// per link under kPerLink).
    MultiLinkOutcome run(MultiLinkStrategy strategy,
                         const surface::ConfigSpace& space,
                         const LinkEval& eval, std::size_t num_links,
                         const Searcher& searcher,
                         std::size_t search_budget, util::Rng& rng) const;

    /// Time lost to reconfiguring the array at a slot boundary.
    double reconfiguration_time_s(const surface::ConfigSpace& space) const;

private:
    ControlPlaneModel plane_;
    double slot_duration_s_;
};

}  // namespace press::control
