// The PRESS controller: closes the measure -> search -> actuate loop under
// a wall-clock (coherence-time) budget.
//
// The controller is deliberately decoupled from the radio substrate: the
// caller supplies an `apply` callback (push a configuration to the array,
// in reality via the SetConfig wire message) and a `measure` callback
// (sound the observed links and return an Observation). Every trial is
// priced with the ControlPlaneModel, so a search over a 5-second prototype
// control plane really does afford ~64 trials per 5 seconds, while the
// "fast" model fits tens of trials inside a 80 ms coherence window.
#pragma once

#include <functional>

#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/search.hpp"
#include "press/config.hpp"
#include "util/rng.hpp"

namespace press::control {

/// Pushes a configuration to the PRESS array(s).
using ApplyFn = std::function<void(const surface::Config&)>;

/// Measures the observed links under the currently applied configuration.
using MeasureFn = std::function<Observation()>;

/// Result of a budgeted optimization run.
struct OptimizationOutcome {
    SearchResult search;
    /// Simulated wall-clock spent (control messages + switching +
    /// measurements).
    double elapsed_s = 0.0;
    /// Cost of one configuration trial under the control-plane model.
    double trial_cost_s = 0.0;
    /// True when the time budget (not the search space) ended the run.
    bool budget_limited = false;
};

/// Orchestrates searches against live (simulated) measurements.
class Controller {
public:
    Controller(ControlPlaneModel model, ApplyFn apply, MeasureFn measure,
               std::size_t num_links, std::size_t num_subcarriers);

    /// Runs `searcher` toward `objective` for at most `time_budget_s` of
    /// simulated wall-clock. The best configuration found is re-applied
    /// before returning, so the system is left in its optimized state.
    OptimizationOutcome optimize(const surface::ConfigSpace& space,
                                 const Objective& objective,
                                 const Searcher& searcher,
                                 double time_budget_s, util::Rng& rng);

    /// Number of configuration trials affordable within `time_budget_s`.
    std::size_t trials_within(const surface::ConfigSpace& space,
                              double time_budget_s) const;

    const SimClock& clock() const { return clock_; }

private:
    double trial_cost_s(const surface::ConfigSpace& space) const;

    ControlPlaneModel model_;
    ApplyFn apply_;
    MeasureFn measure_;
    std::size_t num_links_;
    std::size_t num_subcarriers_;
    SimClock clock_;
};

}  // namespace press::control
