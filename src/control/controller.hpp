// The PRESS controller: closes the measure -> search -> actuate loop under
// a wall-clock (coherence-time) budget.
//
// The controller is deliberately decoupled from the radio substrate: the
// caller supplies an `apply` callback (push a configuration to the array,
// in reality via the SetConfig wire message) and a `measure` callback
// (sound the observed links and return an Observation). Every trial is
// priced with the ControlPlaneModel, so a search over a 5-second prototype
// control plane really does afford ~64 trials per 5 seconds, while the
// "fast" model fits tens of trials inside a 80 ms coherence window.
//
// The apply callback reports delivery: a `false` return means the control
// channel gave up (ReliableSession exhausted its retries) and the array
// state is unknown. The controller then scores the trial as failed,
// reverts to the last configuration known to have landed, and surfaces
// the failure count in the OptimizationOutcome instead of silently
// optimizing against hardware that is not doing what it was told.
#pragma once

#include <functional>

#include "control/objective.hpp"
#include "control/plane.hpp"
#include "control/search.hpp"
#include "press/config.hpp"
#include "util/rng.hpp"

namespace press::control {

/// Pushes a configuration to the PRESS array(s). Returns true when the
/// configuration is believed applied (acked); false when delivery failed.
using ApplyFn = std::function<bool(const surface::Config&)>;

/// Measures the observed links under the currently applied configuration.
using MeasureFn = std::function<Observation()>;

/// Score reported for a trial whose configuration never reached the array
/// (large and negative so no searcher chases it).
inline constexpr double kFailedTrialScore = -1e9;

/// Result of a budgeted optimization run.
struct OptimizationOutcome {
    SearchResult search;
    /// Simulated wall-clock spent (control messages + switching +
    /// measurements + any transport retries/backoff).
    double elapsed_s = 0.0;
    /// Nominal cost of one configuration trial under the control-plane
    /// model (loss-free; retries make real trials dearer).
    double trial_cost_s = 0.0;
    /// True when the time budget (not the search space) ended the run.
    bool budget_limited = false;
    /// Trials whose apply was reported failed (ReliableSession gave up).
    std::size_t failed_applies = 0;
    /// Reverts to the last-known-good configuration after failed applies.
    std::size_t reverts = 0;
    /// False when even the final apply of the best configuration failed
    /// and the controller fell back to the last-known-good state.
    bool final_apply_ok = true;
};

/// Orchestrates searches against live (simulated) measurements.
class Controller {
public:
    Controller(ControlPlaneModel model, ApplyFn apply, MeasureFn measure,
               std::size_t num_links, std::size_t num_subcarriers);

    /// Declares that the apply callback prices its own control-channel
    /// time on this controller's clock (a ReliableSession sharing
    /// mutable_clock()). The controller then charges only measurement
    /// time per trial, so transport retries are not double-counted.
    void set_apply_self_priced(bool self_priced) {
        apply_self_priced_ = self_priced;
    }

    /// Runs `searcher` toward `objective` for at most `time_budget_s` of
    /// simulated wall-clock. The best configuration found is re-applied
    /// before returning, so the system is left in its optimized state.
    OptimizationOutcome optimize(const surface::ConfigSpace& space,
                                 const Objective& objective,
                                 const Searcher& searcher,
                                 double time_budget_s, util::Rng& rng);

    /// Number of configuration trials affordable within `time_budget_s`
    /// on a loss-free channel (retries can only shrink this).
    std::size_t trials_within(const surface::ConfigSpace& space,
                              double time_budget_s) const;

    const SimClock& clock() const { return clock_; }

    /// Shared clock for transport sessions that price their own attempts.
    SimClock& mutable_clock() { return clock_; }

private:
    double trial_cost_s(const surface::ConfigSpace& space) const;

    ControlPlaneModel model_;
    ApplyFn apply_;
    MeasureFn measure_;
    std::size_t num_links_;
    std::size_t num_subcarriers_;
    bool apply_self_priced_ = false;
    SimClock clock_;
};

}  // namespace press::control
