#include "control/controller.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace press::control {

Controller::Controller(ControlPlaneModel model, ApplyFn apply,
                       MeasureFn measure, std::size_t num_links,
                       std::size_t num_subcarriers)
    : model_(model),
      apply_(std::move(apply)),
      measure_(std::move(measure)),
      num_links_(num_links),
      num_subcarriers_(num_subcarriers) {
    PRESS_EXPECTS(apply_ != nullptr, "apply callback required");
    PRESS_EXPECTS(measure_ != nullptr, "measure callback required");
    PRESS_EXPECTS(num_links_ >= 1, "controller observes at least one link");
}

double Controller::trial_cost_s(const surface::ConfigSpace& space) const {
    SetConfig probe;
    probe.array_id = 0;
    probe.config.assign(space.num_elements(), 0);
    return model_.config_trial_time_s(probe, num_links_, num_subcarriers_);
}

std::size_t Controller::trials_within(const surface::ConfigSpace& space,
                                      double time_budget_s) const {
    PRESS_EXPECTS(time_budget_s > 0.0, "budget must be positive");
    const double cost = trial_cost_s(space);
    return static_cast<std::size_t>(time_budget_s / cost);
}

OptimizationOutcome Controller::optimize(const surface::ConfigSpace& space,
                                         const Objective& objective,
                                         const Searcher& searcher,
                                         double time_budget_s,
                                         util::Rng& rng) {
    const double cost = trial_cost_s(space);
    const std::size_t max_evals =
        std::max<std::size_t>(1, trials_within(space, time_budget_s));

    OptimizationOutcome outcome;
    outcome.trial_cost_s = cost;

    const EvalFn eval = [this, &objective, cost](const surface::Config& c) {
        apply_(c);
        const Observation obs = measure_();
        clock_.advance(cost);
        return objective.score(obs);
    };

    outcome.search = searcher.search(space, eval, max_evals, rng);
    outcome.elapsed_s = static_cast<double>(outcome.search.evaluations) * cost;
    // The space may have fewer points than the budget allows (e.g. an
    // exhaustive sweep of 64 configurations under a generous budget).
    outcome.budget_limited = outcome.search.evaluations >= max_evals;

    // Leave the array in its best state.
    if (!outcome.search.best_config.empty()) apply_(outcome.search.best_config);
    return outcome;
}

}  // namespace press::control
