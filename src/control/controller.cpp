#include "control/controller.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace press::control {

Controller::Controller(ControlPlaneModel model, ApplyFn apply,
                       MeasureFn measure, std::size_t num_links,
                       std::size_t num_subcarriers)
    : model_(model),
      apply_(std::move(apply)),
      measure_(std::move(measure)),
      num_links_(num_links),
      num_subcarriers_(num_subcarriers) {
    PRESS_EXPECTS(apply_ != nullptr, "apply callback required");
    PRESS_EXPECTS(measure_ != nullptr, "measure callback required");
    PRESS_EXPECTS(num_links_ >= 1, "controller observes at least one link");
}

double Controller::trial_cost_s(const surface::ConfigSpace& space) const {
    SetConfig probe;
    probe.array_id = 0;
    probe.config.assign(space.num_elements(), 0);
    return model_.config_trial_time_s(probe, num_links_, num_subcarriers_);
}

std::size_t Controller::trials_within(const surface::ConfigSpace& space,
                                      double time_budget_s) const {
    PRESS_EXPECTS(time_budget_s > 0.0, "budget must be positive");
    const double cost = trial_cost_s(space);
    return static_cast<std::size_t>(time_budget_s / cost);
}

OptimizationOutcome Controller::optimize(const surface::ConfigSpace& space,
                                         const Objective& objective,
                                         const Searcher& searcher,
                                         double time_budget_s,
                                         util::Rng& rng) {
    // Priced on both clocks: wall time is what the simulator spends,
    // sim_elapsed_s is the coherence-window budget the modeled control
    // plane consumed (applies, measurements, retries, backoff).
    obs::TraceSpan span("control.controller.optimize", &clock_);
    SetConfig probe;
    probe.array_id = 0;
    probe.config.assign(space.num_elements(), 0);
    const double apply_cost = model_.apply_cost_s(probe);
    const double measure_cost =
        model_.measure_cost_s(num_links_, num_subcarriers_);
    const std::size_t max_evals =
        std::max<std::size_t>(1, trials_within(space, time_budget_s));

    OptimizationOutcome outcome;
    outcome.trial_cost_s = apply_cost + measure_cost;

    const double start_s = clock_.now_s();
    const double deadline_s = start_s + time_budget_s;

    // Last configuration whose apply was acknowledged; empty until one
    // lands. The fallback state after a failed delivery.
    surface::Config last_good;

    const EvalFn eval = [&](const surface::Config& c) {
        const bool delivered = apply_(c);
        // A self-priced apply (ReliableSession) has already advanced the
        // shared clock by its attempts and backoff.
        if (!apply_self_priced_) clock_.advance(apply_cost);
        if (!delivered) {
            ++outcome.failed_applies;
            // The array state is unknown; re-assert the last configuration
            // known to have landed so subsequent trials measure from a
            // defined state (best effort — the channel may still be down).
            if (!last_good.empty()) {
                ++outcome.reverts;
                (void)apply_(last_good);
                if (!apply_self_priced_) clock_.advance(apply_cost);
            }
            return kFailedTrialScore;
        }
        last_good = c;
        const Observation obs = measure_();
        clock_.advance(measure_cost);
        return objective.score(obs);
    };

    const StopFn stop = [this, deadline_s]() {
        return clock_.now_s() >= deadline_s;
    };

    const auto compute_t0 = std::chrono::steady_clock::now();
    outcome.search = searcher.search(space, eval, max_evals, rng, stop);
    outcome.search.compute_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      compute_t0)
            .count();
    outcome.elapsed_s = clock_.now_s() - start_s;
    // The space may have fewer points than the budget allows (e.g. an
    // exhaustive sweep of 64 configurations under a generous budget).
    outcome.budget_limited = outcome.search.evaluations >= max_evals ||
                             clock_.now_s() >= deadline_s;

    // Leave the array in its best state — unless no trial was ever
    // delivered, in which case there is nothing meaningful to re-apply.
    if (!outcome.search.best_config.empty() &&
        outcome.search.best_score > kFailedTrialScore) {
        if (!apply_(outcome.search.best_config)) {
            outcome.final_apply_ok = false;
            ++outcome.failed_applies;
            if (!last_good.empty()) {
                ++outcome.reverts;
                (void)apply_(last_good);
            }
        }
    }
    // best_score is the max over noisy samples (biased high; see
    // SearchResult). With the winning configuration now applied,
    // re-measure it over fresh noise draws and report the mean — the
    // honest estimate of what the link actually gets. Priced on the sim
    // clock like any other measurement, after the search budget.
    outcome.search.best_score_remeasured = outcome.search.best_score;
    if (!outcome.search.best_config.empty() &&
        outcome.search.best_score > kFailedTrialScore &&
        outcome.final_apply_ok) {
        obs::TraceSpan remeasure_span("control.controller.remeasure",
                                      &clock_);
        constexpr std::size_t kRemeasureEvals = 3;
        double sum = 0.0;
        for (std::size_t k = 0; k < kRemeasureEvals; ++k) {
            const Observation confirm = measure_();
            clock_.advance(measure_cost);
            sum += objective.score(confirm);
        }
        outcome.search.remeasure_evals = kRemeasureEvals;
        outcome.search.best_score_remeasured =
            sum / static_cast<double>(kRemeasureEvals);
    }
    record_search_telemetry(searcher.name(), outcome.search);
    if (obs::enabled()) {
        auto& registry = obs::MetricsRegistry::global();
        registry.counter("control.controller.optimizations").add();
        registry.counter("control.controller.trials")
            .add(outcome.search.evaluations);
        registry.counter("control.controller.failed_applies")
            .add(outcome.failed_applies);
        registry.counter("control.controller.reverts").add(outcome.reverts);
        registry.gauge("control.controller.sim_elapsed_s")
            .set(clock_.now_s());
    }
    return outcome;
}

}  // namespace press::control
