#include "control/message.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace press::control {

namespace {

constexpr std::uint16_t kMagic = 0x5052;
constexpr std::uint8_t kVersionPlain = 1;   ///< no trace header
constexpr std::uint8_t kVersionTraced = 2;  ///< +16 bytes TraceContext

void encode_payload(const SetConfig& m, ByteWriter& w) {
    w.u16(m.array_id);
    w.u16(static_cast<std::uint16_t>(m.config.size()));
    for (int s : m.config) {
        PRESS_EXPECTS(s >= 0 && s <= 255, "element state must fit a byte");
        w.u8(static_cast<std::uint8_t>(s));
    }
}

void encode_payload(const SetConfigAck& m, ByteWriter& w) {
    w.u16(m.array_id);
    w.u8(m.status);
}

void encode_payload(const MeasureRequest& m, ByteWriter& w) {
    w.u16(m.link_id);
    w.u16(m.repeats);
}

void encode_payload(const MeasureReport& m, ByteWriter& w) {
    w.u16(m.link_id);
    w.u16(static_cast<std::uint16_t>(m.snr_centi_db.size()));
    for (std::int16_t v : m.snr_centi_db) w.i16(v);
}

void encode_payload(const Hello& m, ByteWriter& w) { w.u8(m.priority_cap); }

void encode_payload(const HelloAck& m, ByteWriter& w) {
    w.u16(m.session_id);
    w.u64(m.epoch);
}

void encode_payload(const OptimizeRequest& m, ByteWriter& w) {
    w.u16(m.array_id);
    w.u8(m.objective);
    w.u16(m.link_id);
    w.u8(m.searcher);
    w.u32(m.budget_us);
    w.u32(m.deadline_us);
    w.u8(m.priority);
}

void encode_payload(const OptimizeReply& m, ByteWriter& w) {
    w.u8(m.status);
    w.u64(m.epoch);
    w.i32(m.best_score_centi);
    w.u32(m.evaluations);
    w.u32(m.queue_wait_us);
    w.u32(m.compute_us);
}

void encode_payload(const MutateRequest& m, ByteWriter& w) {
    w.u16(m.array_id);
    w.u16(m.element);
    w.u8(m.state);
}

void encode_payload(const MutateReply& m, ByteWriter& w) {
    w.u8(m.status);
    w.u64(m.epoch);
}

void encode_payload(const Reject& m, ByteWriter& w) {
    w.u8(m.reason);
    w.u16(m.queue_depth);
}

void encode_payload(const StatusRequest&, ByteWriter&) {}

void encode_payload(const StatusReply& m, ByteWriter& w) {
    w.u64(m.epoch);
    w.u16(m.queue_depth);
    w.u64(m.served);
    w.u64(m.rejected);
    w.u64(m.expired);
    // Millisecond resolution keeps uptime in a u64 for the narrow wire.
    const double ms = m.uptime_s * 1000.0;
    w.u64(ms <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(ms)));
    w.u64(m.revision);
}

// Length-prefixed UTF-8; u16 matches the frame's own payload bound.
void encode_string(const std::string& s, ByteWriter& w) {
    PRESS_EXPECTS(s.size() <= 0xFFFF, "string too large for framing");
    w.u16(static_cast<std::uint16_t>(s.size()));
    w.bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

std::string decode_string(ByteReader& r) {
    const std::uint16_t n = r.u16();
    std::string out;
    out.reserve(n);
    for (std::uint16_t i = 0; i < n; ++i)
        out.push_back(static_cast<char>(r.u8()));
    return out;
}

void encode_payload(const Subscribe& m, ByteWriter& w) {
    encode_string(m.prefix, w);
    w.u32(m.interval_us);
    w.u8(m.flags);
}

void encode_payload(const TelemetryFrame& m, ByteWriter& w) {
    w.u64(m.revision);
    encode_string(m.payload, w);
}

void encode_payload(const FlightTap& m, ByteWriter& w) {
    w.u8(m.reason);
    w.u64(m.revision);
    encode_string(m.path, w);
}

MessageType type_of(const Message& msg) {
    if (std::holds_alternative<SetConfig>(msg)) return MessageType::kSetConfig;
    if (std::holds_alternative<SetConfigAck>(msg))
        return MessageType::kSetConfigAck;
    if (std::holds_alternative<MeasureRequest>(msg))
        return MessageType::kMeasureRequest;
    if (std::holds_alternative<MeasureReport>(msg))
        return MessageType::kMeasureReport;
    if (std::holds_alternative<Hello>(msg)) return MessageType::kHello;
    if (std::holds_alternative<HelloAck>(msg)) return MessageType::kHelloAck;
    if (std::holds_alternative<OptimizeRequest>(msg))
        return MessageType::kOptimizeRequest;
    if (std::holds_alternative<OptimizeReply>(msg))
        return MessageType::kOptimizeReply;
    if (std::holds_alternative<MutateRequest>(msg))
        return MessageType::kMutateRequest;
    if (std::holds_alternative<MutateReply>(msg))
        return MessageType::kMutateReply;
    if (std::holds_alternative<Reject>(msg)) return MessageType::kReject;
    if (std::holds_alternative<StatusRequest>(msg))
        return MessageType::kStatusRequest;
    if (std::holds_alternative<StatusReply>(msg))
        return MessageType::kStatusReply;
    if (std::holds_alternative<Subscribe>(msg)) return MessageType::kSubscribe;
    if (std::holds_alternative<TelemetryFrame>(msg))
        return MessageType::kTelemetryFrame;
    return MessageType::kFlightTap;
}

}  // namespace

const char* to_string(FlightTapReason reason) {
    switch (reason) {
        case FlightTapReason::kWatchdog: return "watchdog";
        case FlightTapReason::kSloBurn: return "slo-burn";
    }
    return "unknown";
}

const char* to_string(RejectReason reason) {
    switch (reason) {
        case RejectReason::kQueueFull: return "queue-full";
        case RejectReason::kExpired: return "expired";
        case RejectReason::kShed: return "shed";
        case RejectReason::kBadRequest: return "bad-request";
        case RejectReason::kDuplicate: return "duplicate";
        case RejectReason::kBackpressure: return "backpressure";
    }
    return "unknown";
}

void MeasureReport::set_snr_db(const std::vector<double>& snr) {
    snr_centi_db.resize(snr.size());
    for (std::size_t i = 0; i < snr.size(); ++i) {
        const double c = std::clamp(snr[i] * 100.0, -32768.0, 32767.0);
        snr_centi_db[i] = static_cast<std::int16_t>(std::lround(c));
    }
}

std::vector<double> MeasureReport::snr_db() const {
    std::vector<double> out(snr_centi_db.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<double>(snr_centi_db[i]) / 100.0;
    return out;
}

std::vector<std::uint8_t> encode(const Message& msg, std::uint32_t seq) {
    return encode(msg, seq, obs::TraceContext{});
}

std::vector<std::uint8_t> encode(const Message& msg, std::uint32_t seq,
                                 const obs::TraceContext& trace) {
    ByteWriter payload;
    std::visit([&payload](const auto& m) { encode_payload(m, payload); }, msg);
    PRESS_EXPECTS(payload.size() <= 0xFFFF, "payload too large for framing");

    ByteWriter w;
    w.u16(kMagic);
    w.u8(trace.valid() ? kVersionTraced : kVersionPlain);
    w.u8(static_cast<std::uint8_t>(type_of(msg)));
    w.u32(seq);
    if (trace.valid()) {
        w.u64(trace.trace_id);
        w.u64(trace.parent_span);
    }
    w.u16(static_cast<std::uint16_t>(payload.size()));
    w.bytes(payload.buffer().data(), payload.size());
    const std::uint16_t crc = crc16(w.buffer());
    w.u16(crc);
    return w.take();
}

Decoded decode(const std::vector<std::uint8_t>& buffer) {
    // Truncation and checksum mismatch are the signatures of a mangled
    // transport (bit flips, chopped frames); both count into the global
    // wire.frames_corrupt telemetry before rejection so chaos and channel
    // noise stay observable in one place. Failures past the CRC (bad
    // magic, unknown type) mean an incompatible peer, not corruption.
    if (buffer.size() < 12) {
        note_corrupt_frame();
        throw ProtocolError("buffer shorter than framing");
    }
    // Verify the CRC over everything before the trailing two bytes.
    const std::uint16_t expect = crc16(buffer.data(), buffer.size() - 2);
    const std::uint16_t got = static_cast<std::uint16_t>(
        buffer[buffer.size() - 2] |
        (static_cast<std::uint16_t>(buffer[buffer.size() - 1]) << 8));
    if (expect != got) {
        note_corrupt_frame();
        throw ProtocolError("CRC mismatch");
    }

    ByteReader r(buffer);
    if (r.u16() != kMagic) throw ProtocolError("bad magic");
    const std::uint8_t version = r.u8();
    if (version != kVersionPlain && version != kVersionTraced)
        throw ProtocolError("unsupported version");
    const std::uint8_t type = r.u8();
    Decoded d;
    d.seq = r.u32();
    if (version == kVersionTraced) {
        d.trace.trace_id = r.u64();
        d.trace.parent_span = r.u64();
        if (!d.trace.valid())
            throw ProtocolError("traced frame with zero trace_id");
    }
    const std::uint16_t len = r.u16();
    if (r.remaining() != static_cast<std::size_t>(len) + 2)
        throw ProtocolError("length field does not match buffer");

    switch (static_cast<MessageType>(type)) {
        case MessageType::kSetConfig: {
            SetConfig m;
            m.array_id = r.u16();
            const std::uint16_t n = r.u16();
            m.config.resize(n);
            for (std::uint16_t i = 0; i < n; ++i)
                m.config[i] = static_cast<int>(r.u8());
            d.message = std::move(m);
            return d;
        }
        case MessageType::kSetConfigAck: {
            SetConfigAck m;
            m.array_id = r.u16();
            m.status = r.u8();
            d.message = m;
            return d;
        }
        case MessageType::kMeasureRequest: {
            MeasureRequest m;
            m.link_id = r.u16();
            m.repeats = r.u16();
            d.message = m;
            return d;
        }
        case MessageType::kMeasureReport: {
            MeasureReport m;
            m.link_id = r.u16();
            const std::uint16_t n = r.u16();
            m.snr_centi_db.resize(n);
            for (std::uint16_t i = 0; i < n; ++i) m.snr_centi_db[i] = r.i16();
            d.message = std::move(m);
            return d;
        }
        case MessageType::kHello: {
            Hello m;
            m.priority_cap = r.u8();
            d.message = m;
            return d;
        }
        case MessageType::kHelloAck: {
            HelloAck m;
            m.session_id = r.u16();
            m.epoch = r.u64();
            d.message = m;
            return d;
        }
        case MessageType::kOptimizeRequest: {
            OptimizeRequest m;
            m.array_id = r.u16();
            m.objective = r.u8();
            m.link_id = r.u16();
            m.searcher = r.u8();
            m.budget_us = r.u32();
            m.deadline_us = r.u32();
            m.priority = r.u8();
            d.message = m;
            return d;
        }
        case MessageType::kOptimizeReply: {
            OptimizeReply m;
            m.status = r.u8();
            m.epoch = r.u64();
            m.best_score_centi = r.i32();
            m.evaluations = r.u32();
            m.queue_wait_us = r.u32();
            m.compute_us = r.u32();
            d.message = m;
            return d;
        }
        case MessageType::kMutateRequest: {
            MutateRequest m;
            m.array_id = r.u16();
            m.element = r.u16();
            m.state = r.u8();
            d.message = m;
            return d;
        }
        case MessageType::kMutateReply: {
            MutateReply m;
            m.status = r.u8();
            m.epoch = r.u64();
            d.message = m;
            return d;
        }
        case MessageType::kReject: {
            Reject m;
            m.reason = r.u8();
            m.queue_depth = r.u16();
            d.message = m;
            return d;
        }
        case MessageType::kStatusRequest: {
            d.message = StatusRequest{};
            return d;
        }
        case MessageType::kStatusReply: {
            StatusReply m;
            m.epoch = r.u64();
            m.queue_depth = r.u16();
            m.served = r.u64();
            m.rejected = r.u64();
            m.expired = r.u64();
            m.uptime_s = static_cast<double>(r.u64()) / 1000.0;
            m.revision = r.u64();
            d.message = m;
            return d;
        }
        case MessageType::kSubscribe: {
            Subscribe m;
            m.prefix = decode_string(r);
            m.interval_us = r.u32();
            m.flags = r.u8();
            d.message = std::move(m);
            return d;
        }
        case MessageType::kTelemetryFrame: {
            TelemetryFrame m;
            m.revision = r.u64();
            m.payload = decode_string(r);
            d.message = std::move(m);
            return d;
        }
        case MessageType::kFlightTap: {
            FlightTap m;
            m.reason = r.u8();
            m.revision = r.u64();
            m.path = decode_string(r);
            d.message = std::move(m);
            return d;
        }
    }
    throw ProtocolError("unknown message type");
}

std::size_t encoded_size(const Message& msg) {
    return encode(msg, 0).size();
}

}  // namespace press::control
