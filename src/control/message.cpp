#include "control/message.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace press::control {

namespace {

constexpr std::uint16_t kMagic = 0x5052;
constexpr std::uint8_t kVersionPlain = 1;   ///< no trace header
constexpr std::uint8_t kVersionTraced = 2;  ///< +16 bytes TraceContext

void encode_payload(const SetConfig& m, ByteWriter& w) {
    w.u16(m.array_id);
    w.u16(static_cast<std::uint16_t>(m.config.size()));
    for (int s : m.config) {
        PRESS_EXPECTS(s >= 0 && s <= 255, "element state must fit a byte");
        w.u8(static_cast<std::uint8_t>(s));
    }
}

void encode_payload(const SetConfigAck& m, ByteWriter& w) {
    w.u16(m.array_id);
    w.u8(m.status);
}

void encode_payload(const MeasureRequest& m, ByteWriter& w) {
    w.u16(m.link_id);
    w.u16(m.repeats);
}

void encode_payload(const MeasureReport& m, ByteWriter& w) {
    w.u16(m.link_id);
    w.u16(static_cast<std::uint16_t>(m.snr_centi_db.size()));
    for (std::int16_t v : m.snr_centi_db) w.i16(v);
}

MessageType type_of(const Message& msg) {
    if (std::holds_alternative<SetConfig>(msg)) return MessageType::kSetConfig;
    if (std::holds_alternative<SetConfigAck>(msg))
        return MessageType::kSetConfigAck;
    if (std::holds_alternative<MeasureRequest>(msg))
        return MessageType::kMeasureRequest;
    return MessageType::kMeasureReport;
}

}  // namespace

void MeasureReport::set_snr_db(const std::vector<double>& snr) {
    snr_centi_db.resize(snr.size());
    for (std::size_t i = 0; i < snr.size(); ++i) {
        const double c = std::clamp(snr[i] * 100.0, -32768.0, 32767.0);
        snr_centi_db[i] = static_cast<std::int16_t>(std::lround(c));
    }
}

std::vector<double> MeasureReport::snr_db() const {
    std::vector<double> out(snr_centi_db.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<double>(snr_centi_db[i]) / 100.0;
    return out;
}

std::vector<std::uint8_t> encode(const Message& msg, std::uint32_t seq) {
    return encode(msg, seq, obs::TraceContext{});
}

std::vector<std::uint8_t> encode(const Message& msg, std::uint32_t seq,
                                 const obs::TraceContext& trace) {
    ByteWriter payload;
    std::visit([&payload](const auto& m) { encode_payload(m, payload); }, msg);
    PRESS_EXPECTS(payload.size() <= 0xFFFF, "payload too large for framing");

    ByteWriter w;
    w.u16(kMagic);
    w.u8(trace.valid() ? kVersionTraced : kVersionPlain);
    w.u8(static_cast<std::uint8_t>(type_of(msg)));
    w.u32(seq);
    if (trace.valid()) {
        w.u64(trace.trace_id);
        w.u64(trace.parent_span);
    }
    w.u16(static_cast<std::uint16_t>(payload.size()));
    w.bytes(payload.buffer().data(), payload.size());
    const std::uint16_t crc = crc16(w.buffer());
    w.u16(crc);
    return w.take();
}

Decoded decode(const std::vector<std::uint8_t>& buffer) {
    if (buffer.size() < 12) throw ProtocolError("buffer shorter than framing");
    // Verify the CRC over everything before the trailing two bytes.
    const std::uint16_t expect = crc16(buffer.data(), buffer.size() - 2);
    const std::uint16_t got = static_cast<std::uint16_t>(
        buffer[buffer.size() - 2] |
        (static_cast<std::uint16_t>(buffer[buffer.size() - 1]) << 8));
    if (expect != got) throw ProtocolError("CRC mismatch");

    ByteReader r(buffer);
    if (r.u16() != kMagic) throw ProtocolError("bad magic");
    const std::uint8_t version = r.u8();
    if (version != kVersionPlain && version != kVersionTraced)
        throw ProtocolError("unsupported version");
    const std::uint8_t type = r.u8();
    Decoded d;
    d.seq = r.u32();
    if (version == kVersionTraced) {
        d.trace.trace_id = r.u64();
        d.trace.parent_span = r.u64();
        if (!d.trace.valid())
            throw ProtocolError("traced frame with zero trace_id");
    }
    const std::uint16_t len = r.u16();
    if (r.remaining() != static_cast<std::size_t>(len) + 2)
        throw ProtocolError("length field does not match buffer");

    switch (static_cast<MessageType>(type)) {
        case MessageType::kSetConfig: {
            SetConfig m;
            m.array_id = r.u16();
            const std::uint16_t n = r.u16();
            m.config.resize(n);
            for (std::uint16_t i = 0; i < n; ++i)
                m.config[i] = static_cast<int>(r.u8());
            d.message = std::move(m);
            return d;
        }
        case MessageType::kSetConfigAck: {
            SetConfigAck m;
            m.array_id = r.u16();
            m.status = r.u8();
            d.message = m;
            return d;
        }
        case MessageType::kMeasureRequest: {
            MeasureRequest m;
            m.link_id = r.u16();
            m.repeats = r.u16();
            d.message = m;
            return d;
        }
        case MessageType::kMeasureReport: {
            MeasureReport m;
            m.link_id = r.u16();
            const std::uint16_t n = r.u16();
            m.snr_centi_db.resize(n);
            for (std::uint16_t i = 0; i < n; ++i) m.snr_centi_db[i] = r.i16();
            d.message = std::move(m);
            return d;
        }
    }
    throw ProtocolError("unknown message type");
}

std::size_t encoded_size(const Message& msg) {
    return encode(msg, 0).size();
}

}  // namespace press::control
