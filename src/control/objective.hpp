// Optimization objectives over channel observations.
//
// Each of the paper's three applications (Section 1) becomes an Objective:
// link enhancement maximizes worst-subcarrier SNR (or MCS throughput),
// network harmonization rewards complementary frequency selectivity across
// links while punishing interference channels, and large-MIMO improvement
// minimizes the channel matrix condition number.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace press::control {

/// What a controller sees after measuring under one configuration.
struct Observation {
    /// Per observed link, the per-used-subcarrier SNR in dB.
    std::vector<std::vector<double>> link_snr_db;
    /// Per-subcarrier MIMO condition numbers in dB (empty when the scenario
    /// is not MIMO).
    std::vector<double> mimo_condition_db;
};

/// A fusable reduction shape: advertises that score(obs) depends only on
/// obs.link_snr_db[link] through a min or mean, so an owner of the
/// factored channel cache can compute the score directly from the
/// accumulated SoA response — no Observation materialized, no per-link
/// vectors filled. kNone means "score through the general path".
struct FusedSpec {
    enum class Kind { kNone, kMinSnr, kMeanSnr };
    Kind kind = Kind::kNone;
    std::size_t link = 0;
};

/// A figure of merit; larger is better.
class Objective {
public:
    virtual ~Objective() = default;
    virtual double score(const Observation& obs) const = 0;
    /// The objective's fusable shape; kNone (the default) keeps the
    /// general Observation path. Overriders guarantee that the fused
    /// reduction over link_snr_db[link] equals score(obs) up to reduction
    /// association (min: exactly; mean: blocked vs sequential ulps).
    virtual FusedSpec fused_spec() const { return {}; }
    virtual std::string name() const = 0;
};

/// Maximizes the minimum per-subcarrier SNR of one link (removes nulls).
class MinSnrObjective : public Objective {
public:
    explicit MinSnrObjective(std::size_t link = 0) : link_(link) {}
    double score(const Observation& obs) const override;
    FusedSpec fused_spec() const override {
        return {FusedSpec::Kind::kMinSnr, link_};
    }
    std::string name() const override { return "max-min-subcarrier-SNR"; }

private:
    std::size_t link_;
};

/// Maximizes the mean per-subcarrier SNR of one link.
class MeanSnrObjective : public Objective {
public:
    explicit MeanSnrObjective(std::size_t link = 0) : link_(link) {}
    double score(const Observation& obs) const override;
    FusedSpec fused_spec() const override {
        return {FusedSpec::Kind::kMeanSnr, link_};
    }
    std::string name() const override { return "max-mean-SNR"; }

private:
    std::size_t link_;
};

/// Maximizes the selected-MCS PHY throughput of one link (the paper's
/// "greater bit rate ... to higher layers").
class ThroughputObjective : public Objective {
public:
    explicit ThroughputObjective(std::size_t link = 0) : link_(link) {}
    double score(const Observation& obs) const override;
    std::string name() const override { return "max-throughput"; }

private:
    std::size_t link_;
};

/// A weighted sum of band-average SNRs across links. Building block for
/// harmonization and spatial-partitioning goals: positive weights on
/// communication bands, negative on interference bands.
class WeightedBandObjective : public Objective {
public:
    /// One term: mean SNR of link `link` over used subcarriers
    /// [`first_subcarrier`, `last_subcarrier`) scaled by `weight`.
    struct Term {
        std::size_t link = 0;
        std::size_t first_subcarrier = 0;
        std::size_t last_subcarrier = 0;
        double weight = 1.0;
    };

    explicit WeightedBandObjective(std::vector<Term> terms,
                                   std::string label = "weighted-bands");
    double score(const Observation& obs) const override;
    std::string name() const override { return label_; }

private:
    std::vector<Term> terms_;
    std::string label_;
};

/// The Figure-2/Figure-7 harmonization goal for two co-located networks:
/// link 0 should own the lower half of the band and link 1 the upper half.
/// When `interference_links` is true, observations carry four links
/// (comm A, comm B, interference A->B's client, interference B->A's
/// client) and the interference bands are penalized.
std::unique_ptr<Objective> make_harmonization_objective(
    std::size_t num_subcarriers, bool interference_links);

/// Minimizes the mean per-subcarrier MIMO condition number (score is its
/// negation so larger remains better).
class ConditionNumberObjective : public Objective {
public:
    double score(const Observation& obs) const override;
    std::string name() const override { return "min-condition-number"; }
};

}  // namespace press::control
