// Optimization objectives over channel observations.
//
// Each of the paper's three applications (Section 1) becomes an Objective:
// link enhancement maximizes worst-subcarrier SNR (or MCS throughput),
// network harmonization rewards complementary frequency selectivity across
// links while punishing interference channels, and large-MIMO improvement
// minimizes the channel matrix condition number.
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "phy/ru.hpp"

namespace press::control {

/// What a controller sees after measuring under one configuration.
struct Observation {
    /// Per observed link, the per-used-subcarrier SNR in dB.
    std::vector<std::vector<double>> link_snr_db;
    /// Per-subcarrier MIMO condition numbers in dB (empty when the scenario
    /// is not MIMO).
    std::vector<double> mimo_condition_db;
};

/// A fusable reduction shape: advertises that score(obs) depends only on
/// obs.link_snr_db[link] through a min or mean, so an owner of the
/// factored channel cache can compute the score directly from the
/// accumulated SoA response — no Observation materialized, no per-link
/// vectors filled. kNone means "score through the general path".
struct FusedSpec {
    enum class Kind { kNone, kMinSnr, kMeanSnr };
    Kind kind = Kind::kNone;
    std::size_t link = 0;
    /// Optional RU mask (wideband preamble puncturing, DESIGN.md §15):
    /// when non-null, the reduction runs over only the mask's active
    /// tones, and a cache-backed owner may restrict both the basis
    /// accumulation and the sounding to the tiles the mask touches. The
    /// pointer must outlive the optimization run (objectives returning
    /// one point at a mask they own).
    const phy::RuMask* mask = nullptr;
};

/// One link's contribution to a composite multi-link objective: the
/// link's per-subcarrier SNR span reduced through `reduce` to a value
/// v (dB), turned into a utility
///
///     u = weight * v - qos_weight * max(0, qos_floor_db - v)
///
/// The hinge term charges nothing while the link clears its QoS floor
/// and a linear penalty (slope qos_weight) per dB of shortfall below
/// it; the defaults (floor -inf, qos_weight 0) disable it. Negative
/// `weight` turns the term into an interference-nulling objective: the
/// combined score improves as the victim link's SNR drops.
struct LinkTerm {
    std::size_t link = 0;
    /// Per-subcarrier reduction of the link's SNR span. kNone is invalid
    /// here — a term must reduce to a scalar.
    FusedSpec::Kind reduce = FusedSpec::Kind::kMeanSnr;
    double weight = 1.0;
    double qos_floor_db = -std::numeric_limits<double>::infinity();
    double qos_weight = 0.0;
};

/// The fusable shape of a composite multi-link objective: per-link
/// terms combined by a weighted sum or by max-min (maximize the worst
/// term utility — fairness / harmonization). An owner of the shared
/// multi-link basis (core::MultiLinkCache) scores this straight from the
/// stacked group responses, no Observation materialized.
struct MultiLinkSpec {
    enum class Combine { kWeightedSum, kMaxMin };
    std::vector<LinkTerm> terms;
    Combine combine = Combine::kWeightedSum;
};

/// A figure of merit; larger is better.
class Objective {
public:
    virtual ~Objective() = default;
    virtual double score(const Observation& obs) const = 0;
    /// The objective's fusable shape; kNone (the default) keeps the
    /// general Observation path. Overriders guarantee that the fused
    /// reduction over link_snr_db[link] equals score(obs) up to reduction
    /// association (min: exactly; mean: blocked vs sequential ulps).
    virtual FusedSpec fused_spec() const { return {}; }
    /// The objective's composite multi-link shape, or nullptr (the
    /// default). Overriders guarantee score(obs) equals the combinator
    /// applied to the per-term reductions (same association caveat as
    /// fused_spec; the returned pointer stays owned by the objective).
    virtual const MultiLinkSpec* multilink_spec() const { return nullptr; }
    virtual std::string name() const = 0;
};

/// Maximizes the minimum per-subcarrier SNR of one link (removes nulls).
class MinSnrObjective : public Objective {
public:
    explicit MinSnrObjective(std::size_t link = 0) : link_(link) {}
    double score(const Observation& obs) const override;
    FusedSpec fused_spec() const override {
        return {FusedSpec::Kind::kMinSnr, link_};
    }
    std::string name() const override { return "max-min-subcarrier-SNR"; }

private:
    std::size_t link_;
};

/// Maximizes the mean per-subcarrier SNR of one link.
class MeanSnrObjective : public Objective {
public:
    explicit MeanSnrObjective(std::size_t link = 0) : link_(link) {}
    double score(const Observation& obs) const override;
    FusedSpec fused_spec() const override {
        return {FusedSpec::Kind::kMeanSnr, link_};
    }
    std::string name() const override { return "max-mean-SNR"; }

private:
    std::size_t link_;
};

/// Per-RU masked single-link objective: the min or mean per-subcarrier
/// SNR over ONLY the active tones of an RU mask (996-tone and wider
/// numerologies schedule per-RU and puncture preamble-incumbent RUs; see
/// docs/OBJECTIVES.md). Fusable: fused_spec() carries the mask, so
/// System::optimize_fast sounds and reduces only the active tones and
/// bounds the basis accumulation to the subcarrier tiles the mask
/// intersects. The general Observation path reads the same tones out of
/// the full-width SNR span (min matches the fused scorer exactly, mean
/// up to blocked-vs-sequential association ulps — the FusedSpec
/// contract; the noise draws differ because the fused path sounds only
/// active tones).
class MaskedSnrObjective : public Objective {
public:
    MaskedSnrObjective(phy::RuMask mask, FusedSpec::Kind reduce,
                       std::size_t link = 0);
    double score(const Observation& obs) const override;
    FusedSpec fused_spec() const override {
        return {reduce_, link_, &mask_};
    }
    std::string name() const override;

    const phy::RuMask& mask() const { return mask_; }

private:
    phy::RuMask mask_;
    FusedSpec::Kind reduce_;
    std::size_t link_;
};

/// Maximizes the selected-MCS PHY throughput of one link (the paper's
/// "greater bit rate ... to higher layers").
class ThroughputObjective : public Objective {
public:
    explicit ThroughputObjective(std::size_t link = 0) : link_(link) {}
    double score(const Observation& obs) const override;
    std::string name() const override { return "max-throughput"; }

private:
    std::size_t link_;
};

/// A weighted sum of band-average SNRs across links. Building block for
/// harmonization and spatial-partitioning goals: positive weights on
/// communication bands, negative on interference bands.
class WeightedBandObjective : public Objective {
public:
    /// One term: mean SNR of link `link` over used subcarriers
    /// [`first_subcarrier`, `last_subcarrier`) scaled by `weight`.
    struct Term {
        std::size_t link = 0;
        std::size_t first_subcarrier = 0;
        std::size_t last_subcarrier = 0;
        double weight = 1.0;
    };

    explicit WeightedBandObjective(std::vector<Term> terms,
                                   std::string label = "weighted-bands");
    double score(const Observation& obs) const override;
    std::string name() const override { return label_; }

private:
    std::vector<Term> terms_;
    std::string label_;
};

/// The Figure-2/Figure-7 harmonization goal for two co-located networks:
/// link 0 should own the lower half of the band and link 1 the upper half.
/// When `interference_links` is true, observations carry four links
/// (comm A, comm B, interference A->B's client, interference B->A's
/// client) and the interference bands are penalized.
std::unique_ptr<Objective> make_harmonization_objective(
    std::size_t num_subcarriers, bool interference_links);

/// Composite objective over many links sharing one element field: the
/// combinator described by a MultiLinkSpec, usable both through the
/// general Observation path (score) and — via multilink_spec() — the
/// fused zero-alloc path of System::optimize_multilink.
class MultiLinkObjective : public Objective {
public:
    explicit MultiLinkObjective(MultiLinkSpec spec,
                                std::string label = "multi-link");
    double score(const Observation& obs) const override;
    const MultiLinkSpec* multilink_spec() const override { return &spec_; }
    std::string name() const override { return label_; }

    const MultiLinkSpec& spec() const { return spec_; }

    /// One term's utility for an already-reduced SNR value (dB): the
    /// weighted value minus the QoS hinge penalty. Shared by the general
    /// path and the fused scorer so the two cannot drift.
    static double term_utility(const LinkTerm& term, double value_db);
    /// The combinator over per-term utilities, evaluated in term order
    /// (sum left-to-right / running min).
    static double combine(const MultiLinkSpec& spec,
                          const double* utilities);

private:
    MultiLinkSpec spec_;
    std::string label_;
};

/// Fluent builder for multi-link problems — the entry point for N-link
/// scenes (see docs/OBJECTIVES.md for the full semantics):
///
///     auto objective = MultiLinkProblem()
///         .serve(0).serve(1, /*weight=*/2.0)
///         .qos_floor(2, 10.0, /*qos_weight=*/4.0)
///         .null(3)
///         .max_min()
///         .build("my-scene");
class MultiLinkProblem {
public:
    /// Adds a fully-specified term.
    MultiLinkProblem& add(LinkTerm term);
    /// Serve `link`: weight * mean-SNR, no floor.
    MultiLinkProblem& serve(std::size_t link, double weight = 1.0);
    /// Serve `link` with a QoS floor: mean-SNR plus a hinge penalty of
    /// `qos_weight` per dB below `floor_db`.
    MultiLinkProblem& qos_floor(std::size_t link, double floor_db,
                                double qos_weight = 1.0);
    /// Null `link`: its mean SNR enters with weight -`weight`, so the
    /// score improves as the victim's received power drops.
    MultiLinkProblem& null(std::size_t link, double weight = 1.0);
    /// Combine terms as a weighted sum (the default).
    MultiLinkProblem& weighted_sum();
    /// Combine terms max-min: maximize the worst term utility.
    MultiLinkProblem& max_min();
    /// Per-term reduction for subsequently added serve/qos_floor/null
    /// terms (default kMeanSnr; kMinSnr optimizes worst subcarriers).
    MultiLinkProblem& reduce(FusedSpec::Kind kind);

    std::unique_ptr<Objective> build(std::string label = "multi-link") const;
    const MultiLinkSpec& spec() const { return spec_; }

private:
    MultiLinkSpec spec_;
    FusedSpec::Kind reduce_ = FusedSpec::Kind::kMeanSnr;
};

/// Max-min fairness over every link 0..num_links: maximize the worst
/// link's reduced SNR. The harmonization preset.
std::unique_ptr<Objective> make_max_min_objective(
    std::size_t num_links,
    FusedSpec::Kind reduce = FusedSpec::Kind::kMeanSnr);

/// Sum of per-link mean SNRs over every link (aggregate capacity proxy;
/// tolerates starving individual links).
std::unique_ptr<Objective> make_sum_mean_objective(std::size_t num_links);

/// Sum of per-link mean SNRs where every link also carries a QoS hinge:
/// `qos_weight` dB of penalty per dB any link falls below `floor_db`.
std::unique_ptr<Objective> make_qos_floor_objective(std::size_t num_links,
                                                    double floor_db,
                                                    double qos_weight);

/// Serve every link except `victim` (weight +1 mean SNR) while nulling
/// the victim (weight -victim_weight): the interference-nulling preset.
/// Requires num_links >= 2.
std::unique_ptr<Objective> make_nulling_objective(std::size_t num_links,
                                                  std::size_t victim,
                                                  double victim_weight = 1.0);

/// Minimizes the mean per-subcarrier MIMO condition number (score is its
/// negation so larger remains better).
class ConditionNumberObjective : public Objective {
public:
    double score(const Observation& obs) const override;
    std::string name() const override { return "min-condition-number"; }
};

}  // namespace press::control
