// Parallel, deterministic batch evaluation of candidate configurations.
//
// A searcher that proposes independent candidates (an exhaustive chunk, or
// every alternative state of one element in a coordinate sweep) can score
// them concurrently when the evaluation is a pure function of the
// configuration — which the factored channel cache makes true. The
// BatchEvaluator runs a fixed pool of worker threads over each batch and
// is bit-reproducible regardless of thread count:
//
//   - results[i] always corresponds to batch[i] (workers write disjoint
//     slots; the caller folds scores in index order),
//   - each candidate's stochastic behavior (measurement noise, flaky
//     switches) draws from a private util::Rng seeded from the evaluator
//     seed and the candidate's GLOBAL evaluation index — not from a shared
//     stream whose interleaving would depend on scheduling.
//
// Workers claim candidates in contiguous SHARDS rather than one at a
// time: a worker takes the pool mutex once per shard, scores the whole
// shard lock-free against its private arena, then folds its accounting
// back under the lock. Shard size scales with the batch (about four
// shards per worker, floor one), so a 3,000-candidate sweep costs ~32
// lock acquisitions instead of 3,000, while small coordinate batches
// degrade gracefully to the old per-candidate claims. Which worker claims
// which shard never affects the bits: candidate seeds hang off the global
// index and every result lands in its own slot.
//
// Each worker owns one preallocated EvalScratch arena handed to every
// score call, so steady-state sweeps allocate nothing per candidate (see
// control/scratch.hpp). Coordinate sweeps have a second entry point,
// evaluate_coordinate(): the batch is one element's alternative states
// over a fixed base configuration, letting the score callback run the
// cache's incremental delta path (base response + one row-add) instead of
// materializing full candidate configurations.
//
// Thread count resolution: an explicit count wins; otherwise the
// PRESS_THREADS environment variable (clamped to [1, 64]); otherwise
// std::thread::hardware_concurrency(). Setting PRESS_PIN pins worker i to
// CPU i mod hardware_concurrency (Linux; a no-op elsewhere) — useful to
// stop the scheduler migrating workers between cores mid-sweep on
// many-core hosts, which costs both cache warmth and run-to-run timing
// stability. Pinning never affects results, only where they are computed.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "control/scratch.hpp"
#include "obs/trace.hpp"
#include "press/config.hpp"
#include "util/rng.hpp"

namespace press::control {

/// Scores one candidate configuration. `rng` is the candidate's private,
/// deterministically seeded stream; `scratch` the calling worker's arena.
/// Implementations must not touch any other mutable state.
using BatchScoreFn = std::function<double(const surface::Config&,
                                          util::Rng&, EvalScratch&)>;

/// One coordinate sweep: score base-with-element=states[i] for every i,
/// holding the rest of `base` fixed. Pointers stay valid for the duration
/// of the evaluate_coordinate() call that carries them.
struct CoordinateBatch {
    const surface::Config* base = nullptr;
    std::size_t element = 0;
    const std::vector<int>* states = nullptr;
};

/// Scores candidate `state_index` of a coordinate sweep. Same rng and
/// scratch contracts as BatchScoreFn.
using CoordinateScoreFn = std::function<double(
    const CoordinateBatch&, std::size_t state_index, util::Rng&,
    EvalScratch&)>;

/// PRESS_DELTA environment toggle for the incremental coordinate-delta
/// path: disabled by "0", "off" or "false" (case-insensitive), enabled
/// otherwise (the default). Delta-on caches the sweep's base response per
/// coordinate; delta-off recomputes it per candidate — identical bits
/// either way, so this only trades memory traffic for recompute.
bool coordinate_delta_enabled();

/// PRESS_PIN environment toggle for worker-thread CPU affinity: enabled
/// unless unset, empty, "0", "off" or "false" (case-insensitive). Linux
/// only; elsewhere the toggle parses but pinning is a no-op.
bool thread_pinning_enabled();

class BatchEvaluator {
public:
    /// `threads == 0` resolves via resolve_threads(). Workers are created
    /// once and reused across batches.
    BatchEvaluator(BatchScoreFn score, std::uint64_t seed,
                   std::size_t threads = 0);
    ~BatchEvaluator();

    BatchEvaluator(const BatchEvaluator&) = delete;
    BatchEvaluator& operator=(const BatchEvaluator&) = delete;

    /// Optional coordinate-sweep score callback; required before the
    /// first evaluate_coordinate() call.
    void set_coordinate_score(CoordinateScoreFn fn);

    /// Scores every candidate; results[i] is batch[i]'s score. Rethrows
    /// the first exception any worker hit (after the batch drains).
    std::vector<double> evaluate(
        const std::vector<surface::Config>& batch);

    /// Scores every state of a coordinate sweep; results[i] scores
    /// base-with-element=states[i]. Candidates consume global evaluation
    /// indices exactly like evaluate() candidates do, so a search that
    /// mixes both entry points sees one continuous, scheduling-
    /// independent rng stream.
    std::vector<double> evaluate_coordinate(const CoordinateBatch& batch);

    std::size_t num_threads() const { return workers_.size(); }

    /// One worker's accumulated accounting. Tasks is how many candidates
    /// the worker scored; shards how many contiguous claims carried them;
    /// busy_s the wall time spent inside the score callback; idle_s the
    /// wall time spent parked on the work condvar (between batches and
    /// while a batch it could not help with drains).
    struct WorkerStats {
        std::uint64_t tasks = 0;
        std::uint64_t shards = 0;
        double busy_s = 0.0;
        double idle_s = 0.0;
    };

    /// Snapshot of every worker's accounting (index = worker id).
    std::vector<WorkerStats> worker_stats() const;

    /// Scratch-arena accounting summed over workers. Only meaningful
    /// between batches (workers mutate their arenas lock-free while
    /// scoring); grow_events flat across a sweep == the zero-allocation
    /// contract holds.
    struct ArenaStats {
        std::uint64_t grow_events = 0;
        std::size_t bytes_reserved = 0;
    };
    ArenaStats arena_stats() const;

    /// Folds the per-worker accounting into the global metrics registry as
    /// control.batch.worker.<i>.{tasks,busy_s,idle_s} gauges plus
    /// control.batch.threads and control.batch.arena.{grow_events,
    /// bytes_reserved} gauges. Cheap but not free (registry lookups);
    /// callers invoke it once per run/search, not per batch. No-op when
    /// telemetry is disabled.
    void publish_worker_stats() const;

    /// Candidates scored so far — the global index assigned to the next
    /// candidate, which anchors its rng stream.
    std::uint64_t evaluated() const { return base_index_; }

    /// Thread-count policy: `requested` if nonzero, else PRESS_THREADS
    /// from the environment (clamped to [1, 64]), else the hardware
    /// concurrency (at least 1).
    static std::size_t resolve_threads(std::size_t requested);

    /// The per-candidate seed for global evaluation index `index` under
    /// evaluator seed `seed` (splitmix64 mix; exposed for tests).
    static std::uint64_t candidate_seed(std::uint64_t seed,
                                        std::uint64_t index);

    /// Declares how much work one task carries, measured in (candidate x
    /// link) tiles: a single-link sweep has weight 1 (the default), a
    /// multi-link eval over N stacked links weight N. Sharding then
    /// granulates in tiles instead of candidates (see the weighted
    /// shard_size_for overload), so a 32-link batch is claimed in small
    /// enough shards to balance. Scheduling only — never affects bits.
    void set_task_weight(std::size_t tiles_per_task);
    std::size_t task_weight() const { return task_weight_; }

    /// Shard-size policy: about kShardsPerWorker shards per worker, floor
    /// one candidate. Exposed for tests; purely a scheduling knob — the
    /// result bits never depend on it.
    static std::size_t shard_size_for(std::size_t tasks,
                                      std::size_t workers);

    /// Weighted policy: the same target shard count, but a shard is also
    /// capped so one claim never exceeds ~kMaxShardTiles (candidate x
    /// link) tiles of work. Heavy multi-link tasks therefore shard finer
    /// than their candidate count alone suggests, keeping the tail of a
    /// batch balanced across workers.
    static std::size_t shard_size_for(std::size_t tasks, std::size_t workers,
                                      std::size_t task_weight);

private:
    void worker_loop(std::size_t index);
    /// Shared drive-a-batch protocol: publishes `num_tasks` tasks sourced
    /// from batch_/coord_, waits for the drain, rethrows worker errors.
    void run_tasks(std::size_t num_tasks, std::vector<double>& results);

    BatchScoreFn score_;
    CoordinateScoreFn coord_score_;
    std::uint64_t seed_;
    std::uint64_t base_index_ = 0;
    std::size_t task_weight_ = 1;  ///< (candidate x link) tiles per task

    mutable std::mutex mutex_;
    std::condition_variable work_cv_;   ///< workers wait for a batch
    std::condition_variable done_cv_;   ///< caller waits for completion
    /// Exactly one of batch_/coord_ is set while a batch is in flight.
    const std::vector<surface::Config>* batch_ = nullptr;
    const CoordinateBatch* coord_ = nullptr;
    std::vector<double>* results_ = nullptr;
    std::size_t num_tasks_ = 0;  ///< task count of the in-flight batch
    /// The caller's "control.batch.evaluate" span for the current batch;
    /// workers adopt it so their spans join the caller's causal tree.
    obs::TraceContext batch_ctx_;
    std::size_t next_ = 0;        ///< next candidate index to claim
    std::size_t shard_size_ = 1;  ///< claim granularity of this batch
    std::size_t remaining_ = 0;   ///< candidates not yet finished
    std::exception_ptr first_error_;
    bool shutdown_ = false;
    /// Guarded by mutex_: workers only touch their slot while holding the
    /// lock (after a wait returns or between tasks), so no extra atomics
    /// are needed for TSan-clean reads through worker_stats().
    std::vector<WorkerStats> stats_;
    /// One arena per worker, stable addresses for the pool's lifetime;
    /// scratch_[i] is touched only by worker i (lock-free while scoring).
    std::vector<std::unique_ptr<EvalScratch>> scratch_;

    std::vector<std::thread> workers_;
};

}  // namespace press::control
