// Control-plane transport: a lossy byte channel, the array-side agent, and
// a reliable controller-side session.
//
// The paper leaves the control channel open ("low-frequency, low-rate
// bands", ultrasound, or wires) but any realization is narrowband and
// noisy, so the protocol must survive corruption and loss. This module
// simulates exactly that: LossyChannel flips bits and drops frames with
// configured probabilities; ArrayAgent is the firmware an element cluster
// runs (decode -> validate -> apply -> ack, with duplicate suppression);
// ReliableSession is the controller side (sequence numbers, retransmission
// with a retry limit, statistics).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "control/message.hpp"
#include "press/array.hpp"
#include "util/rng.hpp"

namespace press::control {

/// A simulated noisy control channel.
class LossyChannel {
public:
    /// `bit_error_rate` flips each transported bit independently;
    /// `drop_rate` loses whole frames (e.g. preamble miss).
    LossyChannel(double bit_error_rate, double drop_rate, util::Rng rng);

    /// Transports one frame; nullopt when the frame is dropped.
    std::optional<std::vector<std::uint8_t>> transmit(
        const std::vector<std::uint8_t>& frame);

    /// Frames transported (including corrupted ones).
    std::size_t frames_carried() const { return frames_carried_; }
    std::size_t frames_dropped() const { return frames_dropped_; }
    std::size_t bits_flipped() const { return bits_flipped_; }

private:
    double bit_error_rate_;
    double drop_rate_;
    util::Rng rng_;
    std::size_t frames_carried_ = 0;
    std::size_t frames_dropped_ = 0;
    std::size_t bits_flipped_ = 0;
};

/// The array-side protocol endpoint ("element cluster firmware"): decodes
/// frames, rejects corruption via the CRC, applies valid SetConfig
/// messages to its array, suppresses duplicates by sequence number, and
/// produces acknowledgment frames.
class ArrayAgent {
public:
    /// The agent controls `array` (not owned; must outlive the agent).
    ArrayAgent(surface::Array& array, std::uint16_t array_id);

    /// Handles one received frame. Returns the encoded response frame
    /// (SetConfigAck) for valid SetConfig messages addressed to this
    /// array; nullopt for undecodable frames or foreign array ids.
    std::optional<std::vector<std::uint8_t>> handle(
        const std::vector<std::uint8_t>& frame);

    /// Statistics for tests and monitoring.
    std::size_t applied() const { return applied_; }
    std::size_t duplicates() const { return duplicates_; }
    std::size_t rejected() const { return rejected_; }

private:
    surface::Array& array_;
    std::uint16_t array_id_;
    std::optional<std::uint32_t> last_seq_;
    std::size_t applied_ = 0;
    std::size_t duplicates_ = 0;
    std::size_t rejected_ = 0;
};

/// Controller-side reliable delivery of configurations.
class ReliableSession {
public:
    /// Outcome counters for one session.
    struct Stats {
        std::size_t attempts = 0;       ///< frames sent (incl. retries)
        std::size_t acked = 0;          ///< configs confirmed
        std::size_t gave_up = 0;        ///< configs abandoned after retries
        std::size_t bad_responses = 0;  ///< undecodable acks
    };

    /// `downlink`/`uplink` model the two directions of the control
    /// channel; `max_retries` bounds retransmissions per configuration.
    ReliableSession(ArrayAgent& agent, LossyChannel downlink,
                    LossyChannel uplink, int max_retries = 4);

    /// Reliably applies `config` to array `array_id`: encode, send,
    /// await ack, retransmit on loss/corruption. Returns true when acked.
    bool apply(std::uint16_t array_id, const surface::Config& config);

    const Stats& stats() const { return stats_; }

private:
    ArrayAgent& agent_;
    LossyChannel downlink_;
    LossyChannel uplink_;
    int max_retries_;
    std::uint32_t next_seq_ = 1;
    Stats stats_;
};

}  // namespace press::control
