// Control-plane transport: a lossy byte channel, the array-side agent, and
// a reliable controller-side session.
//
// The paper leaves the control channel open ("low-frequency, low-rate
// bands", ultrasound, or wires) but any realization is narrowband and
// noisy, so the protocol must survive corruption and loss. This module
// simulates exactly that: LossyChannel flips bits and drops frames with
// configured probabilities; ArrayAgent is the firmware an element cluster
// runs (decode -> validate -> apply -> ack, with duplicate and stale-frame
// suppression); ReliableSession is the controller side (sequence numbers,
// retransmission with exponential backoff and jitter, a retry limit,
// statistics). A session can price every attempt through a
// ControlPlaneModel onto a shared SimClock, so retries on a bad channel
// consume real coherence-time budget instead of being free.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "control/message.hpp"
#include "control/plane.hpp"
#include "press/array.hpp"
#include "util/rng.hpp"

namespace press::control {

/// A simulated noisy control channel.
class LossyChannel {
public:
    /// `bit_error_rate` flips each transported bit independently;
    /// `drop_rate` loses whole frames (e.g. preamble miss).
    LossyChannel(double bit_error_rate, double drop_rate, util::Rng rng);

    /// Transports one frame; nullopt when the frame is dropped.
    std::optional<std::vector<std::uint8_t>> transmit(
        const std::vector<std::uint8_t>& frame);

    /// Frames transported (including corrupted ones).
    std::size_t frames_carried() const { return frames_carried_; }
    std::size_t frames_dropped() const { return frames_dropped_; }
    std::size_t bits_flipped() const { return bits_flipped_; }

private:
    double bit_error_rate_;
    double drop_rate_;
    util::Rng rng_;
    std::size_t frames_carried_ = 0;
    std::size_t frames_dropped_ = 0;
    std::size_t bits_flipped_ = 0;
};

/// The array-side protocol endpoint ("element cluster firmware"): decodes
/// frames, rejects corruption via the CRC, applies valid SetConfig
/// messages to its array, suppresses duplicates and reordered stale
/// frames by sequence number, and produces acknowledgment frames.
class ArrayAgent {
public:
    /// The agent controls `array` (not owned; must outlive the agent).
    ArrayAgent(surface::Array& array, std::uint16_t array_id);

    /// Handles one received frame. Returns the encoded response frame
    /// (SetConfigAck) for valid SetConfig messages addressed to this
    /// array; nullopt for undecodable frames or foreign array ids.
    std::optional<std::vector<std::uint8_t>> handle(
        const std::vector<std::uint8_t>& frame);

    /// Statistics for tests and monitoring.
    std::size_t applied() const { return applied_; }
    std::size_t duplicates() const { return duplicates_; }
    std::size_t stale() const { return stale_; }
    std::size_t rejected() const { return rejected_; }

private:
    surface::Array& array_;
    std::uint16_t array_id_;
    /// Highest sequence number ever applied. A frame at or below it is a
    /// retransmission (== highest) or a delayed, reordered older frame
    /// (< highest); neither may re-touch the switches — remembering only
    /// the single last value would let an old frame re-apply a stale
    /// configuration.
    std::optional<std::uint32_t> highest_seq_;
    std::size_t applied_ = 0;
    std::size_t duplicates_ = 0;
    std::size_t stale_ = 0;
    std::size_t rejected_ = 0;
};

/// Retransmission backoff: exponential with jitter, capped at `max_s`.
///
/// Two jitter disciplines are available. kFull scales the nominal
/// exponential wait by a uniform factor in [1-j, 1+j] — retries stay
/// centered on the exponential schedule, so N clients that fail together
/// still cluster their retries around the same instants. kDecorrelated is
/// the AWS-style decorrelated jitter: each wait is drawn uniformly from
/// [base_s, 3 * previous_wait] (capped), which spreads simultaneous
/// clients across the whole backoff window and breaks retry lockstep on a
/// shared control channel.
struct BackoffPolicy {
    enum class Jitter : std::uint8_t {
        kFull,          ///< nominal exponential x uniform [1-j, 1+j]
        kDecorrelated,  ///< uniform in [base_s, 3 x previous wait]
    };

    double base_s = 2e-3;
    double factor = 2.0;
    double max_s = 50e-3;  ///< cap on every wait, whichever discipline
    double jitter_frac = 0.25;  ///< kFull: uniform in [1-j, 1+j] per wait
    Jitter jitter = Jitter::kFull;

    /// The deterministic (jitter-free) wait before retry `retry` (1-based).
    double nominal_wait_s(int retry) const;
};

/// Controller-side reliable delivery of configurations.
class ReliableSession {
public:
    /// Outcome counters for one session.
    struct Stats {
        std::size_t attempts = 0;       ///< frames sent (incl. retries)
        std::size_t acked = 0;          ///< configs confirmed
        std::size_t gave_up = 0;        ///< configs abandoned after retries
        std::size_t bad_responses = 0;  ///< undecodable acks
        double backoff_s = 0.0;         ///< total time slept between retries
        /// Total |actual - nominal| wait: how far jitter moved this
        /// session off the deterministic exponential schedule. Also
        /// exported as the control.transport.retry_jitter_s gauge.
        double retry_jitter_s = 0.0;
    };

    /// `downlink`/`uplink` model the two directions of the control
    /// channel; `max_retries` bounds retransmissions per configuration.
    ReliableSession(ArrayAgent& agent, LossyChannel downlink,
                    LossyChannel uplink, int max_retries = 4);

    /// Prices every delivery attempt (frame + ack transfer, switch settle
    /// on success, backoff waits) through `model` onto `clock`. Both must
    /// outlive the session. Pass the controller's mutable_clock() so a
    /// lossy channel visibly shrinks the trials a coherence window
    /// affords.
    void set_timing(const ControlPlaneModel* model, SimClock* clock);

    /// Overrides the retransmission backoff policy; `rng` drives jitter.
    void set_backoff(const BackoffPolicy& policy, util::Rng rng);

    /// Reliably applies `config` to array `array_id`: encode, send,
    /// await ack, retransmit with backoff on loss/corruption. Returns
    /// true when acked.
    bool apply(std::uint16_t array_id, const surface::Config& config);

    const Stats& stats() const { return stats_; }

private:
    void advance_clock(double seconds);

    ArrayAgent& agent_;
    LossyChannel downlink_;
    LossyChannel uplink_;
    int max_retries_;
    BackoffPolicy backoff_;
    util::Rng backoff_rng_;
    const ControlPlaneModel* model_ = nullptr;  // not owned
    SimClock* clock_ = nullptr;                 // not owned
    std::uint32_t next_seq_ = 1;
    Stats stats_;
};

}  // namespace press::control
