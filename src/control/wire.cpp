#include "control/wire.hpp"

#include "obs/metrics.hpp"

namespace press::control {

void ByteWriter::u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xFF));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void ByteWriter::u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void ByteWriter::bytes(const std::uint8_t* data, std::size_t n) {
    buf_.insert(buf_.end(), data, data + n);
}

void ByteReader::need(std::size_t n) const {
    if (remaining() < n) throw ProtocolError("truncated control message");
}

std::uint8_t ByteReader::u8() {
    need(1);
    return buf_[pos_++];
}

std::uint16_t ByteReader::u16() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        buf_[pos_] | (static_cast<std::uint16_t>(buf_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
}

std::uint32_t ByteReader::u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(buf_[pos_ + static_cast<std::size_t>(i)])
             << (8 * i);
    pos_ += 4;
    return v;
}

std::uint64_t ByteReader::u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 buf_[pos_ + static_cast<std::size_t>(i)])
             << (8 * i);
    pos_ += 8;
    return v;
}

std::uint16_t crc16(const std::uint8_t* data, std::size_t n) {
    std::uint16_t crc = 0xFFFF;
    for (std::size_t i = 0; i < n; ++i) {
        crc ^= static_cast<std::uint16_t>(data[i]) << 8;
        for (int b = 0; b < 8; ++b) {
            if (crc & 0x8000)
                crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
            else
                crc = static_cast<std::uint16_t>(crc << 1);
        }
    }
    return crc;
}

std::uint16_t crc16(const std::vector<std::uint8_t>& data) {
    return crc16(data.data(), data.size());
}

bool frame_crc_ok(const std::vector<std::uint8_t>& frame) {
    if (frame.size() < 12) return false;
    const std::uint16_t expect = crc16(frame.data(), frame.size() - 2);
    const std::uint16_t got = static_cast<std::uint16_t>(
        frame[frame.size() - 2] |
        (static_cast<std::uint16_t>(frame[frame.size() - 1]) << 8));
    return expect == got;
}

void note_corrupt_frame() {
    if (!obs::enabled()) return;
    obs::MetricsRegistry::global().counter("wire.frames_corrupt").add();
}

}  // namespace press::control
