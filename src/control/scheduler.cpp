#include "control/scheduler.hpp"

#include <algorithm>

#include "control/message.hpp"
#include "util/contracts.hpp"

namespace press::control {

const char* to_string(MultiLinkStrategy strategy) {
    switch (strategy) {
        case MultiLinkStrategy::kStaticOff: return "static-off";
        case MultiLinkStrategy::kJoint: return "joint";
        case MultiLinkStrategy::kPerLink: return "per-link";
    }
    return "?";
}

MultiLinkScheduler::MultiLinkScheduler(ControlPlaneModel plane,
                                       double slot_duration_s)
    : plane_(plane), slot_duration_s_(slot_duration_s) {
    PRESS_EXPECTS(slot_duration_s > 0.0, "slot duration must be positive");
}

double MultiLinkScheduler::reconfiguration_time_s(
    const surface::ConfigSpace& space) const {
    SetConfig probe;
    probe.config.assign(space.num_elements(), 0);
    SetConfigAck ack;
    return plane_.transfer_time_s(encoded_size(Message{probe})) +
           plane_.transfer_time_s(encoded_size(Message{ack})) +
           plane_.element_switch_s;
}

MultiLinkOutcome MultiLinkScheduler::run(MultiLinkStrategy strategy,
                                         const surface::ConfigSpace& space,
                                         const LinkEval& eval,
                                         std::size_t num_links,
                                         const Searcher& searcher,
                                         std::size_t search_budget,
                                         util::Rng& rng) const {
    PRESS_EXPECTS(num_links >= 1, "need at least one link");
    PRESS_EXPECTS(search_budget >= 1, "need a positive search budget");

    MultiLinkOutcome outcome;
    outcome.configs.assign(num_links, surface::Config());

    switch (strategy) {
        case MultiLinkStrategy::kStaticOff: {
            // Every element in its last state (the absorptive load on the
            // SP4T prototype element).
            surface::Config off(space.num_elements());
            for (std::size_t e = 0; e < space.num_elements(); ++e)
                off[e] = space.radices()[e] - 1;
            for (std::size_t l = 0; l < num_links; ++l) {
                outcome.configs[l] = off;
                outcome.mean_raw_score += eval(l, off) / num_links;
            }
            outcome.airtime_fraction = 1.0;
            break;
        }
        case MultiLinkStrategy::kJoint: {
            const EvalFn joint_eval = [&](const surface::Config& c) {
                double acc = 0.0;
                for (std::size_t l = 0; l < num_links; ++l)
                    acc += eval(l, c) / num_links;
                return acc;
            };
            const SearchResult result =
                searcher.search(space, joint_eval, search_budget, rng);
            outcome.evaluations = result.evaluations;
            for (std::size_t l = 0; l < num_links; ++l) {
                outcome.configs[l] = result.best_config;
                outcome.mean_raw_score +=
                    eval(l, result.best_config) / num_links;
            }
            // Configured once; slot boundaries need no switching.
            outcome.airtime_fraction = 1.0;
            break;
        }
        case MultiLinkStrategy::kPerLink: {
            for (std::size_t l = 0; l < num_links; ++l) {
                const EvalFn link_eval = [&](const surface::Config& c) {
                    return eval(l, c);
                };
                const SearchResult result =
                    searcher.search(space, link_eval, search_budget, rng);
                outcome.evaluations += result.evaluations;
                outcome.configs[l] = result.best_config;
                outcome.mean_raw_score +=
                    eval(l, result.best_config) / num_links;
            }
            // Every slot boundary pays a reconfiguration.
            const double overhead = reconfiguration_time_s(space);
            outcome.airtime_fraction =
                std::max(0.0, 1.0 - overhead / slot_duration_s_);
            break;
        }
    }
    outcome.mean_effective_score =
        outcome.mean_raw_score * outcome.airtime_fraction;
    return outcome;
}

}  // namespace press::control
