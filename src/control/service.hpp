// The control-plane service: a deadline-aware request broker between
// concurrent clients and one optimization engine.
//
// Sections 2 and 5 of the paper put the environment's controller at the
// center of a smart space: many applications (links, occupants, an
// operator console) share one programmable surface whose optimize loop
// must finish inside the channel coherence time. That makes the
// controller a *service* with all the classic service problems — a
// bounded queue, deadlines, priorities, overload — not a library call.
// control::Service is that broker:
//
//   - Sessions multiplex clients over the existing wire protocol
//     (message.hpp types 5-13). Every admitted request terminates in
//     exactly one reply frame — OptimizeReply, MutateReply, or an
//     explicit Reject. The service never drops admitted work silently;
//     the Stats accounting equation
//         admitted == served + expired + evicted + dropped_closed
//                     + queue_depth()
//     holds at every quiescent point and the soak harness asserts it.
//   - The request queue is bounded and priority-ordered. When it
//     saturates, a newcomer that outranks the lowest-priority resident
//     evicts it (the victim gets Reject(kQueueFull)); otherwise the
//     newcomer is refused. Above a configurable occupancy, requests
//     below the shed floor are refused outright (kShed) — load shedding
//     before the queue is full, so high-priority traffic keeps headroom.
//   - Deadlines are priced on the shared SimClock: a request whose
//     deadline passes while it waits is answered Reject(kExpired),
//     never run late. Queue-wait and compute time are reported
//     separately in every OptimizeReply (and in SearchResult), so tail
//     latency is attributable.
//   - Epochs give snapshot consistency on the scene's revision stamps:
//     an optimize cycle runs against the scene frozen at its cycle
//     start; MutateRequests queue and land only at the epoch boundary
//     after the cycle completes, bumping epoch(). A reply's epoch field
//     names the snapshot it saw.
//   - Slow readers are bounded by a per-session outbox: past the
//     watermark new work is refused with Reject(kBackpressure); a full
//     outbox closes the session (its queued requests are accounted as
//     dropped_closed — visible, not silent).
//   - A watchdog guards each cycle: when the engine reports a stuck or
//     failed cycle (sim time over watchdog_cycle_s, or a final apply
//     that never landed), the service dumps the flight recorder,
//     reverts the engine to the last known-good configuration, answers
//     the request with a degraded status, and keeps serving.
//
// The service is deliberately single-threaded and deterministic: submit()
// ingests frames, run_cycle() executes at most one request and closes the
// epoch. pressd (tools/pressd.cpp) wraps it in a socket event loop;
// press_loadgen drives it in-process (through fault::ChaosLink) for the
// chaos soak. The engine is injected as a ServiceEngine callback bundle —
// core::make_service_engine (core/serve.hpp) adapts a core::System —
// keeping this layer free of any dependency on core.
#pragma once

#include <cstddef>
#include <cstdint>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "control/message.hpp"
#include "control/plane.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"

namespace press::control {

/// What one executed optimize cycle produced, as the service sees it.
struct EngineResult {
    bool ok = false;          ///< search ran and the best config landed
    double best_score = 0.0;  ///< objective score of the applied config
    std::uint32_t evaluations = 0;
    double sim_elapsed_s = 0.0;  ///< simulated seconds the cycle consumed
    double compute_s = 0.0;      ///< wall seconds the search consumed
};

/// The injected engine: everything the service needs from the layer that
/// owns the scene (core::System), expressed as callbacks so control does
/// not depend on core — the same decoupling Controller uses for
/// ApplyFn/MeasureFn. Build one with core::make_service_engine().
struct ServiceEngine {
    /// Runs one budgeted optimize cycle and leaves the best config
    /// applied. `budget_s` is already clamped by the service.
    std::function<EngineResult(const OptimizeRequest&, double budget_s)>
        optimize;
    /// Applies one element mutation; false if it could not land.
    std::function<bool(const MutateRequest&)> mutate;
    /// Request validation against the live scene (array/link/element
    /// bounds, known searcher/objective selectors).
    std::function<bool(const OptimizeRequest&)> validate;
    std::function<bool(const MutateRequest&)> validate_mutate;
    /// Records the current configuration as known-good (called after
    /// every healthy cycle) / restores the last known-good (called by
    /// the watchdog on a stuck cycle).
    std::function<void()> checkpoint;
    std::function<bool()> revert;
    /// Revision stamp of the scene (environment + array structure);
    /// unchanged across an optimize cycle — the frozen-scene guarantee
    /// tests assert on.
    std::function<std::uint64_t()> scene_revision;
};

struct ServiceOptions {
    std::size_t queue_capacity = 64;   ///< bounded request queue
    std::size_t outbox_capacity = 64;  ///< per-session reply frames
    /// Outbox depth at which new requests from that session are refused
    /// with kBackpressure (0 = capacity * 3 / 4).
    std::size_t outbox_watermark = 0;
    /// Deadline assigned when a request carries deadline_us == 0,
    /// measured on the SimClock from arrival.
    double default_deadline_s = 0.25;
    /// Queue occupancy (fraction of capacity) above which requests with
    /// priority below shed_priority_floor are refused with kShed.
    double shed_occupancy = 0.75;
    std::uint8_t shed_priority_floor = 64;
    double default_budget_s = 0.02;  ///< when budget_us == 0
    double max_budget_s = 0.1;       ///< hard clamp on requested budgets
    /// A cycle whose simulated time exceeds this trips the watchdog.
    double watchdog_cycle_s = 1.0;
    /// Name passed to obs::write_flight on a watchdog trip.
    std::string flight_dump_name = "service_watchdog";
    /// Arm the flight recorder at construction (so a trip always has a
    /// window to dump).
    bool arm_flight = true;
    /// Fault injection: every Nth executed request is treated as a stuck
    /// cycle even if healthy (0 = off). The watchdog path — flight dump,
    /// revert, degraded reply — runs for real; tests and the chaos soak
    /// use it to prove the service survives its own recovery.
    std::size_t inject_stall_every = 0;
    /// Introspection plane: sampler cadence (on the service SimClock)
    /// and ring sizing. telemetry.interval_s <= 0 turns the sampler off,
    /// which also refuses Subscribe with kBadRequest.
    obs::TimeseriesOptions telemetry;
    /// Rolling SLO window/targets; derived figures export as
    /// service.slo.* gauges and ride every telemetry frame.
    obs::SloOptions slo;
    /// Burn rate at which the service treats the deadline-miss rate as
    /// an incident: it dumps the flight recorder and taps subscribers
    /// (FlightTap, reason kSloBurn). 0 disables the alarm.
    double slo_burn_alarm = 10.0;
    /// The alarm needs at least this many in-window requests (a single
    /// early miss in an empty window is 100% miss rate, not an incident).
    std::uint64_t slo_alarm_min_requests = 8;
    double slo_alarm_cooldown_s = 5.0;
    std::string slo_flight_dump_name = "service_slo_burn";
    /// Floor on a Subscribe's requested cadence.
    double min_subscribe_interval_s = 0.001;
};

/// Deterministic single-threaded service core. Not thread-safe: pressd
/// serializes socket events into it; tests call it directly.
class Service {
public:
    using SessionId = std::uint16_t;

    Service(ServiceEngine engine, ServiceOptions options = {});

    /// Registers a client session; the client should follow with a Hello
    /// frame (submit) to receive its HelloAck and tune its priority cap.
    SessionId connect();

    /// Closes a session. Its queued requests are answered by accounting
    /// (dropped_closed), not by frames — there is no reader left.
    void disconnect(SessionId id);

    bool session_open(SessionId id) const;

    /// Ingests one wire frame from a session. Decode failures are
    /// counted (service.frames_bad + wire.frames_corrupt) and dropped —
    /// an unparseable frame names no request, so no reply is owed.
    /// Admission outcomes (HelloAck, Reject, queued) are immediate;
    /// execution happens in run_cycle().
    void submit(SessionId id, const std::vector<std::uint8_t>& frame);

    /// Pops up to `max_frames` outbound frames for a session, in order.
    /// A client that never calls this is a slow reader: its outbox fills,
    /// backpressure kicks in, and eventually the session is closed.
    std::vector<std::vector<std::uint8_t>> take_outgoing(
        SessionId id, std::size_t max_frames = SIZE_MAX);

    /// Front frame of a session's outbox without removing it (nullptr if
    /// none). Paired with pop_outgoing so a transport can attempt a send
    /// and, on a full kernel buffer, leave the frame queued — the outbox,
    /// not the transport, is the single buffering point the backpressure
    /// accounting watches.
    const std::vector<std::uint8_t>* peek_outgoing(SessionId id) const;
    /// Drops the front frame (after the caller delivered it).
    void pop_outgoing(SessionId id);

    std::size_t outbox_depth(SessionId id) const;

    /// Executes at most one queued request, then closes the epoch:
    /// pending mutations land, epoch() bumps, the engine checkpoints.
    /// Returns true if any work was done (request executed, expiry
    /// processed, or mutations applied).
    bool run_cycle();

    /// Drains the queue and pending mutations; returns cycles run.
    std::size_t run_until_idle();

    /// Advances the service SimClock (pressd maps wall time onto it;
    /// tests use it to expire deadlines).
    void advance_clock(double seconds) { clock_.advance(seconds); }
    const SimClock& clock() const { return clock_; }

    std::uint64_t epoch() const { return epoch_; }
    std::size_t queue_depth() const { return queue_.size(); }
    std::size_t pending_mutations() const { return mutations_.size(); }

    struct Stats {
        std::uint64_t frames_in = 0;     ///< frames submitted
        std::uint64_t frames_bad = 0;    ///< undecodable, dropped
        std::uint64_t admitted = 0;      ///< optimize requests enqueued
        std::uint64_t served = 0;        ///< executed, reply sent
        std::uint64_t expired = 0;       ///< deadline passed in queue
        std::uint64_t evicted = 0;       ///< displaced by higher priority
        std::uint64_t dropped_closed = 0;///< queued when session closed
        std::uint64_t shed = 0;          ///< refused: load shedding
        std::uint64_t duplicates = 0;    ///< refused: seq already seen
        std::uint64_t bad_requests = 0;  ///< refused: validation failed
        std::uint64_t backpressure = 0;  ///< refused: slow reader
        std::uint64_t queue_full = 0;    ///< refused: full, outranked
        std::uint64_t rejected = 0;      ///< total Reject frames sent
        std::uint64_t mutations_applied = 0;
        std::uint64_t mutations_rejected = 0;
        std::uint64_t sessions_dropped_slow = 0;
        std::uint64_t watchdog_trips = 0;
        std::uint64_t flight_dumps = 0;  ///< watchdog/SLO dumps written
        std::uint64_t cycles = 0;        ///< run_cycle calls doing work
        // Introspection plane. Telemetry pushes are fire-and-forget by
        // contract, but never silently: every frame that could not be
        // delivered is counted here, the push-frame side of the
        // no-silent-drops ledger.
        std::uint64_t subscriptions = 0;      ///< Subscribe frames accepted
        std::uint64_t telemetry_samples = 0;  ///< sampler windows closed
        std::uint64_t telemetry_frames_sent = 0;
        std::uint64_t telemetry_frames_dropped = 0;  ///< drop-oldest hits
        std::uint64_t telemetry_frames_truncated = 0;
        std::uint64_t flight_taps = 0;  ///< FlightTap frames delivered
        std::uint64_t slo_alarms = 0;   ///< burn-rate alarm trips
    };
    const Stats& stats() const { return stats_; }
    const ServiceOptions& options() const { return options_; }

    /// The introspection sampler (rings of counter deltas, gauge samples,
    /// histogram window digests, exemplars). Read-only from outside; the
    /// service owns the sampling cadence.
    const obs::Timeseries& timeseries() const { return timeseries_; }
    /// Monotonic snapshot revision (StatusReply::revision).
    std::uint64_t telemetry_revision() const { return timeseries_.revision(); }
    /// Service-clock seconds since construction (StatusReply::uptime_s).
    double uptime_s() const { return clock_.now_s() - start_sim_s_; }
    /// Rolling SLO window over executed/expired requests.
    obs::SloTracker& slo() { return slo_; }

    /// The no-silent-drops ledger: every admitted request is either
    /// still queued or accounted in exactly one terminal counter.
    bool accounting_balanced() const {
        return stats_.admitted == stats_.served + stats_.expired +
                                      stats_.evicted + stats_.dropped_closed +
                                      queue_.size();
    }

private:
    /// One outbound frame. Telemetry pushes are tagged so backpressure
    /// can apply a different policy to them: replies are never dropped
    /// (a full outbox closes the session instead), telemetry frames are
    /// drop-oldest — stale windows make way for fresh ones, counted in
    /// service.telemetry.frames_dropped.
    struct OutFrame {
        std::vector<std::uint8_t> bytes;
        bool telemetry = false;
    };

    struct Session {
        std::uint8_t priority_cap = 255;
        bool hello_seen = false;
        std::deque<OutFrame> outbox;
        /// Recently seen request seqs (dedupe window for chaos-duplicated
        /// or client-retransmitted frames).
        std::deque<std::uint32_t> seen_seqs;
        // Telemetry subscription (Subscribe frame; interval_us == 0
        // clears it).
        bool subscribed = false;
        std::string sub_prefix;
        double sub_interval_s = 0.0;
        std::uint8_t sub_flags = 0;
        double next_push_s = 0.0;  ///< SimClock time of the next push
        std::uint32_t sub_seq = 0; ///< seq counter for pushed frames
    };

    struct Pending {
        SessionId session = 0;
        std::uint32_t seq = 0;
        OptimizeRequest request;
        std::uint8_t priority = 0;  ///< clamped by the session's cap
        double deadline_sim_s = 0.0;
        std::uint64_t admit_order = 0;
        std::chrono::steady_clock::time_point arrival_wall;
    };

    void handle(SessionId id, Session& session, const Decoded& decoded);
    void admit_optimize(SessionId id, Session& session,
                        const Decoded& decoded, const OptimizeRequest& req);
    void reject(SessionId id, std::uint32_t seq, RejectReason reason);
    /// Appends a frame to a session's outbox; closes the session (slow
    /// reader) when the outbox is full. Safe to call for closed ids.
    void push_frame(SessionId id, std::vector<std::uint8_t> frame);
    void handle_subscribe(SessionId id, Session& session,
                          const Decoded& decoded, const Subscribe& sub);
    /// Samples the registry on cadence and pushes due telemetry frames.
    /// Returns true if a sample was taken or any frame pushed.
    bool pump_telemetry();
    /// Encodes and enqueues one telemetry push for a subscribed session,
    /// applying drop-oldest under backpressure. Returns false (and
    /// counts the drop) when the frame could not be delivered.
    bool push_telemetry(SessionId id, Session& session, const Message& msg);
    /// Builds the TelemetryFrame payload for one subscription: the
    /// sampler's latest window plus live service state (queue depth,
    /// per-session outbox depths, SLO figures).
    TelemetryFrame make_telemetry_frame(const Session& session);
    /// Fires FlightTap at every subscriber that opted in.
    void tap_subscribers(FlightTapReason reason, const std::string& path);
    /// Trips the SLO burn alarm (flight dump + taps) when the windowed
    /// burn rate crosses options_.slo_burn_alarm.
    void check_slo_alarm();
    void publish_slo_gauges(double now_s);
    void drop_session(SessionId id, bool slow);
    bool seen_before(const Session& session, std::uint32_t seq) const;
    /// Enters a seq into the dedupe window — called only when the request
    /// is admitted, so a retransmit after a transient Reject (lost on the
    /// wire) is re-evaluated instead of answered kDuplicate.
    void record_seen(Session& session, std::uint32_t seq);
    /// Removes and returns the runnable request with the highest
    /// priority (ties: earliest admit), expiring stale entries along the
    /// way. Nullopt when the queue empties.
    bool pop_next(Pending& out);
    void execute(const Pending& pending);
    void close_epoch();
    std::size_t outbox_watermark() const;

    ServiceEngine engine_;
    ServiceOptions options_;
    SimClock clock_;
    std::map<SessionId, Session> sessions_;
    SessionId next_session_ = 1;
    std::vector<Pending> queue_;
    std::uint64_t next_admit_order_ = 0;
    /// Mutations fenced to the next epoch boundary.
    struct PendingMutation {
        SessionId session = 0;
        std::uint32_t seq = 0;
        MutateRequest request;
    };
    std::vector<PendingMutation> mutations_;
    std::uint64_t epoch_ = 1;
    std::uint64_t executed_ = 0;  ///< for inject_stall_every
    Stats stats_;
    // Introspection plane (declaration order matters: the ctor init list
    // builds timeseries_/slo_ from options_).
    obs::Timeseries timeseries_;
    obs::SloTracker slo_;
    double start_sim_s_ = 0.0;
    double next_sample_s_ = 0.0;
    double slo_alarm_ready_s_ = 0.0;  ///< cooldown gate
};

}  // namespace press::control
