#include "control/objective.hpp"

#include <algorithm>

#include "phy/rate.hpp"
#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace press::control {

namespace {
const std::vector<double>& link_snr(const Observation& obs,
                                    std::size_t link) {
    PRESS_EXPECTS(link < obs.link_snr_db.size(),
                  "observation lacks the requested link");
    PRESS_EXPECTS(!obs.link_snr_db[link].empty(), "empty SNR profile");
    return obs.link_snr_db[link];
}
}  // namespace

double MinSnrObjective::score(const Observation& obs) const {
    return util::min_value(link_snr(obs, link_));
}

double MeanSnrObjective::score(const Observation& obs) const {
    return util::mean(link_snr(obs, link_));
}

double ThroughputObjective::score(const Observation& obs) const {
    return phy::expected_throughput_mbps(link_snr(obs, link_));
}

WeightedBandObjective::WeightedBandObjective(std::vector<Term> terms,
                                             std::string label)
    : terms_(std::move(terms)), label_(std::move(label)) {
    PRESS_EXPECTS(!terms_.empty(), "objective needs at least one term");
    for (const Term& t : terms_)
        PRESS_EXPECTS(t.first_subcarrier < t.last_subcarrier,
                      "band must be non-empty");
}

double WeightedBandObjective::score(const Observation& obs) const {
    double total = 0.0;
    for (const Term& t : terms_) {
        const std::vector<double>& snr = link_snr(obs, t.link);
        PRESS_EXPECTS(t.last_subcarrier <= snr.size(),
                      "band exceeds the SNR profile");
        double acc = 0.0;
        for (std::size_t k = t.first_subcarrier; k < t.last_subcarrier; ++k)
            acc += snr[k];
        total += t.weight * acc /
                 static_cast<double>(t.last_subcarrier - t.first_subcarrier);
    }
    return total;
}

std::unique_ptr<Objective> make_harmonization_objective(
    std::size_t num_subcarriers, bool interference_links) {
    PRESS_EXPECTS(num_subcarriers >= 2, "need at least two subcarriers");
    const std::size_t half = num_subcarriers / 2;
    std::vector<WeightedBandObjective::Term> terms;
    // Communication bands: link 0 owns the low half, link 1 the high half.
    terms.push_back({0, 0, half, 1.0});
    terms.push_back({1, half, num_subcarriers, 1.0});
    if (interference_links) {
        // Interference channels, observed as links 2 (AP1 -> client 2) and
        // 3 (AP2 -> client 1), are penalized inside the band their victim
        // uses for communication.
        terms.push_back({2, half, num_subcarriers, -1.0});
        terms.push_back({3, 0, half, -1.0});
    }
    return std::make_unique<WeightedBandObjective>(std::move(terms),
                                                   "harmonization");
}

double ConditionNumberObjective::score(const Observation& obs) const {
    PRESS_EXPECTS(!obs.mimo_condition_db.empty(),
                  "observation lacks MIMO condition numbers");
    return -util::mean(obs.mimo_condition_db);
}

}  // namespace press::control
