#include "control/objective.hpp"

#include <algorithm>

#include "phy/rate.hpp"
#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace press::control {

namespace {
const std::vector<double>& link_snr(const Observation& obs,
                                    std::size_t link) {
    PRESS_EXPECTS(link < obs.link_snr_db.size(),
                  "observation lacks the requested link");
    PRESS_EXPECTS(!obs.link_snr_db[link].empty(), "empty SNR profile");
    return obs.link_snr_db[link];
}
}  // namespace

double MinSnrObjective::score(const Observation& obs) const {
    return util::min_value(link_snr(obs, link_));
}

double MeanSnrObjective::score(const Observation& obs) const {
    return util::mean(link_snr(obs, link_));
}

MaskedSnrObjective::MaskedSnrObjective(phy::RuMask mask,
                                       FusedSpec::Kind reduce,
                                       std::size_t link)
    : mask_(std::move(mask)), reduce_(reduce), link_(link) {
    PRESS_EXPECTS(reduce_ != FusedSpec::Kind::kNone,
                  "a masked objective must reduce to a scalar");
    PRESS_EXPECTS(mask_.num_active() > 0,
                  "mask must leave at least one active tone");
}

double MaskedSnrObjective::score(const Observation& obs) const {
    const std::vector<double>& snr = link_snr(obs, link_);
    PRESS_EXPECTS(mask_.num_used() == snr.size(),
                  "mask must span the observed subcarriers");
    const std::vector<std::size_t>& idx = mask_.active_indices();
    if (reduce_ == FusedSpec::Kind::kMinSnr) {
        double worst = snr[idx[0]];
        for (std::size_t i = 1; i < idx.size(); ++i)
            worst = std::min(worst, snr[idx[i]]);
        return worst;
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < idx.size(); ++i) acc += snr[idx[i]];
    return acc / static_cast<double>(idx.size());
}

std::string MaskedSnrObjective::name() const {
    return reduce_ == FusedSpec::Kind::kMinSnr ? "masked-min-SNR"
                                               : "masked-mean-SNR";
}

double ThroughputObjective::score(const Observation& obs) const {
    return phy::expected_throughput_mbps(link_snr(obs, link_));
}

WeightedBandObjective::WeightedBandObjective(std::vector<Term> terms,
                                             std::string label)
    : terms_(std::move(terms)), label_(std::move(label)) {
    PRESS_EXPECTS(!terms_.empty(), "objective needs at least one term");
    for (const Term& t : terms_)
        PRESS_EXPECTS(t.first_subcarrier < t.last_subcarrier,
                      "band must be non-empty");
}

double WeightedBandObjective::score(const Observation& obs) const {
    double total = 0.0;
    for (const Term& t : terms_) {
        const std::vector<double>& snr = link_snr(obs, t.link);
        PRESS_EXPECTS(t.last_subcarrier <= snr.size(),
                      "band exceeds the SNR profile");
        double acc = 0.0;
        for (std::size_t k = t.first_subcarrier; k < t.last_subcarrier; ++k)
            acc += snr[k];
        total += t.weight * acc /
                 static_cast<double>(t.last_subcarrier - t.first_subcarrier);
    }
    return total;
}

std::unique_ptr<Objective> make_harmonization_objective(
    std::size_t num_subcarriers, bool interference_links) {
    PRESS_EXPECTS(num_subcarriers >= 2, "need at least two subcarriers");
    const std::size_t half = num_subcarriers / 2;
    std::vector<WeightedBandObjective::Term> terms;
    // Communication bands: link 0 owns the low half, link 1 the high half.
    terms.push_back({0, 0, half, 1.0});
    terms.push_back({1, half, num_subcarriers, 1.0});
    if (interference_links) {
        // Interference channels, observed as links 2 (AP1 -> client 2) and
        // 3 (AP2 -> client 1), are penalized inside the band their victim
        // uses for communication.
        terms.push_back({2, half, num_subcarriers, -1.0});
        terms.push_back({3, 0, half, -1.0});
    }
    return std::make_unique<WeightedBandObjective>(std::move(terms),
                                                   "harmonization");
}

MultiLinkObjective::MultiLinkObjective(MultiLinkSpec spec, std::string label)
    : spec_(std::move(spec)), label_(std::move(label)) {
    PRESS_EXPECTS(!spec_.terms.empty(),
                  "multi-link objective needs at least one term");
    for (const LinkTerm& t : spec_.terms)
        PRESS_EXPECTS(t.reduce != FusedSpec::Kind::kNone,
                      "a multi-link term must reduce to a scalar");
}

double MultiLinkObjective::term_utility(const LinkTerm& term,
                                        double value_db) {
    const double shortfall = term.qos_floor_db - value_db;
    return term.weight * value_db -
           term.qos_weight * (shortfall > 0.0 ? shortfall : 0.0);
}

double MultiLinkObjective::combine(const MultiLinkSpec& spec,
                                   const double* utilities) {
    if (spec.combine == MultiLinkSpec::Combine::kMaxMin) {
        double worst = utilities[0];
        for (std::size_t t = 1; t < spec.terms.size(); ++t)
            worst = std::min(worst, utilities[t]);
        return worst;
    }
    double total = 0.0;
    for (std::size_t t = 0; t < spec.terms.size(); ++t)
        total += utilities[t];
    return total;
}

double MultiLinkObjective::score(const Observation& obs) const {
    // The general path reduces each term's span sequentially (the same
    // arithmetic MinSnr/MeanSnr use); min terms match the fused scorer
    // exactly, mean terms up to blocked-vs-sequential association ulps.
    double result = 0.0;
    bool first = true;
    for (const LinkTerm& t : spec_.terms) {
        const std::vector<double>& snr = link_snr(obs, t.link);
        const double v = t.reduce == FusedSpec::Kind::kMinSnr
                             ? util::min_value(snr)
                             : util::mean(snr);
        const double u = term_utility(t, v);
        if (spec_.combine == MultiLinkSpec::Combine::kMaxMin)
            result = first ? u : std::min(result, u);
        else
            result += u;
        first = false;
    }
    return result;
}

MultiLinkProblem& MultiLinkProblem::add(LinkTerm term) {
    spec_.terms.push_back(term);
    return *this;
}

MultiLinkProblem& MultiLinkProblem::serve(std::size_t link, double weight) {
    return add({link, reduce_, weight});
}

MultiLinkProblem& MultiLinkProblem::qos_floor(std::size_t link,
                                              double floor_db,
                                              double qos_weight) {
    return add({link, reduce_, 1.0, floor_db, qos_weight});
}

MultiLinkProblem& MultiLinkProblem::null(std::size_t link, double weight) {
    return add({link, reduce_, -weight});
}

MultiLinkProblem& MultiLinkProblem::weighted_sum() {
    spec_.combine = MultiLinkSpec::Combine::kWeightedSum;
    return *this;
}

MultiLinkProblem& MultiLinkProblem::max_min() {
    spec_.combine = MultiLinkSpec::Combine::kMaxMin;
    return *this;
}

MultiLinkProblem& MultiLinkProblem::reduce(FusedSpec::Kind kind) {
    PRESS_EXPECTS(kind != FusedSpec::Kind::kNone,
                  "a multi-link term must reduce to a scalar");
    reduce_ = kind;
    return *this;
}

std::unique_ptr<Objective> MultiLinkProblem::build(std::string label) const {
    return std::make_unique<MultiLinkObjective>(spec_, std::move(label));
}

std::unique_ptr<Objective> make_max_min_objective(std::size_t num_links,
                                                  FusedSpec::Kind reduce) {
    PRESS_EXPECTS(num_links >= 1, "need at least one link");
    MultiLinkProblem problem;
    problem.reduce(reduce).max_min();
    for (std::size_t i = 0; i < num_links; ++i) problem.serve(i);
    return problem.build("max-min-fairness");
}

std::unique_ptr<Objective> make_sum_mean_objective(std::size_t num_links) {
    PRESS_EXPECTS(num_links >= 1, "need at least one link");
    MultiLinkProblem problem;
    for (std::size_t i = 0; i < num_links; ++i) problem.serve(i);
    return problem.build("sum-mean-SNR");
}

std::unique_ptr<Objective> make_qos_floor_objective(std::size_t num_links,
                                                    double floor_db,
                                                    double qos_weight) {
    PRESS_EXPECTS(num_links >= 1, "need at least one link");
    MultiLinkProblem problem;
    for (std::size_t i = 0; i < num_links; ++i)
        problem.qos_floor(i, floor_db, qos_weight);
    return problem.build("qos-floor");
}

std::unique_ptr<Objective> make_nulling_objective(std::size_t num_links,
                                                  std::size_t victim,
                                                  double victim_weight) {
    PRESS_EXPECTS(num_links >= 2, "nulling needs a victim and a served link");
    PRESS_EXPECTS(victim < num_links, "victim link out of range");
    MultiLinkProblem problem;
    for (std::size_t i = 0; i < num_links; ++i) {
        if (i == victim)
            problem.null(i, victim_weight);
        else
            problem.serve(i);
    }
    return problem.build("null-victim");
}

double ConditionNumberObjective::score(const Observation& obs) const {
    PRESS_EXPECTS(!obs.mimo_condition_db.empty(),
                  "observation lacks MIMO condition numbers");
    return -util::mean(obs.mimo_condition_db);
}

}  // namespace press::control
