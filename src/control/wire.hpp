// Byte-level serialization primitives for the control-plane protocol.
//
// All control messages travel over a narrow out-of-band channel (the paper
// proposes "low-frequency, low-rate bands ... that penetrate walls well"),
// so the wire format is a compact little-endian framing with a CRC-16 to
// reject corruption. ByteWriter/ByteReader centralize the encoding rules;
// decode errors throw ProtocolError rather than yielding garbage.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace press::control {

/// Raised when a buffer cannot be decoded (truncation, bad magic, CRC
/// mismatch, unknown type, ...).
class ProtocolError : public std::runtime_error {
public:
    explicit ProtocolError(const std::string& what_arg)
        : std::runtime_error(what_arg) {}
};

/// Little-endian append-only byte sink.
class ByteWriter {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void bytes(const std::uint8_t* data, std::size_t n);

    const std::vector<std::uint8_t>& buffer() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

private:
    std::vector<std::uint8_t> buf_;
};

/// Little-endian cursor over a received buffer; reads past the end throw
/// ProtocolError.
class ByteReader {
public:
    explicit ByteReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int16_t i16() { return static_cast<std::int16_t>(u16()); }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

    std::size_t remaining() const { return buf_.size() - pos_; }
    std::size_t position() const { return pos_; }

private:
    void need(std::size_t n) const;

    const std::vector<std::uint8_t>& buf_;
    std::size_t pos_ = 0;
};

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) over a byte range.
std::uint16_t crc16(const std::uint8_t* data, std::size_t n);
std::uint16_t crc16(const std::vector<std::uint8_t>& data);

/// True when `frame` is long enough to carry the framing and its trailing
/// CRC-16 matches the bytes before it — the cheap integrity screen every
/// receiving endpoint runs before structural decoding. Does not touch the
/// corruption counter; decode() owns that accounting.
bool frame_crc_ok(const std::vector<std::uint8_t>& frame);

/// Counts one corrupt frame into the `wire.frames_corrupt` telemetry
/// counter (no-op when observability is disabled). decode() calls this for
/// every frame it rejects on truncation or CRC mismatch, so any chaos or
/// channel noise that mangles frames is visible as one global counter
/// instead of being scattered across per-endpoint rejection stats.
void note_corrupt_frame();

}  // namespace press::control
