#include "control/transport.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace press::control {

namespace {

// Transport counters are process-global aggregates over every channel /
// agent / session instance: what the export wants to answer is "how noisy
// was the control plane this run", not "which of the two directions of
// which session dropped a frame" — per-instance numbers stay available on
// the objects themselves.
void count(const char* name, std::uint64_t n = 1) {
    if (!obs::enabled() || n == 0) return;
    obs::MetricsRegistry::global().counter(name).add(n);
}

}  // namespace

LossyChannel::LossyChannel(double bit_error_rate, double drop_rate,
                           util::Rng rng)
    : bit_error_rate_(bit_error_rate), drop_rate_(drop_rate), rng_(rng) {
    PRESS_EXPECTS(bit_error_rate >= 0.0 && bit_error_rate < 1.0,
                  "BER must be a probability below 1");
    PRESS_EXPECTS(drop_rate >= 0.0 && drop_rate < 1.0,
                  "drop rate must be a probability below 1");
}

std::optional<std::vector<std::uint8_t>> LossyChannel::transmit(
    const std::vector<std::uint8_t>& frame) {
    if (rng_.chance(drop_rate_)) {
        ++frames_dropped_;
        count("control.transport.frames_dropped");
        return std::nullopt;
    }
    std::vector<std::uint8_t> out = frame;
    std::size_t flipped = 0;
    if (bit_error_rate_ > 0.0) {
        for (std::uint8_t& byte : out) {
            for (int b = 0; b < 8; ++b) {
                if (rng_.chance(bit_error_rate_)) {
                    byte ^= static_cast<std::uint8_t>(1u << b);
                    ++flipped;
                }
            }
        }
    }
    bits_flipped_ += flipped;
    ++frames_carried_;
    count("control.transport.frames_carried");
    count("control.transport.bits_flipped", flipped);
    return out;
}

ArrayAgent::ArrayAgent(surface::Array& array, std::uint16_t array_id)
    : array_(array), array_id_(array_id) {}

std::optional<std::vector<std::uint8_t>> ArrayAgent::handle(
    const std::vector<std::uint8_t>& frame) {
    Decoded decoded;
    try {
        decoded = decode(frame);
    } catch (const ProtocolError&) {
        ++rejected_;
        count("control.transport.agent_rejected");
        return std::nullopt;  // corrupted frames are silently dropped
    }
    // Adopt the sender's causal context from the frame header (version 2
    // frames): the agent's span parents into the controller-side span
    // that encoded the frame, across the simulated wire. Acks are
    // encoded under this span, so they carry the agent's context back.
    obs::ContextGuard adopt(decoded.trace);
    obs::TraceSpan span("control.agent.handle");
    const auto* set = std::get_if<SetConfig>(&decoded.message);
    if (set == nullptr || set->array_id != array_id_) return std::nullopt;

    SetConfigAck ack;
    ack.array_id = array_id_;
    if (highest_seq_ && decoded.seq <= *highest_seq_) {
        // Retransmission of the already-applied configuration, or a
        // delayed older frame arriving out of order: ack (so the sender
        // stops retrying) without re-applying — an old frame must never
        // drag the array back to a stale configuration.
        if (decoded.seq == *highest_seq_) {
            ++duplicates_;
            count("control.transport.agent_duplicates");
        } else {
            ++stale_;
            count("control.transport.agent_stale");
        }
        ack.status = 0;
        return encode(Message{ack}, decoded.seq, obs::current_context());
    }
    if (!array_.config_space().valid(set->config)) {
        ++rejected_;
        count("control.transport.agent_rejected");
        ack.status = 1;  // invalid configuration
        return encode(Message{ack}, decoded.seq, obs::current_context());
    }
    array_.apply(set->config);
    highest_seq_ = decoded.seq;
    ++applied_;
    count("control.transport.agent_applied");
    ack.status = 0;
    return encode(Message{ack}, decoded.seq, obs::current_context());
}

double BackoffPolicy::nominal_wait_s(int retry) const {
    PRESS_EXPECTS(retry >= 1, "retries are 1-based");
    double wait = base_s;
    for (int i = 1; i < retry; ++i) wait *= factor;
    return std::min(wait, max_s);
}

ReliableSession::ReliableSession(ArrayAgent& agent, LossyChannel downlink,
                                 LossyChannel uplink, int max_retries)
    : agent_(agent),
      downlink_(std::move(downlink)),
      uplink_(std::move(uplink)),
      max_retries_(max_retries),
      backoff_rng_(0x5EC0FFu) {
    PRESS_EXPECTS(max_retries >= 0, "retry count must be non-negative");
}

void ReliableSession::set_timing(const ControlPlaneModel* model,
                                 SimClock* clock) {
    PRESS_EXPECTS((model == nullptr) == (clock == nullptr),
                  "timing needs both a plane model and a clock");
    model_ = model;
    clock_ = clock;
}

void ReliableSession::set_backoff(const BackoffPolicy& policy,
                                  util::Rng rng) {
    PRESS_EXPECTS(policy.base_s >= 0.0 && policy.max_s >= policy.base_s,
                  "backoff bounds must be ordered and non-negative");
    PRESS_EXPECTS(policy.factor >= 1.0, "backoff must not shrink");
    PRESS_EXPECTS(policy.jitter_frac >= 0.0 && policy.jitter_frac < 1.0,
                  "jitter fraction must be in [0, 1)");
    backoff_ = policy;
    backoff_rng_ = rng;
}

void ReliableSession::advance_clock(double seconds) {
    if (clock_ != nullptr) clock_->advance(seconds);
}

bool ReliableSession::apply(std::uint16_t array_id,
                            const surface::Config& config) {
    // The delivery root for this configuration: attempts, backoffs and
    // the agent's adopted handling all hang off it, priced on the shared
    // SimClock when one is attached.
    obs::TraceSpan apply_span("control.transport.apply", clock_);
    SetConfig msg;
    msg.array_id = array_id;
    msg.config = config;
    const std::uint32_t seq = next_seq_++;
    // current_context() is apply_span: the frame header ships it so the
    // agent can adopt across the wire (16 extra bytes of real airtime).
    const std::vector<std::uint8_t> frame =
        encode(Message{msg}, seq, obs::current_context());

    // Decorrelated jitter state: the previous wait seeds the next draw's
    // upper bound, per delivery (each configuration restarts the ramp).
    double prev_wait_s = backoff_.base_s;

    for (int attempt = 0; attempt <= max_retries_; ++attempt) {
        if (attempt > 0) {
            // Exponential backoff with jitter before each retransmission;
            // the wait is real coherence-time budget when a clock is
            // attached.
            obs::TraceSpan backoff_span("control.transport.backoff",
                                        clock_);
            const double nominal = backoff_.nominal_wait_s(attempt);
            double wait;
            if (backoff_.jitter == BackoffPolicy::Jitter::kDecorrelated) {
                const double hi =
                    std::min(backoff_.max_s, prev_wait_s * 3.0);
                wait = hi > backoff_.base_s
                           ? backoff_rng_.uniform(backoff_.base_s, hi)
                           : backoff_.base_s;
            } else {
                const double jitter =
                    backoff_.jitter_frac > 0.0
                        ? backoff_rng_.uniform(1.0 - backoff_.jitter_frac,
                                               1.0 + backoff_.jitter_frac)
                        : 1.0;
                wait = std::min(nominal * jitter, backoff_.max_s);
            }
            prev_wait_s = wait;
            stats_.backoff_s += wait;
            stats_.retry_jitter_s += std::abs(wait - nominal);
            if (obs::enabled()) {
                auto& registry = obs::MetricsRegistry::global();
                registry.gauge("control.transport.backoff_s").add(wait);
                registry.gauge("control.transport.retry_jitter_s")
                    .add(std::abs(wait - nominal));
            }
            advance_clock(wait);
        }
        obs::TraceSpan attempt_span("control.transport.attempt", clock_);
        ++stats_.attempts;
        count("control.transport.attempts");
        if (attempt > 0) count("control.transport.retries");
        // The frame occupies the downlink whether or not it arrives.
        if (model_ != nullptr)
            advance_clock(model_->transfer_time_s(frame.size()));
        const auto carried = downlink_.transmit(frame);
        if (!carried) continue;  // frame lost on the way down
        const auto response = agent_.handle(*carried);
        if (!response) continue;  // agent dropped it (corruption)
        // The ack occupies the uplink whether or not it survives.
        if (model_ != nullptr)
            advance_clock(model_->transfer_time_s(response->size()));
        const auto returned = uplink_.transmit(*response);
        if (!returned) continue;  // ack lost on the way up
        try {
            const Decoded decoded = decode(*returned);
            const auto* ack = std::get_if<SetConfigAck>(&decoded.message);
            if (ack != nullptr && decoded.seq == seq && ack->status == 0) {
                if (model_ != nullptr)
                    advance_clock(model_->element_switch_s);
                ++stats_.acked;
                count("control.transport.acked");
                return true;
            }
        } catch (const ProtocolError&) {
            ++stats_.bad_responses;
            count("control.transport.bad_responses");
        }
    }
    ++stats_.gave_up;
    count("control.transport.gave_up");
    return false;
}

}  // namespace press::control
