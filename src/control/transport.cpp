#include "control/transport.hpp"

#include "util/contracts.hpp"

namespace press::control {

LossyChannel::LossyChannel(double bit_error_rate, double drop_rate,
                           util::Rng rng)
    : bit_error_rate_(bit_error_rate), drop_rate_(drop_rate), rng_(rng) {
    PRESS_EXPECTS(bit_error_rate >= 0.0 && bit_error_rate < 1.0,
                  "BER must be a probability below 1");
    PRESS_EXPECTS(drop_rate >= 0.0 && drop_rate < 1.0,
                  "drop rate must be a probability below 1");
}

std::optional<std::vector<std::uint8_t>> LossyChannel::transmit(
    const std::vector<std::uint8_t>& frame) {
    if (rng_.chance(drop_rate_)) {
        ++frames_dropped_;
        return std::nullopt;
    }
    std::vector<std::uint8_t> out = frame;
    if (bit_error_rate_ > 0.0) {
        for (std::uint8_t& byte : out) {
            for (int b = 0; b < 8; ++b) {
                if (rng_.chance(bit_error_rate_)) {
                    byte ^= static_cast<std::uint8_t>(1u << b);
                    ++bits_flipped_;
                }
            }
        }
    }
    ++frames_carried_;
    return out;
}

ArrayAgent::ArrayAgent(surface::Array& array, std::uint16_t array_id)
    : array_(array), array_id_(array_id) {}

std::optional<std::vector<std::uint8_t>> ArrayAgent::handle(
    const std::vector<std::uint8_t>& frame) {
    Decoded decoded;
    try {
        decoded = decode(frame);
    } catch (const ProtocolError&) {
        ++rejected_;
        return std::nullopt;  // corrupted frames are silently dropped
    }
    const auto* set = std::get_if<SetConfig>(&decoded.message);
    if (set == nullptr || set->array_id != array_id_) return std::nullopt;

    SetConfigAck ack;
    ack.array_id = array_id_;
    if (last_seq_ && *last_seq_ == decoded.seq) {
        // Retransmission of an already-applied configuration: ack again
        // without re-applying (the switch has settled; don't disturb it).
        ++duplicates_;
        ack.status = 0;
        return encode(Message{ack}, decoded.seq);
    }
    if (!array_.config_space().valid(set->config)) {
        ++rejected_;
        ack.status = 1;  // invalid configuration
        return encode(Message{ack}, decoded.seq);
    }
    array_.apply(set->config);
    last_seq_ = decoded.seq;
    ++applied_;
    ack.status = 0;
    return encode(Message{ack}, decoded.seq);
}

ReliableSession::ReliableSession(ArrayAgent& agent, LossyChannel downlink,
                                 LossyChannel uplink, int max_retries)
    : agent_(agent),
      downlink_(std::move(downlink)),
      uplink_(std::move(uplink)),
      max_retries_(max_retries) {
    PRESS_EXPECTS(max_retries >= 0, "retry count must be non-negative");
}

bool ReliableSession::apply(std::uint16_t array_id,
                            const surface::Config& config) {
    SetConfig msg;
    msg.array_id = array_id;
    msg.config = config;
    const std::uint32_t seq = next_seq_++;
    const std::vector<std::uint8_t> frame = encode(Message{msg}, seq);

    for (int attempt = 0; attempt <= max_retries_; ++attempt) {
        ++stats_.attempts;
        const auto carried = downlink_.transmit(frame);
        if (!carried) continue;  // frame lost on the way down
        const auto response = agent_.handle(*carried);
        if (!response) continue;  // agent dropped it (corruption)
        const auto returned = uplink_.transmit(*response);
        if (!returned) continue;  // ack lost on the way up
        try {
            const Decoded decoded = decode(*returned);
            const auto* ack = std::get_if<SetConfigAck>(&decoded.message);
            if (ack != nullptr && decoded.seq == seq && ack->status == 0) {
                ++stats_.acked;
                return true;
            }
        } catch (const ProtocolError&) {
            ++stats_.bad_responses;
        }
    }
    ++stats_.gave_up;
    return false;
}

}  // namespace press::control
