#include "control/service.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace press::control {

namespace {

constexpr std::size_t kSeenWindow = 64;

// Service counters are process-global aggregates, like the transport's:
// per-instance numbers stay available on Service::stats().
void count(const char* name, std::uint64_t n = 1) {
    if (!obs::enabled() || n == 0) return;
    obs::MetricsRegistry::global().counter(name).add(n);
}

// Latency histograms in microseconds; bounds span sub-cycle admission
// work up to multi-second stuck cycles.
std::vector<double> us_bounds() {
    return {10,    20,    50,     100,    200,    500,    1000,
            2000,  5000,  10000,  20000,  50000,  100000, 200000,
            500000, 1e6,  2e6,    5e6};
}

void observe_us(const char* name, double us) {
    if (!obs::enabled()) return;
    obs::MetricsRegistry::global().histogram(name, us_bounds()).observe(us);
}

std::uint32_t to_us_u32(double seconds) {
    const double us = seconds * 1e6;
    if (us <= 0.0) return 0;
    if (us >= static_cast<double>(std::numeric_limits<std::uint32_t>::max()))
        return std::numeric_limits<std::uint32_t>::max();
    return static_cast<std::uint32_t>(us);
}

std::int32_t to_centi_i32(double value) {
    const double centi = value * 100.0;
    const double lo = std::numeric_limits<std::int32_t>::min();
    const double hi = std::numeric_limits<std::int32_t>::max();
    return static_cast<std::int32_t>(std::clamp(centi, lo, hi));
}

// Headroom under the wire's u16 payload length field: a telemetry
// payload larger than this degrades to a minimal frame instead of
// aborting in the encoder.
constexpr std::size_t kMaxTelemetryPayload = 60000;

}  // namespace

Service::Service(ServiceEngine engine, ServiceOptions options)
    : engine_(std::move(engine)),
      options_(std::move(options)),
      timeseries_(options_.telemetry),
      slo_(options_.slo) {
    PRESS_EXPECTS(engine_.optimize != nullptr,
                  "service engine needs an optimize callback");
    PRESS_EXPECTS(engine_.mutate != nullptr,
                  "service engine needs a mutate callback");
    PRESS_EXPECTS(options_.queue_capacity >= 1, "queue capacity must be >= 1");
    PRESS_EXPECTS(options_.outbox_capacity >= 2,
                  "outbox must hold at least a reply and a reject");
    PRESS_EXPECTS(options_.default_deadline_s > 0.0,
                  "default deadline must be positive");
    PRESS_EXPECTS(options_.shed_occupancy > 0.0 &&
                      options_.shed_occupancy <= 1.0,
                  "shed occupancy is a fraction of capacity");
    PRESS_EXPECTS(options_.max_budget_s >= options_.default_budget_s,
                  "budget clamp below the default budget");
    PRESS_EXPECTS(options_.watchdog_cycle_s > 0.0,
                  "watchdog threshold must be positive");
    queue_.reserve(options_.queue_capacity);
    if (options_.arm_flight && !obs::flight_armed()) obs::flight_arm();
    start_sim_s_ = clock_.now_s();
    next_sample_s_ = start_sim_s_ + options_.telemetry.interval_s;
    // Warm the sampler's registry handles so the first sample() in
    // steady state is already alloc-free.
    if (options_.telemetry.interval_s > 0.0) timeseries_.refresh();
}

std::size_t Service::outbox_watermark() const {
    if (options_.outbox_watermark > 0) return options_.outbox_watermark;
    return std::max<std::size_t>(1, options_.outbox_capacity * 3 / 4);
}

Service::SessionId Service::connect() {
    // SessionId is wire-visible (HelloAck.session_id is u16), so it stays
    // narrow; after 65535 connects next_session_ wraps, and an id aliased
    // to a still-open session would cross-deliver frames. Skip live ids
    // (0 is reserved as "no session").
    PRESS_EXPECTS(sessions_.size() <
                      static_cast<std::size_t>(
                          std::numeric_limits<SessionId>::max()),
                  "session id space exhausted");
    while (next_session_ == 0 || sessions_.count(next_session_) != 0)
        ++next_session_;
    const SessionId id = next_session_++;
    const bool inserted = sessions_.emplace(id, Session{}).second;
    PRESS_ENSURES(inserted, "session id collision");
    count("service.sessions_opened");
    return id;
}

void Service::disconnect(SessionId id) { drop_session(id, /*slow=*/false); }

bool Service::session_open(SessionId id) const {
    return sessions_.count(id) != 0;
}

void Service::drop_session(SessionId id, bool slow) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    sessions_.erase(it);
    if (slow) {
        ++stats_.sessions_dropped_slow;
        count("service.sessions_dropped_slow");
    }
    // Queued work from the departed session has no reader left; account
    // it explicitly — the ledger, not a reply, is the terminal record.
    std::size_t purged = 0;
    for (auto qit = queue_.begin(); qit != queue_.end();) {
        if (qit->session == id) {
            qit = queue_.erase(qit);
            ++purged;
        } else {
            ++qit;
        }
    }
    stats_.dropped_closed += purged;
    count("service.dropped_closed", purged);
    for (auto mit = mutations_.begin(); mit != mutations_.end();) {
        if (mit->session == id) {
            mit = mutations_.erase(mit);
            ++stats_.mutations_rejected;
            count("service.mutations_rejected");
        } else {
            ++mit;
        }
    }
}

void Service::push_frame(SessionId id, std::vector<std::uint8_t> frame) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;  // reply to a departed session
    if (it->second.outbox.size() >= options_.outbox_capacity) {
        // The reader stopped reading; unbounded buffering would trade a
        // visible failure for an invisible one. Close the session.
        drop_session(id, /*slow=*/true);
        return;
    }
    it->second.outbox.push_back(OutFrame{std::move(frame), false});
}

std::vector<std::vector<std::uint8_t>> Service::take_outgoing(
    SessionId id, std::size_t max_frames) {
    std::vector<std::vector<std::uint8_t>> out;
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return out;
    auto& outbox = it->second.outbox;
    while (!outbox.empty() && out.size() < max_frames) {
        out.push_back(std::move(outbox.front().bytes));
        outbox.pop_front();
    }
    return out;
}

std::size_t Service::outbox_depth(SessionId id) const {
    const auto it = sessions_.find(id);
    return it == sessions_.end() ? 0 : it->second.outbox.size();
}

const std::vector<std::uint8_t>* Service::peek_outgoing(SessionId id) const {
    const auto it = sessions_.find(id);
    if (it == sessions_.end() || it->second.outbox.empty()) return nullptr;
    return &it->second.outbox.front().bytes;
}

void Service::pop_outgoing(SessionId id) {
    const auto it = sessions_.find(id);
    if (it != sessions_.end() && !it->second.outbox.empty())
        it->second.outbox.pop_front();
}

bool Service::seen_before(const Session& session, std::uint32_t seq) const {
    return std::find(session.seen_seqs.begin(), session.seen_seqs.end(),
                     seq) != session.seen_seqs.end();
}

void Service::record_seen(Session& session, std::uint32_t seq) {
    session.seen_seqs.push_back(seq);
    if (session.seen_seqs.size() > kSeenWindow) session.seen_seqs.pop_front();
}

void Service::reject(SessionId id, std::uint32_t seq, RejectReason reason) {
    Reject msg;
    msg.reason = static_cast<std::uint8_t>(reason);
    msg.queue_depth = static_cast<std::uint16_t>(
        std::min<std::size_t>(queue_.size(), 0xFFFF));
    push_frame(id, encode(Message{msg}, seq, obs::current_context()));
    ++stats_.rejected;
    count("service.rejected");
}

void Service::submit(SessionId id, const std::vector<std::uint8_t>& frame) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    ++stats_.frames_in;
    count("service.frames_in");
    Decoded decoded;
    try {
        decoded = decode(frame);
    } catch (const ProtocolError&) {
        // decode() already counted wire.frames_corrupt when the CRC
        // failed. An unparseable frame names no request (no trustworthy
        // seq), so no reply is owed — the client's retransmission path
        // covers it. Counted, never silent.
        ++stats_.frames_bad;
        count("service.frames_bad");
        return;
    }
    handle(id, it->second, decoded);
}

void Service::handle(SessionId id, Session& session, const Decoded& decoded) {
    // Adopt the client's causal context so admission spans parent into
    // the frame that crossed the (possibly chaotic) wire.
    obs::ContextGuard adopt(decoded.trace);
    obs::TraceSpan span("control.service.admit", &clock_);

    if (const auto* hello = std::get_if<Hello>(&decoded.message)) {
        session.priority_cap = hello->priority_cap;
        session.hello_seen = true;
        HelloAck ack;
        ack.session_id = id;
        ack.epoch = epoch_;
        push_frame(id,
                   encode(Message{ack}, decoded.seq, obs::current_context()));
        return;
    }
    if (std::get_if<StatusRequest>(&decoded.message) != nullptr) {
        StatusReply reply;
        reply.epoch = epoch_;
        reply.queue_depth = static_cast<std::uint16_t>(
            std::min<std::size_t>(queue_.size(), 0xFFFF));
        reply.served = stats_.served;
        reply.rejected = stats_.rejected;
        reply.expired = stats_.expired;
        reply.uptime_s = uptime_s();
        reply.revision = timeseries_.revision();
        push_frame(
            id, encode(Message{reply}, decoded.seq, obs::current_context()));
        return;
    }
    if (const auto* sub = std::get_if<Subscribe>(&decoded.message)) {
        handle_subscribe(id, session, decoded, *sub);
        return;
    }
    if (const auto* req = std::get_if<OptimizeRequest>(&decoded.message)) {
        admit_optimize(id, session, decoded, *req);
        return;
    }
    if (const auto* mut = std::get_if<MutateRequest>(&decoded.message)) {
        if (seen_before(session, decoded.seq)) {
            ++stats_.duplicates;
            count("service.duplicates");
            reject(id, decoded.seq, RejectReason::kDuplicate);
            return;
        }
        if (session.outbox.size() >= outbox_watermark()) {
            ++stats_.backpressure;
            count("service.backpressure");
            reject(id, decoded.seq, RejectReason::kBackpressure);
            return;
        }
        if (engine_.validate_mutate && !engine_.validate_mutate(*mut)) {
            ++stats_.bad_requests;
            count("service.bad_requests");
            reject(id, decoded.seq, RejectReason::kBadRequest);
            return;
        }
        if (mutations_.size() >= options_.queue_capacity) {
            reject(id, decoded.seq, RejectReason::kQueueFull);
            return;
        }
        // Recorded only on admission: a retransmit after a transient
        // refusal (backpressure, queue-full) whose Reject frame was lost
        // must be re-evaluated, not answered kDuplicate.
        record_seen(session, decoded.seq);
        mutations_.push_back(PendingMutation{id, decoded.seq, *mut});
        return;
    }
    // A client has no business sending service->client frames; refuse
    // rather than guess.
    ++stats_.bad_requests;
    count("service.bad_requests");
    reject(id, decoded.seq, RejectReason::kBadRequest);
}

void Service::admit_optimize(SessionId id, Session& session,
                             const Decoded& decoded,
                             const OptimizeRequest& req) {
    if (seen_before(session, decoded.seq)) {
        ++stats_.duplicates;
        count("service.duplicates");
        reject(id, decoded.seq, RejectReason::kDuplicate);
        return;
    }
    if (session.outbox.size() >= outbox_watermark()) {
        ++stats_.backpressure;
        count("service.backpressure");
        reject(id, decoded.seq, RejectReason::kBackpressure);
        return;
    }
    if (engine_.validate && !engine_.validate(req)) {
        ++stats_.bad_requests;
        count("service.bad_requests");
        reject(id, decoded.seq, RejectReason::kBadRequest);
        return;
    }

    const std::uint8_t priority = std::min(req.priority, session.priority_cap);

    // Load shedding: above the occupancy watermark, low-priority work is
    // refused before the queue saturates, preserving headroom for
    // requests that outrank the floor.
    const double occupancy = static_cast<double>(queue_.size()) /
                             static_cast<double>(options_.queue_capacity);
    if (occupancy >= options_.shed_occupancy &&
        priority < options_.shed_priority_floor) {
        ++stats_.shed;
        count("service.shed");
        reject(id, decoded.seq, RejectReason::kShed);
        return;
    }

    if (queue_.size() >= options_.queue_capacity) {
        // Saturated: a newcomer that outranks the weakest resident
        // displaces it (the victim hears why); otherwise the newcomer
        // is refused.
        auto victim = queue_.begin();
        for (auto qit = queue_.begin(); qit != queue_.end(); ++qit) {
            if (qit->priority < victim->priority ||
                (qit->priority == victim->priority &&
                 qit->admit_order > victim->admit_order))
                victim = qit;
        }
        if (victim->priority < priority) {
            // Erase before rejecting: reject() -> push_frame() can close
            // the victim's session (full outbox), and drop_session()
            // purges that session's queue entries — mutating queue_ while
            // we hold an iterator, and double-counting the victim as
            // dropped_closed on top of evicted.
            const SessionId victim_session = victim->session;
            const std::uint32_t victim_seq = victim->seq;
            queue_.erase(victim);
            ++stats_.evicted;
            count("service.evicted");
            reject(victim_session, victim_seq, RejectReason::kQueueFull);
            if (sessions_.count(id) == 0) {
                // The victim shared the newcomer's session and rejecting
                // it closed that session: the newcomer has no reader
                // left, so it is not admitted (and `session` is gone).
                return;
            }
        } else {
            ++stats_.queue_full;
            count("service.queue_full");
            reject(id, decoded.seq, RejectReason::kQueueFull);
            return;
        }
    }

    Pending pending;
    pending.session = id;
    pending.seq = decoded.seq;
    pending.request = req;
    pending.priority = priority;
    const double deadline_s = req.deadline_us > 0
                                  ? static_cast<double>(req.deadline_us) * 1e-6
                                  : options_.default_deadline_s;
    pending.deadline_sim_s = clock_.now_s() + deadline_s;
    pending.admit_order = next_admit_order_++;
    pending.arrival_wall = std::chrono::steady_clock::now();
    // Recorded only on admission (see the mutate path for why).
    record_seen(session, decoded.seq);
    queue_.push_back(std::move(pending));
    ++stats_.admitted;
    count("service.admitted");
    if (obs::enabled()) {
        obs::MetricsRegistry::global()
            .gauge("service.queue_depth")
            .set(static_cast<double>(queue_.size()));
    }
}

bool Service::pop_next(Pending& out) {
    while (!queue_.empty()) {
        // Highest priority first; FIFO among equals.
        auto best = queue_.begin();
        for (auto qit = queue_.begin(); qit != queue_.end(); ++qit) {
            if (qit->priority > best->priority ||
                (qit->priority == best->priority &&
                 qit->admit_order < best->admit_order))
                best = qit;
        }
        if (best->deadline_sim_s <= clock_.now_s()) {
            // Too late to run; the client hears kExpired rather than
            // receiving a stale result late. Erase before rejecting:
            // reject() can close the session (full outbox) and purge its
            // queue entries, which would invalidate `best` and count
            // this same request dropped_closed on top of expired. The
            // loop restarts with fresh iterators.
            const SessionId session = best->session;
            const std::uint32_t seq = best->seq;
            queue_.erase(best);
            ++stats_.expired;
            count("service.expired");
            slo_.record_miss(clock_.now_s());
            reject(session, seq, RejectReason::kExpired);
            continue;
        }
        out = std::move(*best);
        queue_.erase(best);
        return true;
    }
    return false;
}

void Service::execute(const Pending& pending) {
    obs::TraceSpan span("control.service.execute", &clock_);
    const double queue_wait_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      pending.arrival_wall)
            .count();

    double budget_s = pending.request.budget_us > 0
                          ? static_cast<double>(pending.request.budget_us) *
                                1e-6
                          : options_.default_budget_s;
    budget_s = std::min(budget_s, options_.max_budget_s);

    const std::uint64_t revision_before =
        engine_.scene_revision ? engine_.scene_revision() : 0;
    EngineResult result = engine_.optimize(pending.request, budget_s);
    clock_.advance(result.sim_elapsed_s);
    ++executed_;
    if (engine_.scene_revision) {
        // The frozen-scene guarantee: nothing mutated the scene while
        // the cycle ran — mutations are fenced to close_epoch().
        PRESS_ENSURES(engine_.scene_revision() == revision_before,
                      "scene mutated during an optimize cycle");
    }

    bool stuck = !result.ok ||
                 result.sim_elapsed_s > options_.watchdog_cycle_s;
    if (options_.inject_stall_every > 0 &&
        executed_ % options_.inject_stall_every == 0)
        stuck = true;

    if (stuck) {
        // Watchdog: leave a post-mortem, restore the last configuration
        // known to be good, answer degraded — and keep serving.
        ++stats_.watchdog_trips;
        count("service.watchdog_trips");
        std::string dump_path;
        if (const auto path = obs::write_flight(options_.flight_dump_name)) {
            dump_path = *path;
            ++stats_.flight_dumps;
            count("service.flight_dumps");
        }
        tap_subscribers(FlightTapReason::kWatchdog, dump_path);
        if (engine_.revert) (void)engine_.revert();
    } else if (engine_.checkpoint) {
        engine_.checkpoint();
    }

    OptimizeReply reply;
    reply.status = stuck ? 1 : 0;
    reply.epoch = epoch_;
    reply.best_score_centi = to_centi_i32(result.best_score);
    reply.evaluations = result.evaluations;
    reply.queue_wait_us = to_us_u32(queue_wait_s);
    reply.compute_us = to_us_u32(result.compute_s);
    push_frame(pending.session,
               encode(Message{reply}, pending.seq, obs::current_context()));
    ++stats_.served;
    count("service.served");
    const double request_us = (queue_wait_s + result.compute_s) * 1e6;
    observe_us("service.queue_wait_us", queue_wait_s * 1e6);
    observe_us("service.compute_us", result.compute_s * 1e6);
    observe_us("service.request_us", request_us);
    // SLO accounting and exemplar sampling ride the same observation:
    // a slow request lowers compliance, and its trace_id is what a
    // streamed frame links the latency spike back to.
    slo_.record_ok(clock_.now_s(), request_us);
    timeseries_.note_exemplar(request_us, span.context().trace_id,
                              clock_.now_s());
}

void Service::close_epoch() {
    if (mutations_.empty()) return;
    obs::TraceSpan span("control.service.mutate", &clock_);
    ++epoch_;
    count("service.epochs");
    for (auto& pending : mutations_) {
        const bool ok = engine_.mutate(pending.request);
        MutateReply reply;
        reply.status = ok ? 0 : 1;
        reply.epoch = epoch_;
        push_frame(pending.session, encode(Message{reply}, pending.seq,
                                           obs::current_context()));
        if (ok) {
            ++stats_.mutations_applied;
            count("service.mutations_applied");
        } else {
            ++stats_.mutations_rejected;
            count("service.mutations_rejected");
        }
    }
    mutations_.clear();
    // The post-mutation scene is the new known-good baseline.
    if (engine_.checkpoint) engine_.checkpoint();
}

bool Service::run_cycle() {
    const std::uint64_t expired_before = stats_.expired;
    bool did_work = false;
    Pending pending;
    if (pop_next(pending)) {
        execute(pending);
        did_work = true;
    }
    if (stats_.expired != expired_before) {
        did_work = true;
        // Expiries are the SLO's miss signal; a burst may cross the
        // burn-rate alarm right here.
        check_slo_alarm();
    }
    if (!mutations_.empty()) {
        close_epoch();
        did_work = true;
    }
    if (did_work) {
        ++stats_.cycles;
        count("service.cycles");
        if (obs::enabled()) {
            obs::MetricsRegistry::global()
                .gauge("service.queue_depth")
                .set(static_cast<double>(queue_.size()));
        }
    }
    // The introspection pump runs even on idle cycles — pressd calls
    // run_cycle() every poll tick, which is what keeps telemetry flowing
    // while no requests arrive. Cadence-gated, so this terminates
    // run_until_idle().
    if (pump_telemetry()) did_work = true;
    return did_work;
}

std::size_t Service::run_until_idle() {
    std::size_t cycles = 0;
    while (run_cycle()) ++cycles;
    return cycles;
}

void Service::handle_subscribe(SessionId id, Session& session,
                               const Decoded& decoded, const Subscribe& sub) {
    if (options_.telemetry.interval_s <= 0.0) {
        // Introspection is off for this instance; refuse rather than
        // accept a stream that would never push.
        ++stats_.bad_requests;
        count("service.bad_requests");
        reject(id, decoded.seq, RejectReason::kBadRequest);
        return;
    }
    if (sub.interval_us == 0) {
        // Unsubscribe. Acked with one final frame (under the previous
        // subscription's prefix/flags) so the client knows the cancel
        // landed and what the last window looked like.
        session.subscribed = false;
        push_telemetry(id, session, Message{make_telemetry_frame(session)});
        return;
    }
    session.subscribed = true;
    session.sub_prefix = sub.prefix;
    session.sub_interval_s =
        std::max(options_.min_subscribe_interval_s,
                 static_cast<double>(sub.interval_us) * 1e-6);
    session.sub_flags = sub.flags;
    session.next_push_s = clock_.now_s() + session.sub_interval_s;
    ++stats_.subscriptions;
    count("service.telemetry.subscriptions");
    // Immediate ack: the newest window, so a dashboard paints without
    // waiting out the first interval.
    push_telemetry(id, session, Message{make_telemetry_frame(session)});
}

TelemetryFrame Service::make_telemetry_frame(const Session& session) {
    obs::Json doc = timeseries_.latest_frame(
        session.sub_prefix, (session.sub_flags & kSubscribeExemplars) != 0);
    // Live service state rides every frame: queue depth, per-session
    // outbox depths and the backpressure watermark they are judged
    // against. These are injected here rather than exported as metrics
    // because per-session gauges would grow the registry without bound.
    obs::Json session_depths = obs::Json::object();
    for (const auto& [sid, sess] : sessions_) {
        obs::Json entry = obs::Json::object();
        entry["outbox"] = static_cast<double>(sess.outbox.size());
        entry["subscribed"] = sess.subscribed;
        session_depths[std::to_string(sid)] = std::move(entry);
    }
    doc["queue_depth"] = static_cast<double>(queue_.size());
    doc["outbox_watermark"] = static_cast<double>(outbox_watermark());
    doc["sessions"] = std::move(session_depths);

    TelemetryFrame frame;
    frame.revision = timeseries_.revision();
    frame.payload = doc.dump();
    if (frame.payload.size() > kMaxTelemetryPayload) {
        // The wire's u16 length field caps payloads. A frame that would
        // not fit degrades to a minimal (still schema-valid) header so
        // the stream keeps flowing — counted, never silent.
        ++stats_.telemetry_frames_truncated;
        count("service.telemetry.frames_truncated");
        obs::Json fallback = obs::Json::object();
        fallback["schema"] = "press.timeseries/v1";
        fallback["revision"] = static_cast<double>(timeseries_.revision());
        fallback["t_s"] = timeseries_.last_sample_s();
        fallback["interval_s"] = options_.telemetry.interval_s;
        fallback["counters"] = obs::Json::object();
        fallback["gauges"] = obs::Json::object();
        fallback["histograms"] = obs::Json::object();
        fallback["exemplars"] = obs::Json::array();
        frame.payload = fallback.dump();
    }
    return frame;
}

bool Service::push_telemetry(SessionId id, Session& session,
                             const Message& msg) {
    std::vector<std::uint8_t> frame =
        encode(msg, session.sub_seq++, obs::current_context());
    // Telemetry never competes with replies for the headroom between
    // watermark and capacity: at the watermark it displaces the oldest
    // queued telemetry frame (stale windows make way for fresh ones) or,
    // when the outbox is all replies, drops itself. Either way the drop
    // is counted — and a reply is never displaced, a session never
    // closed, an OptimizeReply never delayed.
    const std::size_t limit =
        std::min(outbox_watermark(), options_.outbox_capacity);
    if (session.outbox.size() >= limit) {
        const auto oldest = std::find_if(
            session.outbox.begin(), session.outbox.end(),
            [](const OutFrame& f) { return f.telemetry; });
        ++stats_.telemetry_frames_dropped;
        count("service.telemetry.frames_dropped");
        if (oldest == session.outbox.end()) return false;  // all replies
        session.outbox.erase(oldest);
    }
    session.outbox.push_back(OutFrame{std::move(frame), true});
    ++stats_.telemetry_frames_sent;
    count("service.telemetry.frames_sent");
    (void)id;
    return true;
}

bool Service::pump_telemetry() {
    if (options_.telemetry.interval_s <= 0.0) return false;
    const double now = clock_.now_s();
    bool did_work = false;
    if (now >= next_sample_s_) {
        // Close one window: SLO gauges first so they land in it, then
        // the alloc-free registry sweep.
        publish_slo_gauges(now);
        timeseries_.refresh_if_grown();
        timeseries_.sample(now);
        ++stats_.telemetry_samples;
        count("service.telemetry.samples");
        next_sample_s_ = now + options_.telemetry.interval_s;
        did_work = true;
    }
    for (auto& [id, session] : sessions_) {
        if (!session.subscribed || now < session.next_push_s) continue;
        push_telemetry(id, session, Message{make_telemetry_frame(session)});
        session.next_push_s = now + session.sub_interval_s;
        did_work = true;
    }
    return did_work;
}

void Service::tap_subscribers(FlightTapReason reason,
                              const std::string& path) {
    FlightTap tap;
    tap.reason = static_cast<std::uint8_t>(reason);
    tap.revision = timeseries_.revision();
    tap.path = path;
    for (auto& [id, session] : sessions_) {
        if (!session.subscribed ||
            (session.sub_flags & kSubscribeFlightTap) == 0)
            continue;
        if (push_telemetry(id, session, Message{tap})) {
            ++stats_.flight_taps;
            count("service.flight_taps");
        }
    }
}

void Service::check_slo_alarm() {
    if (options_.slo_burn_alarm <= 0.0) return;
    const double now = clock_.now_s();
    if (now < slo_alarm_ready_s_) return;  // cooldown
    if (slo_.window_total(now) < options_.slo_alarm_min_requests) return;
    if (slo_.burn_rate(now) < options_.slo_burn_alarm) return;
    // The deadline-miss rate is burning through the budget fast enough
    // to call it an incident: leave a post-mortem and tell whoever is
    // watching.
    ++stats_.slo_alarms;
    count("service.slo.alarms");
    slo_alarm_ready_s_ = now + options_.slo_alarm_cooldown_s;
    std::string dump_path;
    if (const auto path = obs::write_flight(options_.slo_flight_dump_name)) {
        dump_path = *path;
        ++stats_.flight_dumps;
        count("service.flight_dumps");
    }
    tap_subscribers(FlightTapReason::kSloBurn, dump_path);
}

void Service::publish_slo_gauges(double now_s) {
    if (!obs::enabled()) return;
    auto& registry = obs::MetricsRegistry::global();
    registry.gauge("service.slo.burn_rate").set(slo_.burn_rate(now_s));
    registry.gauge("service.slo.compliance").set(slo_.compliance(now_s));
    registry.gauge("service.slo.window_requests")
        .set(static_cast<double>(slo_.window_total(now_s)));
    registry.gauge("service.slo.window_misses")
        .set(static_cast<double>(slo_.window_misses(now_s)));
}

}  // namespace press::control
