// Control-plane message definitions.
//
// Frame layout (little-endian):
//   magic       u16   0x5052 ("PR")
//   version     u8    1 or 2
//   type        u8    MessageType
//   seq         u32   sender sequence number
//   trace_id    u64   version 2 only: obs trace the frame belongs to
//   parent_span u64   version 2 only: causal parent span on the sender
//   len         u16   payload byte count
//   payload     len bytes
//   crc         u16   CRC-16/CCITT over everything before it
//
// Version 2 frames carry the sender's obs::TraceContext so the receiving
// endpoint can adopt it — the 16 extra header bytes are what lets a span
// tree follow a configuration across the simulated wire (and they cost
// real airtime: transfer pricing sees the larger frame). The encoder
// emits version 1 whenever there is no valid context (telemetry off, or
// no open span), so untraced traffic is byte-identical to before;
// decode() accepts both versions.
//
// Four messages cover the actuation loop: the controller pushes element
// states with SetConfig (acked), asks an endpoint to measure with
// MeasureRequest, and receives per-subcarrier SNR in centi-dB fixed point
// with MeasureReport.
//
// Types 5-13 are the control-plane *service* protocol (control/service.hpp):
// a client opens a session with Hello, submits deadline-tagged
// OptimizeRequests and epoch-fenced MutateRequests, and receives either a
// terminal reply or an explicit Reject — the service never drops an
// admitted request silently. All service frames reuse the same framing,
// CRC and optional trace header as the actuation messages.
// Types 14-16 are the live introspection plane (v2-style growth: a new
// type value on the same framing, so old clients never see — and never
// need to decode — the new frames): Subscribe opens a telemetry stream
// on the session, TelemetryFrame pushes one `press.timeseries/v1`
// window document, FlightTap notifies subscribers that the service just
// dumped its flight recorder (watchdog trip or SLO burn alarm).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "control/wire.hpp"
#include "obs/trace.hpp"
#include "press/config.hpp"

namespace press::control {

enum class MessageType : std::uint8_t {
    kSetConfig = 1,
    kSetConfigAck = 2,
    kMeasureRequest = 3,
    kMeasureReport = 4,
    // Service protocol (control/service.hpp).
    kHello = 5,
    kHelloAck = 6,
    kOptimizeRequest = 7,
    kOptimizeReply = 8,
    kMutateRequest = 9,
    kMutateReply = 10,
    kReject = 11,
    kStatusRequest = 12,
    kStatusReply = 13,
    // Introspection plane (streaming telemetry; see control/service.hpp).
    kSubscribe = 14,
    kTelemetryFrame = 15,
    kFlightTap = 16,
};

/// Why the service refused a request (Reject::reason).
enum class RejectReason : std::uint8_t {
    kQueueFull = 1,     ///< bounded request queue saturated
    kExpired = 2,       ///< deadline passed while the request sat queued
    kShed = 3,          ///< load shedding (low priority under overload)
    kBadRequest = 4,    ///< unknown array/link/searcher/objective
    kDuplicate = 5,     ///< sequence number already seen this session
    kBackpressure = 6,  ///< session outbox full (slow reader)
};

const char* to_string(RejectReason reason);

/// Controller -> array: apply this configuration.
struct SetConfig {
    std::uint16_t array_id = 0;
    surface::Config config;
};

/// Array -> controller: configuration applied (status 0) or rejected.
struct SetConfigAck {
    std::uint16_t array_id = 0;
    std::uint8_t status = 0;
};

/// Controller -> receiver endpoint: sound link `link_id` with `repeats`
/// training repetitions.
struct MeasureRequest {
    std::uint16_t link_id = 0;
    std::uint16_t repeats = 10;
};

/// Receiver endpoint -> controller: measured per-subcarrier SNR.
struct MeasureReport {
    std::uint16_t link_id = 0;
    /// SNR per used subcarrier in centi-dB (0.01 dB resolution, +-327 dB
    /// range), the quantization a 2-byte wire format imposes.
    std::vector<std::int16_t> snr_centi_db;

    void set_snr_db(const std::vector<double>& snr_db);
    std::vector<double> snr_db() const;
};

/// Client -> service: open (or re-tune) a session. `priority_cap` bounds
/// every later request's priority — an operator knob to tame a client.
struct Hello {
    std::uint8_t priority_cap = 255;
};

/// Service -> client: session accepted.
struct HelloAck {
    std::uint16_t session_id = 0;
    std::uint64_t epoch = 0;
};

/// Client -> service: run one optimize cycle. The deadline bounds queue
/// wait on the service's SimClock (an expired request is rejected, never
/// run late); the budget is the simulated coherence-time the search may
/// spend once started.
struct OptimizeRequest {
    std::uint16_t array_id = 0;
    std::uint8_t objective = 1;  ///< ServiceObjective
    std::uint16_t link_id = 0;
    std::uint8_t searcher = 1;  ///< ServiceSearcher
    std::uint32_t budget_us = 20000;
    std::uint32_t deadline_us = 0;  ///< relative to arrival; 0 = default
    std::uint8_t priority = 128;    ///< larger = more important
};

/// Objective selector carried by OptimizeRequest::objective. Values 1-2
/// are single-link objectives over the request's link_id, routed through
/// optimize_fast. Values >= 3 are composite multi-link PRESETS over every
/// registered link, routed through System::optimize_multilink's shared
/// basis (docs/OBJECTIVES.md has the exact term semantics); for
/// kNullVictim the request's link_id names the victim link to null and
/// the scene must have at least two links.
enum class ServiceObjective : std::uint8_t {
    kMinSnr = 1,
    kMeanSnr = 2,
    kMaxMinFair = 3,  ///< max-min fairness over per-link mean SNRs
    kSumMean = 4,     ///< sum of per-link mean SNRs
    kQosFloor = 5,    ///< sum of mean SNRs with a 10 dB hinge floor
    kNullVictim = 6,  ///< serve all links, null link_id
};

/// Searcher selector carried by OptimizeRequest::searcher.
enum class ServiceSearcher : std::uint8_t {
    kGreedy = 1,
    kExhaustive = 2,
    kRandom = 3,
    kAnnealing = 4,
    kGenetic = 5,
};

/// Service -> client: the terminal reply to an executed OptimizeRequest.
struct OptimizeReply {
    std::uint8_t status = 0;  ///< 0 ok, 1 search failed/degraded
    std::uint64_t epoch = 0;  ///< scene epoch the cycle ran against
    std::int32_t best_score_centi = 0;  ///< objective score, 0.01 units
    std::uint32_t evaluations = 0;
    std::uint32_t queue_wait_us = 0;  ///< wall time queued
    std::uint32_t compute_us = 0;     ///< wall time searching
};

/// Client -> service: set one element's state. Fenced by epochs: applied
/// at the next epoch boundary, never while an optimize cycle is running.
struct MutateRequest {
    std::uint16_t array_id = 0;
    std::uint16_t element = 0;
    std::uint8_t state = 0;
};

/// Service -> client: the mutation landed (status 0) in `epoch`.
struct MutateReply {
    std::uint8_t status = 0;
    std::uint64_t epoch = 0;
};

/// Service -> client: explicit refusal (see RejectReason). Every admitted
/// or refused request produces exactly one terminal frame; Reject is the
/// refusal half of that contract.
struct Reject {
    std::uint8_t reason = 0;
    std::uint16_t queue_depth = 0;
};

/// Client -> service: sample the service counters.
struct StatusRequest {};

/// Service -> client: live service counters. `uptime_s` (millisecond
/// wire resolution) and `revision` — the monotonic metrics-snapshot
/// revision of the service's Timeseries sampler — let a poller detect a
/// daemon restart: either one moving backwards between polls means a
/// different process is answering.
struct StatusReply {
    std::uint64_t epoch = 0;
    std::uint16_t queue_depth = 0;
    std::uint64_t served = 0;
    std::uint64_t rejected = 0;
    std::uint64_t expired = 0;
    double uptime_s = 0.0;       ///< service clock since construction
    std::uint64_t revision = 0;  ///< telemetry snapshot revision
};

/// Subscribe::flags bits.
inline constexpr std::uint8_t kSubscribeExemplars = 0x01;
inline constexpr std::uint8_t kSubscribeFlightTap = 0x02;

/// Client -> service: stream telemetry frames on this session. The
/// service answers immediately with the newest TelemetryFrame (the
/// subscription ack) and then pushes one frame roughly every
/// `interval_us` of service-clock time, filtered to metric names
/// starting with `prefix`. `interval_us == 0` cancels the stream (also
/// acked with a final frame). Telemetry pushes ride the normal session
/// outbox but are drop-oldest under backpressure — they can displace
/// each other, never a reply.
struct Subscribe {
    std::string prefix;                   ///< metric name filter ("" = all)
    std::uint32_t interval_us = 500000;   ///< push cadence; 0 = unsubscribe
    std::uint8_t flags =
        kSubscribeExemplars | kSubscribeFlightTap;
};

/// Service -> client: one sampled telemetry window. `payload` is a
/// `press.timeseries/v1` JSON document (obs/timeseries.hpp); `revision`
/// duplicates the document's revision so a client can drop stale or
/// repeated windows without parsing.
struct TelemetryFrame {
    std::uint64_t revision = 0;
    std::string payload;
};

/// Why the service dumped its flight recorder (FlightTap::reason).
enum class FlightTapReason : std::uint8_t {
    kWatchdog = 1,  ///< stuck/failed optimize cycle
    kSloBurn = 2,   ///< deadline-miss burn rate crossed the alarm
};

const char* to_string(FlightTapReason reason);

/// Service -> client (subscribers with kSubscribeFlightTap): the flight
/// recorder was just dumped; `path` is where the press.flight/v1
/// document landed (empty if the write failed).
struct FlightTap {
    std::uint8_t reason = 0;     ///< FlightTapReason
    std::uint64_t revision = 0;  ///< telemetry revision at the dump
    std::string path;
};

using Message =
    std::variant<SetConfig, SetConfigAck, MeasureRequest, MeasureReport,
                 Hello, HelloAck, OptimizeRequest, OptimizeReply,
                 MutateRequest, MutateReply, Reject, StatusRequest,
                 StatusReply, Subscribe, TelemetryFrame, FlightTap>;

/// Serializes a message with header, sequence number and CRC as a
/// version 1 frame (no trace header).
std::vector<std::uint8_t> encode(const Message& msg, std::uint32_t seq);

/// Serializes with a causal context: a version 2 frame carrying `trace`
/// when it is valid, else a version 1 frame identical to the overload
/// above. Senders pass obs::current_context() to let the receiving
/// endpoint adopt their open span.
std::vector<std::uint8_t> encode(const Message& msg, std::uint32_t seq,
                                 const obs::TraceContext& trace);

/// Decoded message plus its header sequence number and — for version 2
/// frames — the sender's causal context (invalid for version 1).
struct Decoded {
    Message message;
    std::uint32_t seq = 0;
    obs::TraceContext trace;
};

/// Parses a buffer; throws ProtocolError on any malformation.
Decoded decode(const std::vector<std::uint8_t>& buffer);

/// Wire size of a message once encoded (header + payload + CRC).
std::size_t encoded_size(const Message& msg);

}  // namespace press::control
