// Control-plane message definitions.
//
// Frame layout (little-endian):
//   magic       u16   0x5052 ("PR")
//   version     u8    1 or 2
//   type        u8    MessageType
//   seq         u32   sender sequence number
//   trace_id    u64   version 2 only: obs trace the frame belongs to
//   parent_span u64   version 2 only: causal parent span on the sender
//   len         u16   payload byte count
//   payload     len bytes
//   crc         u16   CRC-16/CCITT over everything before it
//
// Version 2 frames carry the sender's obs::TraceContext so the receiving
// endpoint can adopt it — the 16 extra header bytes are what lets a span
// tree follow a configuration across the simulated wire (and they cost
// real airtime: transfer pricing sees the larger frame). The encoder
// emits version 1 whenever there is no valid context (telemetry off, or
// no open span), so untraced traffic is byte-identical to before;
// decode() accepts both versions.
//
// Four messages cover the actuation loop: the controller pushes element
// states with SetConfig (acked), asks an endpoint to measure with
// MeasureRequest, and receives per-subcarrier SNR in centi-dB fixed point
// with MeasureReport.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "control/wire.hpp"
#include "obs/trace.hpp"
#include "press/config.hpp"

namespace press::control {

enum class MessageType : std::uint8_t {
    kSetConfig = 1,
    kSetConfigAck = 2,
    kMeasureRequest = 3,
    kMeasureReport = 4,
};

/// Controller -> array: apply this configuration.
struct SetConfig {
    std::uint16_t array_id = 0;
    surface::Config config;
};

/// Array -> controller: configuration applied (status 0) or rejected.
struct SetConfigAck {
    std::uint16_t array_id = 0;
    std::uint8_t status = 0;
};

/// Controller -> receiver endpoint: sound link `link_id` with `repeats`
/// training repetitions.
struct MeasureRequest {
    std::uint16_t link_id = 0;
    std::uint16_t repeats = 10;
};

/// Receiver endpoint -> controller: measured per-subcarrier SNR.
struct MeasureReport {
    std::uint16_t link_id = 0;
    /// SNR per used subcarrier in centi-dB (0.01 dB resolution, +-327 dB
    /// range), the quantization a 2-byte wire format imposes.
    std::vector<std::int16_t> snr_centi_db;

    void set_snr_db(const std::vector<double>& snr_db);
    std::vector<double> snr_db() const;
};

using Message = std::variant<SetConfig, SetConfigAck, MeasureRequest,
                             MeasureReport>;

/// Serializes a message with header, sequence number and CRC as a
/// version 1 frame (no trace header).
std::vector<std::uint8_t> encode(const Message& msg, std::uint32_t seq);

/// Serializes with a causal context: a version 2 frame carrying `trace`
/// when it is valid, else a version 1 frame identical to the overload
/// above. Senders pass obs::current_context() to let the receiving
/// endpoint adopt their open span.
std::vector<std::uint8_t> encode(const Message& msg, std::uint32_t seq,
                                 const obs::TraceContext& trace);

/// Decoded message plus its header sequence number and — for version 2
/// frames — the sender's causal context (invalid for version 1).
struct Decoded {
    Message message;
    std::uint32_t seq = 0;
    obs::TraceContext trace;
};

/// Parses a buffer; throws ProtocolError on any malformation.
Decoded decode(const std::vector<std::uint8_t>& buffer);

/// Wire size of a message once encoded (header + payload + CRC).
std::size_t encoded_size(const Message& msg);

}  // namespace press::control
