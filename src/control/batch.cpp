#include "control/batch.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/contracts.hpp"

namespace press::control {

std::size_t BatchEvaluator::resolve_threads(std::size_t requested) {
    if (requested != 0) return requested;
    if (const char* env = std::getenv("PRESS_THREADS")) {
        char* end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && parsed > 0)
            return static_cast<std::size_t>(std::min(parsed, 64L));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::uint64_t BatchEvaluator::candidate_seed(std::uint64_t seed,
                                             std::uint64_t index) {
    // splitmix64 over the (seed, index) pair: cheap, well-distributed, and
    // independent of evaluation order or thread assignment.
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (index + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

BatchEvaluator::BatchEvaluator(BatchScoreFn score, std::uint64_t seed,
                               std::size_t threads)
    : score_(std::move(score)), seed_(seed) {
    PRESS_EXPECTS(score_ != nullptr, "score callback required");
    const std::size_t n = resolve_threads(threads);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this]() { worker_loop(); });
}

BatchEvaluator::~BatchEvaluator() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void BatchEvaluator::worker_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_cv_.wait(lock, [this]() {
            return shutdown_ || (batch_ && next_ < batch_->size());
        });
        if (shutdown_) return;
        while (batch_ && next_ < batch_->size()) {
            const std::vector<surface::Config>* batch = batch_;
            const std::size_t i = next_++;
            const std::uint64_t index = base_index_ + i;
            lock.unlock();
            double value = 0.0;
            std::exception_ptr error;
            try {
                util::Rng rng(candidate_seed(seed_, index));
                value = score_((*batch)[i], rng);
            } catch (...) {
                error = std::current_exception();
            }
            lock.lock();
            (*results_)[i] = value;
            if (error && !first_error_) first_error_ = error;
            if (--remaining_ == 0) done_cv_.notify_all();
        }
    }
}

std::vector<double> BatchEvaluator::evaluate(
    const std::vector<surface::Config>& batch) {
    std::vector<double> results(batch.size(), 0.0);
    if (batch.empty()) return results;
    std::unique_lock<std::mutex> lock(mutex_);
    PRESS_EXPECTS(batch_ == nullptr,
                  "evaluate() is not reentrant on one evaluator");
    batch_ = &batch;
    results_ = &results;
    next_ = 0;
    remaining_ = batch.size();
    first_error_ = nullptr;
    work_cv_.notify_all();
    done_cv_.wait(lock, [this]() { return remaining_ == 0; });
    batch_ = nullptr;
    results_ = nullptr;
    base_index_ += batch.size();
    if (first_error_) std::rethrow_exception(first_error_);
    return results;
}

}  // namespace press::control
