#include "control/batch.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <string>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace press::control {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
}

}  // namespace

bool coordinate_delta_enabled() {
    const char* env = std::getenv("PRESS_DELTA");
    if (env == nullptr) return true;
    std::string value(env);
    std::transform(value.begin(), value.end(), value.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return !(value == "0" || value == "off" || value == "false");
}

std::size_t BatchEvaluator::resolve_threads(std::size_t requested) {
    if (requested != 0) return requested;
    // obs::env_threads() owns the PRESS_THREADS policy (clamp to [1, 64])
    // so the run manifest and the evaluator can never disagree about the
    // resolved thread count.
    if (const std::size_t env = obs::env_threads(); env != 0) return env;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::uint64_t BatchEvaluator::candidate_seed(std::uint64_t seed,
                                             std::uint64_t index) {
    // splitmix64 over the (seed, index) pair: cheap, well-distributed, and
    // independent of evaluation order or thread assignment.
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (index + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

BatchEvaluator::BatchEvaluator(BatchScoreFn score, std::uint64_t seed,
                               std::size_t threads)
    : score_(std::move(score)), seed_(seed) {
    PRESS_EXPECTS(score_ != nullptr, "score callback required");
    const std::size_t n = resolve_threads(threads);
    stats_.resize(n);
    scratch_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        scratch_.push_back(std::make_unique<EvalScratch>());
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this, i]() { worker_loop(i); });
}

BatchEvaluator::~BatchEvaluator() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void BatchEvaluator::set_coordinate_score(CoordinateScoreFn fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    PRESS_EXPECTS(batch_ == nullptr && coord_ == nullptr,
                  "cannot swap callbacks while a batch is in flight");
    coord_score_ = std::move(fn);
}

void BatchEvaluator::worker_loop(std::size_t index) {
    std::unique_lock<std::mutex> lock(mutex_);
    WorkerStats& stats = stats_[index];
    EvalScratch& scratch = *scratch_[index];
    for (;;) {
        const auto wait_start = std::chrono::steady_clock::now();
        work_cv_.wait(lock, [this]() {
            return shutdown_ || next_ < num_tasks_;
        });
        // Accounted under the lock; the condvar wait itself released it.
        stats.idle_s +=
            seconds_between(wait_start, std::chrono::steady_clock::now());
        if (shutdown_) return;
        if (!(next_ < num_tasks_)) continue;
        // One span per worker per batch participation — not one per
        // candidate, which would flood the span ring on large searches.
        // The worker adopts the caller's evaluate-span context, so the
        // span tree crosses the pool threads; per-candidate latency goes
        // to the control.batch.eval_us histogram instead (lock-free).
        obs::ContextGuard adopt(batch_ctx_);
        obs::TraceSpan batch_span("control.batch.worker_batch");
        while (next_ < num_tasks_) {
            const std::vector<surface::Config>* batch = batch_;
            const CoordinateBatch* coord = coord_;
            const std::size_t i = next_++;
            const std::uint64_t index_global = base_index_ + i;
            lock.unlock();
            const auto task_start = std::chrono::steady_clock::now();
            double value = 0.0;
            std::exception_ptr error;
            try {
                util::Rng rng(candidate_seed(seed_, index_global));
                value = batch ? score_((*batch)[i], rng, scratch)
                              : coord_score_(*coord, i, rng, scratch);
            } catch (...) {
                error = std::current_exception();
            }
            const auto task_end = std::chrono::steady_clock::now();
            if (obs::enabled()) {
                static obs::Histogram& eval_us =
                    obs::MetricsRegistry::global().histogram(
                        "control.batch.eval_us",
                        {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                         500.0, 1000.0, 2000.0, 5000.0, 10000.0});
                eval_us.observe(
                    seconds_between(task_start, task_end) * 1e6);
            }
            lock.lock();
            stats.tasks += 1;
            stats.busy_s += seconds_between(task_start, task_end);
            (*results_)[i] = value;
            if (error && !first_error_) first_error_ = error;
            if (--remaining_ == 0) done_cv_.notify_all();
        }
    }
}

std::vector<BatchEvaluator::WorkerStats> BatchEvaluator::worker_stats()
    const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

BatchEvaluator::ArenaStats BatchEvaluator::arena_stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    ArenaStats total;
    for (const auto& s : scratch_) {
        total.grow_events += s->grow_events;
        total.bytes_reserved += s->bytes_reserved;
    }
    return total;
}

void BatchEvaluator::publish_worker_stats() const {
    if (!obs::enabled()) return;
    const std::vector<WorkerStats> stats = worker_stats();
    const ArenaStats arena = arena_stats();
    auto& registry = obs::MetricsRegistry::global();
    registry.gauge("control.batch.threads")
        .set(static_cast<double>(stats.size()));
    registry.gauge("control.batch.arena.grow_events")
        .set(static_cast<double>(arena.grow_events));
    registry.gauge("control.batch.arena.bytes_reserved")
        .set(static_cast<double>(arena.bytes_reserved));
    for (std::size_t i = 0; i < stats.size(); ++i) {
        const std::string prefix =
            "control.batch.worker." + std::to_string(i);
        registry.gauge(prefix + ".tasks")
            .set(static_cast<double>(stats[i].tasks));
        registry.gauge(prefix + ".busy_s").set(stats[i].busy_s);
        registry.gauge(prefix + ".idle_s").set(stats[i].idle_s);
    }
}

void BatchEvaluator::run_tasks(std::size_t num_tasks,
                               std::vector<double>& results) {
    // The batch's causal anchor: workers adopt this span's context, so
    // their worker_batch spans parent into it across the pool threads.
    obs::TraceSpan span("control.batch.evaluate");
    std::unique_lock<std::mutex> lock(mutex_);
    batch_ctx_ = span.context();
    results_ = &results;
    next_ = 0;
    num_tasks_ = num_tasks;
    remaining_ = num_tasks;
    first_error_ = nullptr;
    work_cv_.notify_all();
    done_cv_.wait(lock, [this]() { return remaining_ == 0; });
    batch_ = nullptr;
    coord_ = nullptr;
    results_ = nullptr;
    num_tasks_ = 0;
    batch_ctx_ = obs::TraceContext{};
    base_index_ += num_tasks;
    if (obs::enabled()) {
        static obs::Counter& batches =
            obs::MetricsRegistry::global().counter("control.batch.batches");
        static obs::Counter& evaluations =
            obs::MetricsRegistry::global().counter(
                "control.batch.evaluations");
        batches.add();
        evaluations.add(num_tasks);
    }
    if (first_error_) std::rethrow_exception(first_error_);
}

std::vector<double> BatchEvaluator::evaluate(
    const std::vector<surface::Config>& batch) {
    std::vector<double> results(batch.size(), 0.0);
    if (batch.empty()) return results;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        PRESS_EXPECTS(batch_ == nullptr && coord_ == nullptr,
                      "evaluate() is not reentrant on one evaluator");
        batch_ = &batch;
    }
    run_tasks(batch.size(), results);
    return results;
}

std::vector<double> BatchEvaluator::evaluate_coordinate(
    const CoordinateBatch& batch) {
    PRESS_EXPECTS(batch.base != nullptr && batch.states != nullptr,
                  "coordinate batch must carry a base and states");
    std::vector<double> results(batch.states->size(), 0.0);
    if (batch.states->empty()) return results;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        PRESS_EXPECTS(coord_score_ != nullptr,
                      "set_coordinate_score() before evaluate_coordinate()");
        PRESS_EXPECTS(batch_ == nullptr && coord_ == nullptr,
                      "evaluate() is not reentrant on one evaluator");
        coord_ = &batch;
    }
    run_tasks(batch.states->size(), results);
    return results;
}

}  // namespace press::control
