#include "control/batch.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <string>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace press::control {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
}

/// Best-effort affinity: worker i sticks to CPU i mod hardware
/// concurrency. Failure is ignored (cpusets, containers) — pinning is an
/// optimization, never a correctness requirement.
void pin_to_cpu(std::size_t worker_index) {
#if defined(__linux__)
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) return;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<int>(worker_index % hw), &set);
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
    (void)worker_index;
#endif
}

}  // namespace

bool coordinate_delta_enabled() {
    const char* env = std::getenv("PRESS_DELTA");
    if (env == nullptr) return true;
    std::string value(env);
    std::transform(value.begin(), value.end(), value.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return !(value == "0" || value == "off" || value == "false");
}

bool thread_pinning_enabled() {
    const char* env = std::getenv("PRESS_PIN");
    if (env == nullptr) return false;
    std::string value(env);
    std::transform(value.begin(), value.end(), value.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return !(value.empty() || value == "0" || value == "off" ||
             value == "false");
}

std::size_t BatchEvaluator::shard_size_for(std::size_t tasks,
                                           std::size_t workers) {
    // ~4 shards per worker balances lock traffic against tail imbalance:
    // the last shards are small enough that no worker is left holding a
    // long serial tail while the rest of the pool idles.
    constexpr std::size_t kShardsPerWorker = 4;
    if (tasks == 0 || workers == 0) return 1;
    const std::size_t target = workers * kShardsPerWorker;
    return std::max<std::size_t>(1, (tasks + target - 1) / target);
}

std::size_t BatchEvaluator::shard_size_for(std::size_t tasks,
                                           std::size_t workers,
                                           std::size_t task_weight) {
    const std::size_t base = shard_size_for(tasks, workers);
    if (task_weight <= 1) return base;
    // A shard sized for single-link sweeps turns into a long serial tail
    // when every candidate carries N stacked links of work, so cap one
    // claim at ~kMaxShardTiles (candidate x link) tiles. The floor of one
    // candidate stands: a task is never split across workers (its rng
    // stream spans all of its links).
    constexpr std::size_t kMaxShardTiles = 64;
    const std::size_t cap =
        std::max<std::size_t>(1, kMaxShardTiles / task_weight);
    return std::min(base, cap);
}

void BatchEvaluator::set_task_weight(std::size_t tiles_per_task) {
    std::lock_guard<std::mutex> lock(mutex_);
    PRESS_EXPECTS(batch_ == nullptr && coord_ == nullptr,
                  "set_task_weight() must not race an in-flight batch");
    task_weight_ = std::max<std::size_t>(1, tiles_per_task);
    if (obs::enabled()) {
        obs::MetricsRegistry::global()
            .gauge("control.batch.task_weight")
            .set(static_cast<double>(task_weight_));
    }
}

std::size_t BatchEvaluator::resolve_threads(std::size_t requested) {
    if (requested != 0) return requested;
    // obs::env_threads() owns the PRESS_THREADS policy (clamp to [1, 64])
    // so the run manifest and the evaluator can never disagree about the
    // resolved thread count.
    if (const std::size_t env = obs::env_threads(); env != 0) return env;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::uint64_t BatchEvaluator::candidate_seed(std::uint64_t seed,
                                             std::uint64_t index) {
    // splitmix64 over the (seed, index) pair: cheap, well-distributed, and
    // independent of evaluation order or thread assignment.
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (index + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

BatchEvaluator::BatchEvaluator(BatchScoreFn score, std::uint64_t seed,
                               std::size_t threads)
    : score_(std::move(score)), seed_(seed) {
    PRESS_EXPECTS(score_ != nullptr, "score callback required");
    const std::size_t n = resolve_threads(threads);
    stats_.resize(n);
    scratch_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        scratch_.push_back(std::make_unique<EvalScratch>());
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this, i]() { worker_loop(i); });
}

BatchEvaluator::~BatchEvaluator() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void BatchEvaluator::set_coordinate_score(CoordinateScoreFn fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    PRESS_EXPECTS(batch_ == nullptr && coord_ == nullptr,
                  "cannot swap callbacks while a batch is in flight");
    coord_score_ = std::move(fn);
}

void BatchEvaluator::worker_loop(std::size_t index) {
    if (thread_pinning_enabled()) pin_to_cpu(index);
    std::unique_lock<std::mutex> lock(mutex_);
    WorkerStats& stats = stats_[index];
    EvalScratch& scratch = *scratch_[index];
    for (;;) {
        const auto wait_start = std::chrono::steady_clock::now();
        work_cv_.wait(lock, [this]() {
            return shutdown_ || next_ < num_tasks_;
        });
        // Accounted under the lock; the condvar wait itself released it.
        stats.idle_s +=
            seconds_between(wait_start, std::chrono::steady_clock::now());
        if (shutdown_) return;
        if (!(next_ < num_tasks_)) continue;
        // One span per worker per batch participation — not one per
        // candidate, which would flood the span ring on large searches.
        // The worker adopts the caller's evaluate-span context, so the
        // span tree crosses the pool threads; per-candidate latency goes
        // to the control.batch.eval_us histogram instead (lock-free).
        obs::ContextGuard adopt(batch_ctx_);
        obs::TraceSpan batch_span("control.batch.worker_batch");
        while (next_ < num_tasks_) {
            // Claim a contiguous shard under the lock, score it without.
            const std::vector<surface::Config>* batch = batch_;
            const CoordinateBatch* coord = coord_;
            std::vector<double>* results = results_;
            const std::size_t begin = next_;
            const std::size_t end =
                std::min(begin + shard_size_, num_tasks_);
            next_ = end;
            const std::uint64_t base = base_index_;
            lock.unlock();
            double busy = 0.0;
            std::exception_ptr error;
            for (std::size_t i = begin; i < end; ++i) {
                const auto task_start = std::chrono::steady_clock::now();
                double value = 0.0;
                try {
                    util::Rng rng(candidate_seed(seed_, base + i));
                    value = batch ? score_((*batch)[i], rng, scratch)
                                  : coord_score_(*coord, i, rng, scratch);
                } catch (...) {
                    if (!error) error = std::current_exception();
                }
                const auto task_end = std::chrono::steady_clock::now();
                busy += seconds_between(task_start, task_end);
                if (obs::enabled()) {
                    static obs::Histogram& eval_us =
                        obs::MetricsRegistry::global().histogram(
                            "control.batch.eval_us",
                            {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                             500.0, 1000.0, 2000.0, 5000.0, 10000.0});
                    eval_us.observe(
                        seconds_between(task_start, task_end) * 1e6);
                }
                // Slot i belongs to this shard alone; the caller only
                // reads results after observing remaining_ == 0 under the
                // mutex, which orders these plain writes.
                (*results)[i] = value;
            }
            lock.lock();
            stats.tasks += end - begin;
            stats.shards += 1;
            stats.busy_s += busy;
            if (error && !first_error_) first_error_ = error;
            remaining_ -= end - begin;
            if (remaining_ == 0) done_cv_.notify_all();
        }
    }
}

std::vector<BatchEvaluator::WorkerStats> BatchEvaluator::worker_stats()
    const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

BatchEvaluator::ArenaStats BatchEvaluator::arena_stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    ArenaStats total;
    for (const auto& s : scratch_) {
        total.grow_events += s->grow_events;
        total.bytes_reserved += s->bytes_reserved;
    }
    return total;
}

void BatchEvaluator::publish_worker_stats() const {
    if (!obs::enabled()) return;
    const std::vector<WorkerStats> stats = worker_stats();
    const ArenaStats arena = arena_stats();
    auto& registry = obs::MetricsRegistry::global();
    registry.gauge("control.batch.threads")
        .set(static_cast<double>(stats.size()));
    registry.gauge("control.batch.pinned")
        .set(thread_pinning_enabled() ? 1.0 : 0.0);
    registry.gauge("control.batch.arena.grow_events")
        .set(static_cast<double>(arena.grow_events));
    registry.gauge("control.batch.arena.bytes_reserved")
        .set(static_cast<double>(arena.bytes_reserved));
    for (std::size_t i = 0; i < stats.size(); ++i) {
        const std::string prefix =
            "control.batch.worker." + std::to_string(i);
        registry.gauge(prefix + ".tasks")
            .set(static_cast<double>(stats[i].tasks));
        registry.gauge(prefix + ".shards")
            .set(static_cast<double>(stats[i].shards));
        registry.gauge(prefix + ".busy_s").set(stats[i].busy_s);
        registry.gauge(prefix + ".idle_s").set(stats[i].idle_s);
    }
}

void BatchEvaluator::run_tasks(std::size_t num_tasks,
                               std::vector<double>& results) {
    // The batch's causal anchor: workers adopt this span's context, so
    // their worker_batch spans parent into it across the pool threads.
    obs::TraceSpan span("control.batch.evaluate");
    std::unique_lock<std::mutex> lock(mutex_);
    batch_ctx_ = span.context();
    results_ = &results;
    next_ = 0;
    shard_size_ = shard_size_for(num_tasks, workers_.size(), task_weight_);
    num_tasks_ = num_tasks;
    remaining_ = num_tasks;
    first_error_ = nullptr;
    work_cv_.notify_all();
    done_cv_.wait(lock, [this]() { return remaining_ == 0; });
    batch_ = nullptr;
    coord_ = nullptr;
    results_ = nullptr;
    num_tasks_ = 0;
    batch_ctx_ = obs::TraceContext{};
    base_index_ += num_tasks;
    if (obs::enabled()) {
        static obs::Counter& batches =
            obs::MetricsRegistry::global().counter("control.batch.batches");
        static obs::Counter& evaluations =
            obs::MetricsRegistry::global().counter(
                "control.batch.evaluations");
        // Shards are claimed as deterministic contiguous chunks, so the
        // count is exact regardless of which worker took which shard.
        static obs::Counter& shards = obs::MetricsRegistry::global().counter(
            "control.batch.shard.count");
        batches.add();
        evaluations.add(num_tasks);
        shards.add((num_tasks + shard_size_ - 1) / shard_size_);
    }
    if (first_error_) std::rethrow_exception(first_error_);
}

std::vector<double> BatchEvaluator::evaluate(
    const std::vector<surface::Config>& batch) {
    std::vector<double> results(batch.size(), 0.0);
    if (batch.empty()) return results;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        PRESS_EXPECTS(batch_ == nullptr && coord_ == nullptr,
                      "evaluate() is not reentrant on one evaluator");
        batch_ = &batch;
    }
    run_tasks(batch.size(), results);
    return results;
}

std::vector<double> BatchEvaluator::evaluate_coordinate(
    const CoordinateBatch& batch) {
    PRESS_EXPECTS(batch.base != nullptr && batch.states != nullptr,
                  "coordinate batch must carry a base and states");
    std::vector<double> results(batch.states->size(), 0.0);
    if (batch.states->empty()) return results;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        PRESS_EXPECTS(coord_score_ != nullptr,
                      "set_coordinate_score() before evaluate_coordinate()");
        PRESS_EXPECTS(batch_ == nullptr && coord_ == nullptr,
                      "evaluate() is not reentrant on one evaluator");
        coord_ = &batch;
    }
    run_tasks(batch.states->size(), results);
    return results;
}

}  // namespace press::control
