#include "control/search.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace press::control {

namespace {

/// Shared bookkeeping: runs evaluations, tracks the best and trajectory.
class Tracker {
public:
    Tracker(const EvalFn& eval, std::size_t max_evals, const StopFn& stop)
        : eval_(eval), max_evals_(max_evals), stop_(stop) {}

    bool exhausted() const {
        return result_.evaluations >= max_evals_ || (stop_ && stop_());
    }

    std::size_t evaluations() const { return result_.evaluations; }

    /// Evaluates `c` (unconditionally; strategies wanting memoization
    /// should avoid repeats themselves). Returns the score.
    double evaluate(const surface::Config& c) {
        PRESS_EXPECTS(!exhausted(), "evaluation budget exceeded");
        const double s = eval_(c);
        ++result_.evaluations;
        if (result_.trajectory.empty() || s > result_.best_score) {
            result_.best_score = s;
            result_.best_config = c;
        }
        result_.trajectory.push_back(result_.best_score);
        return s;
    }

    SearchResult take() { return std::move(result_); }

private:
    const EvalFn& eval_;
    std::size_t max_evals_;
    const StopFn& stop_;
    SearchResult result_;
};

/// Batched counterpart of Tracker: scores whole candidate groups through a
/// BatchEvalFn and folds them into the result in proposal order, so the
/// outcome is independent of how the callee parallelizes the batch.
class BatchTracker {
public:
    BatchTracker(const BatchEvalFn& eval, std::size_t max_evals,
                 const StopFn& stop)
        : eval_(eval), max_evals_(max_evals), stop_(stop) {}

    bool exhausted() const {
        return result_.evaluations >= max_evals_ || (stop_ && stop_());
    }

    std::size_t evaluations() const { return result_.evaluations; }
    std::size_t remaining() const {
        return max_evals_ - std::min(result_.evaluations, max_evals_);
    }

    /// Scores up to remaining() candidates from `batch` (truncating the
    /// tail if the budget runs short) and returns the scores actually
    /// produced — compare sizes to detect truncation.
    std::vector<double> evaluate(std::vector<surface::Config> batch) {
        PRESS_EXPECTS(!exhausted(), "evaluation budget exceeded");
        if (batch.size() > remaining()) batch.resize(remaining());
        std::vector<double> scores = eval_(batch);
        PRESS_EXPECTS(scores.size() == batch.size(),
                      "batch evaluator returned a mismatched score count");
        for (std::size_t i = 0; i < batch.size(); ++i) {
            ++result_.evaluations;
            if (result_.trajectory.empty() ||
                scores[i] > result_.best_score) {
                result_.best_score = scores[i];
                result_.best_config = batch[i];
            }
            result_.trajectory.push_back(result_.best_score);
        }
        return scores;
    }

    /// Coordinate-sweep counterpart: scores up to remaining() states of
    /// `element` over `base` through a CoordinateEvalFn (truncating the
    /// tail if the budget runs short) and folds them in proposal order —
    /// the same accounting evaluate() would do for the equivalent
    /// materialized batch.
    std::vector<double> evaluate_coordinate(const CoordinateEvalFn& coord,
                                            const surface::Config& base,
                                            std::size_t element,
                                            std::vector<int> states) {
        PRESS_EXPECTS(!exhausted(), "evaluation budget exceeded");
        if (states.size() > remaining()) states.resize(remaining());
        std::vector<double> scores = coord(base, element, states);
        PRESS_EXPECTS(scores.size() == states.size(),
                      "coordinate evaluator returned a mismatched score "
                      "count");
        for (std::size_t i = 0; i < states.size(); ++i) {
            ++result_.evaluations;
            if (result_.trajectory.empty() ||
                scores[i] > result_.best_score) {
                result_.best_score = scores[i];
                result_.best_config = base;
                result_.best_config[element] = states[i];
            }
            result_.trajectory.push_back(result_.best_score);
        }
        return scores;
    }

    SearchResult take() { return std::move(result_); }

private:
    const BatchEvalFn& eval_;
    std::size_t max_evals_;
    const StopFn& stop_;
    SearchResult result_;
};

/// FNV-1a over element states, for memoizing scored configurations.
struct ConfigHash {
    std::size_t operator()(const surface::Config& c) const {
        std::uint64_t h = 0xCBF29CE484222325ull;
        for (int v : c) {
            h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
            h *= 0x100000001B3ull;
        }
        return static_cast<std::size_t>(h);
    }
};

using ScoreMemo = std::unordered_map<surface::Config, double, ConfigHash>;

surface::Config random_config(const surface::ConfigSpace& space,
                              util::Rng& rng) {
    surface::Config c(space.num_elements());
    for (std::size_t i = 0; i < c.size(); ++i)
        c[i] = static_cast<int>(
            rng.uniform_int(0, space.radices()[i] - 1));
    return c;
}

}  // namespace

SearchResult Searcher::search_batched(const surface::ConfigSpace& space,
                                      const BatchEvalFn& eval,
                                      std::size_t max_evals, util::Rng& rng,
                                      const StopFn& stop,
                                      std::size_t batch_hint) const {
    // Default adapter: run the serial strategy through one-candidate
    // batches. Strategies with natural batch structure override this.
    (void)batch_hint;
    const EvalFn one = [&eval](const surface::Config& c) {
        const std::vector<double> scores =
            eval(std::vector<surface::Config>{c});
        PRESS_EXPECTS(scores.size() == 1,
                      "batch evaluator returned a mismatched score count");
        return scores[0];
    };
    return search(space, one, max_evals, rng, stop);
}

SearchResult Searcher::search_batched(const surface::ConfigSpace& space,
                                      const BatchEvalFn& eval,
                                      const CoordinateEvalFn& coordinate,
                                      std::size_t max_evals, util::Rng& rng,
                                      const StopFn& stop,
                                      std::size_t batch_hint) const {
    // Base adapter: strategies without coordinate structure simply ignore
    // the hook (virtual dispatch still reaches their batched override).
    (void)coordinate;
    return search_batched(space, eval, max_evals, rng, stop, batch_hint);
}

SearchResult ExhaustiveSearcher::search(const surface::ConfigSpace& space,
                                        const EvalFn& eval,
                                        std::size_t max_evals,
                                        util::Rng& rng,
                                        const StopFn& stop) const {
    (void)rng;
    PRESS_EXPECTS(max_evals >= 1, "need a positive budget");
    Tracker t(eval, max_evals, stop);
    const std::uint64_t n = space.size();
    for (std::uint64_t i = 0; i < n && !t.exhausted(); ++i)
        t.evaluate(space.at(i));
    return t.take();
}

SearchResult ExhaustiveSearcher::search_batched(
    const surface::ConfigSpace& space, const BatchEvalFn& eval,
    std::size_t max_evals, util::Rng& rng, const StopFn& stop,
    std::size_t batch_hint) const {
    (void)rng;
    PRESS_EXPECTS(max_evals >= 1, "need a positive budget");
    BatchTracker t(eval, max_evals, stop);
    const std::uint64_t n = space.size();
    const std::uint64_t chunk = std::max<std::uint64_t>(batch_hint, 1);
    std::uint64_t i = 0;
    while (i < n && !t.exhausted()) {
        const std::uint64_t take =
            std::min({chunk, n - i,
                      static_cast<std::uint64_t>(t.remaining())});
        std::vector<surface::Config> batch;
        batch.reserve(static_cast<std::size_t>(take));
        for (std::uint64_t j = 0; j < take; ++j)
            batch.push_back(space.at(i + j));
        t.evaluate(std::move(batch));
        i += take;
    }
    return t.take();
}

SearchResult RandomSearcher::search(const surface::ConfigSpace& space,
                                    const EvalFn& eval,
                                    std::size_t max_evals, util::Rng& rng,
                                    const StopFn& stop) const {
    PRESS_EXPECTS(max_evals >= 1, "need a positive budget");
    Tracker t(eval, max_evals, stop);
    while (!t.exhausted()) t.evaluate(random_config(space, rng));
    return t.take();
}

SearchResult GreedyCoordinateDescent::search(const surface::ConfigSpace& space,
                                             const EvalFn& eval,
                                             std::size_t max_evals,
                                             util::Rng& rng,
                                             const StopFn& stop) const {
    PRESS_EXPECTS(max_evals >= 1, "need a positive budget");
    Tracker t(eval, max_evals, stop);
    ScoreMemo memo;
    while (!t.exhausted()) {
        // One restart pass of the descent; nested under the caller's
        // optimize span, so a trace shows how rounds split the budget.
        obs::TraceSpan round_span("control.search.round");
        const std::size_t evals_at_restart = t.evaluations();
        surface::Config current = random_config(space, rng);
        double current_score;
        if (auto it = memo.find(current); it != memo.end()) {
            current_score = it->second;
        } else {
            current_score = t.evaluate(current);
            memo.emplace(current, current_score);
        }
        bool improved = true;
        while (improved && !t.exhausted()) {
            improved = false;
            for (std::size_t e = 0;
                 e < space.num_elements() && !t.exhausted(); ++e) {
                const int original = current[e];
                int best_state = original;
                for (int s = 0; s < space.radices()[e] && !t.exhausted();
                     ++s) {
                    if (s == original) continue;
                    current[e] = s;
                    double score;
                    if (auto it = memo.find(current); it != memo.end()) {
                        score = it->second;
                    } else {
                        score = t.evaluate(current);
                        memo.emplace(current, score);
                    }
                    if (score > current_score) {
                        current_score = score;
                        best_state = s;
                        improved = true;
                    }
                }
                current[e] = best_state;
            }
        }
        // Random restart when a local optimum is reached with budget left.
        // If the whole restart pass rode the memo (no fresh evaluations),
        // the reachable region is already scored — stop rather than spin.
        if (t.evaluations() == evals_at_restart) break;
    }
    return t.take();
}

SearchResult GreedyCoordinateDescent::search_batched(
    const surface::ConfigSpace& space, const BatchEvalFn& eval,
    std::size_t max_evals, util::Rng& rng, const StopFn& stop,
    std::size_t batch_hint) const {
    return search_batched(space, eval, CoordinateEvalFn{}, max_evals, rng,
                          stop, batch_hint);
}

SearchResult GreedyCoordinateDescent::search_batched(
    const surface::ConfigSpace& space, const BatchEvalFn& eval,
    const CoordinateEvalFn& coordinate, std::size_t max_evals,
    util::Rng& rng, const StopFn& stop, std::size_t batch_hint) const {
    (void)batch_hint;  // the sweep's natural batch is one element's states
    PRESS_EXPECTS(max_evals >= 1, "need a positive budget");
    BatchTracker t(eval, max_evals, stop);
    ScoreMemo memo;
    while (!t.exhausted()) {
        // One restart pass; same span name as the serial variant so the
        // two produce comparable trees.
        obs::TraceSpan round_span("control.search.round");
        const std::size_t evals_at_restart = t.evaluations();
        surface::Config current = random_config(space, rng);
        double current_score;
        if (auto it = memo.find(current); it != memo.end()) {
            current_score = it->second;
        } else {
            const std::vector<double> scores =
                t.evaluate(std::vector<surface::Config>{current});
            if (scores.empty()) break;
            current_score = scores[0];
            memo.emplace(current, current_score);
        }
        bool improved = true;
        while (improved && !t.exhausted()) {
            improved = false;
            for (std::size_t e = 0;
                 e < space.num_elements() && !t.exhausted(); ++e) {
                const int original = current[e];
                int best_state = original;
                double best_score = current_score;
                // Memoized alternatives are free; unseen ones become the
                // batch, in ascending state order (matching the serial
                // sweep's evaluation order). With a coordinate hook the
                // candidate configurations are never materialized — the
                // callee reconstructs them from (base, element, state).
                std::vector<int> fresh_states;
                std::vector<surface::Config> batch;
                for (int s = 0; s < space.radices()[e]; ++s) {
                    if (s == original) continue;
                    current[e] = s;
                    if (auto it = memo.find(current); it != memo.end()) {
                        if (it->second > best_score) {
                            best_score = it->second;
                            best_state = s;
                        }
                    } else {
                        fresh_states.push_back(s);
                        if (!coordinate) batch.push_back(current);
                    }
                }
                current[e] = original;
                if (!fresh_states.empty()) {
                    const std::vector<double> scores =
                        coordinate ? t.evaluate_coordinate(coordinate,
                                                           current, e,
                                                           fresh_states)
                                   : t.evaluate(std::move(batch));
                    // scores may be shorter than the proposal when the
                    // budget truncated the tail.
                    for (std::size_t i = 0; i < scores.size(); ++i) {
                        surface::Config scored = current;
                        scored[e] = fresh_states[i];
                        memo.emplace(std::move(scored), scores[i]);
                        if (scores[i] > best_score) {
                            best_score = scores[i];
                            best_state = fresh_states[i];
                        }
                    }
                }
                if (best_state != original) {
                    current[e] = best_state;
                    current_score = best_score;
                    improved = true;
                }
            }
        }
        if (t.evaluations() == evals_at_restart) break;
    }
    return t.take();
}

SimulatedAnnealingSearcher::SimulatedAnnealingSearcher(double initial_temp,
                                                       double cooling)
    : initial_temp_(initial_temp), cooling_(cooling) {
    PRESS_EXPECTS(initial_temp > 0.0, "temperature must be positive");
    PRESS_EXPECTS(cooling > 0.0 && cooling < 1.0, "cooling must be in (0,1)");
}

SearchResult SimulatedAnnealingSearcher::search(
    const surface::ConfigSpace& space, const EvalFn& eval,
    std::size_t max_evals, util::Rng& rng, const StopFn& stop) const {
    PRESS_EXPECTS(max_evals >= 1, "need a positive budget");
    Tracker t(eval, max_evals, stop);
    if (t.exhausted()) return t.take();
    surface::Config current = random_config(space, rng);
    double current_score = t.evaluate(current);
    double temp = initial_temp_;
    while (!t.exhausted()) {
        // Mutate one element to a different state (when it has one).
        surface::Config candidate = current;
        const std::size_t e = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(space.num_elements()) - 1));
        const int radix = space.radices()[e];
        if (radix > 1) {
            int s = static_cast<int>(rng.uniform_int(0, radix - 2));
            if (s >= candidate[e]) ++s;
            candidate[e] = s;
        }
        const double score = t.evaluate(candidate);
        const double delta = score - current_score;
        if (delta >= 0.0 ||
            rng.chance(std::exp(std::max(delta / temp, -50.0)))) {
            current = candidate;
            current_score = score;
        }
        temp = std::max(temp * cooling_, 1e-3);
    }
    return t.take();
}

GeneticSearcher::GeneticSearcher(std::size_t population,
                                 double mutation_rate)
    : population_(population), mutation_rate_(mutation_rate) {
    PRESS_EXPECTS(population >= 4, "population must be at least 4");
    PRESS_EXPECTS(mutation_rate >= 0.0 && mutation_rate <= 1.0,
                  "mutation rate must be a probability");
}

SearchResult GeneticSearcher::search(const surface::ConfigSpace& space,
                                     const EvalFn& eval,
                                     std::size_t max_evals, util::Rng& rng,
                                     const StopFn& stop) const {
    PRESS_EXPECTS(max_evals >= 1, "need a positive budget");
    Tracker t(eval, max_evals, stop);

    struct Individual {
        surface::Config config;
        double fitness = 0.0;
    };
    std::vector<Individual> pop;
    for (std::size_t i = 0; i < population_ && !t.exhausted(); ++i) {
        Individual ind{random_config(space, rng), 0.0};
        ind.fitness = t.evaluate(ind.config);
        pop.push_back(std::move(ind));
    }

    auto tournament = [&]() -> const Individual& {
        const Individual& a = pop[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pop.size()) - 1))];
        const Individual& b = pop[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pop.size()) - 1))];
        return a.fitness >= b.fitness ? a : b;
    };

    while (!t.exhausted() && !pop.empty()) {
        // Uniform crossover of two tournament winners, then mutation.
        const Individual& pa = tournament();
        const Individual& pb = tournament();
        Individual child;
        child.config.resize(space.num_elements());
        for (std::size_t e = 0; e < space.num_elements(); ++e) {
            child.config[e] =
                rng.chance(0.5) ? pa.config[e] : pb.config[e];
            if (rng.chance(mutation_rate_)) {
                child.config[e] = static_cast<int>(
                    rng.uniform_int(0, space.radices()[e] - 1));
            }
        }
        child.fitness = t.evaluate(child.config);
        // Steady-state replacement of the current worst individual.
        auto worst = std::min_element(
            pop.begin(), pop.end(),
            [](const Individual& x, const Individual& y) {
                return x.fitness < y.fitness;
            });
        if (child.fitness > worst->fitness) *worst = std::move(child);
    }
    return t.take();
}

void record_search_telemetry(const std::string& searcher_name,
                             const SearchResult& result) {
    if (!obs::enabled()) return;
    auto& registry = obs::MetricsRegistry::global();
    const std::string prefix = "control.search." + searcher_name;
    registry.counter(prefix + ".runs").add();
    registry.counter(prefix + ".evaluations").add(result.evaluations);
    registry.gauge(prefix + ".best_score").set(result.best_score);
    if (result.remeasure_evals > 0) {
        registry.gauge(prefix + ".best_score_remeasured")
            .set(result.best_score_remeasured);
        registry.counter(prefix + ".remeasure_evals")
            .add(result.remeasure_evals);
    }
    registry.series(prefix + ".best_score").append(result.trajectory);
}

std::vector<std::unique_ptr<Searcher>> all_searchers() {
    std::vector<std::unique_ptr<Searcher>> out;
    out.push_back(std::make_unique<ExhaustiveSearcher>());
    out.push_back(std::make_unique<RandomSearcher>());
    out.push_back(std::make_unique<GreedyCoordinateDescent>());
    out.push_back(std::make_unique<SimulatedAnnealingSearcher>());
    out.push_back(std::make_unique<GeneticSearcher>());
    return out;
}

}  // namespace press::control
