#include "control/search.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace press::control {

namespace {

/// Shared bookkeeping: runs evaluations, tracks the best and trajectory.
class Tracker {
public:
    Tracker(const EvalFn& eval, std::size_t max_evals, const StopFn& stop)
        : eval_(eval), max_evals_(max_evals), stop_(stop) {}

    bool exhausted() const {
        return result_.evaluations >= max_evals_ || (stop_ && stop_());
    }

    std::size_t evaluations() const { return result_.evaluations; }

    /// Evaluates `c` (unconditionally; strategies wanting memoization
    /// should avoid repeats themselves). Returns the score.
    double evaluate(const surface::Config& c) {
        PRESS_EXPECTS(!exhausted(), "evaluation budget exceeded");
        const double s = eval_(c);
        ++result_.evaluations;
        if (result_.trajectory.empty() || s > result_.best_score) {
            result_.best_score = s;
            result_.best_config = c;
        }
        result_.trajectory.push_back(result_.best_score);
        return s;
    }

    SearchResult take() { return std::move(result_); }

private:
    const EvalFn& eval_;
    std::size_t max_evals_;
    const StopFn& stop_;
    SearchResult result_;
};

/// Batched counterpart of Tracker: scores whole candidate groups through a
/// BatchEvalFn and folds them into the result in proposal order, so the
/// outcome is independent of how the callee parallelizes the batch.
class BatchTracker {
public:
    BatchTracker(const BatchEvalFn& eval, std::size_t max_evals,
                 const StopFn& stop)
        : eval_(eval), max_evals_(max_evals), stop_(stop) {}

    bool exhausted() const {
        return result_.evaluations >= max_evals_ || (stop_ && stop_());
    }

    std::size_t evaluations() const { return result_.evaluations; }
    std::size_t remaining() const {
        return max_evals_ - std::min(result_.evaluations, max_evals_);
    }

    /// Scores up to remaining() candidates from `batch` (truncating the
    /// tail if the budget runs short) and returns the scores actually
    /// produced — compare sizes to detect truncation.
    std::vector<double> evaluate(std::vector<surface::Config> batch) {
        PRESS_EXPECTS(!exhausted(), "evaluation budget exceeded");
        if (batch.size() > remaining()) batch.resize(remaining());
        std::vector<double> scores = eval_(batch);
        PRESS_EXPECTS(scores.size() == batch.size(),
                      "batch evaluator returned a mismatched score count");
        for (std::size_t i = 0; i < batch.size(); ++i) {
            ++result_.evaluations;
            if (result_.trajectory.empty() ||
                scores[i] > result_.best_score) {
                result_.best_score = scores[i];
                result_.best_config = batch[i];
            }
            result_.trajectory.push_back(result_.best_score);
        }
        return scores;
    }

    /// Coordinate-sweep counterpart: scores up to remaining() states of
    /// `element` over `base` through a CoordinateEvalFn (truncating the
    /// tail if the budget runs short) and folds them in proposal order —
    /// the same accounting evaluate() would do for the equivalent
    /// materialized batch.
    std::vector<double> evaluate_coordinate(const CoordinateEvalFn& coord,
                                            const surface::Config& base,
                                            std::size_t element,
                                            std::vector<int> states) {
        PRESS_EXPECTS(!exhausted(), "evaluation budget exceeded");
        if (states.size() > remaining()) states.resize(remaining());
        std::vector<double> scores = coord(base, element, states);
        PRESS_EXPECTS(scores.size() == states.size(),
                      "coordinate evaluator returned a mismatched score "
                      "count");
        for (std::size_t i = 0; i < states.size(); ++i) {
            ++result_.evaluations;
            if (result_.trajectory.empty() ||
                scores[i] > result_.best_score) {
                result_.best_score = scores[i];
                result_.best_config = base;
                result_.best_config[element] = states[i];
            }
            result_.trajectory.push_back(result_.best_score);
        }
        return scores;
    }

    SearchResult take() { return std::move(result_); }

private:
    const BatchEvalFn& eval_;
    std::size_t max_evals_;
    const StopFn& stop_;
    SearchResult result_;
};

/// FNV-1a over element states, for memoizing scored configurations.
struct ConfigHash {
    std::size_t operator()(const surface::Config& c) const {
        std::uint64_t h = 0xCBF29CE484222325ull;
        for (int v : c) {
            h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
            h *= 0x100000001B3ull;
        }
        return static_cast<std::size_t>(h);
    }
};

using ScoreMemo = std::unordered_map<surface::Config, double, ConfigHash>;

/// Memo sizing for the greedy descent at large element counts: each entry
/// owns a full Config (4 bytes per element plus node overhead), so at
/// 4,000 elements a few thousand entries already cost tens of MiB. The
/// cap bounds the table to a fixed memory budget; reserve()ing the result
/// up front means the bucket array never rehashes mid-search. Past the
/// cap revisited configurations are re-measured (costing budget, never
/// memory) — at massive N revisits are vanishingly rare anyway.
std::size_t memo_entry_cap(std::size_t num_elements, std::size_t max_evals) {
    constexpr std::size_t kMemoBudgetBytes = 48ull << 20;
    const std::size_t entry_bytes =
        sizeof(std::pair<const surface::Config, double>) +
        num_elements * sizeof(int) + 4 * sizeof(void*);
    const std::size_t cap =
        std::max<std::size_t>(64, kMemoBudgetBytes / entry_bytes);
    return std::min(cap, max_evals + 1);
}

surface::Config random_config(const surface::ConfigSpace& space,
                              util::Rng& rng) {
    surface::Config c(space.num_elements());
    for (std::size_t i = 0; i < c.size(); ++i)
        c[i] = static_cast<int>(
            rng.uniform_int(0, space.radices()[i] - 1));
    return c;
}

/// Serial-entry adapter for strategies whose only real implementation is
/// batched: wraps the scalar EvalFn so search() and search_batched()
/// run the exact same code path (and therefore the same rng draws).
BatchEvalFn serialize_eval(const EvalFn& eval) {
    return [&eval](const std::vector<surface::Config>& batch) {
        std::vector<double> scores;
        scores.reserve(batch.size());
        for (const surface::Config& c : batch) scores.push_back(eval(c));
        return scores;
    };
}

}  // namespace

SearchResult Searcher::search_batched(const surface::ConfigSpace& space,
                                      const BatchEvalFn& eval,
                                      std::size_t max_evals, util::Rng& rng,
                                      const StopFn& stop,
                                      std::size_t batch_hint) const {
    // Default adapter: run the serial strategy through one-candidate
    // batches. Strategies with natural batch structure override this.
    (void)batch_hint;
    const EvalFn one = [&eval](const surface::Config& c) {
        const std::vector<double> scores =
            eval(std::vector<surface::Config>{c});
        PRESS_EXPECTS(scores.size() == 1,
                      "batch evaluator returned a mismatched score count");
        return scores[0];
    };
    return search(space, one, max_evals, rng, stop);
}

SearchResult Searcher::search_batched(const surface::ConfigSpace& space,
                                      const BatchEvalFn& eval,
                                      const CoordinateEvalFn& coordinate,
                                      std::size_t max_evals, util::Rng& rng,
                                      const StopFn& stop,
                                      std::size_t batch_hint) const {
    // Base adapter: strategies without coordinate structure simply ignore
    // the hook (virtual dispatch still reaches their batched override).
    (void)coordinate;
    return search_batched(space, eval, max_evals, rng, stop, batch_hint);
}

SearchResult ExhaustiveSearcher::search(const surface::ConfigSpace& space,
                                        const EvalFn& eval,
                                        std::size_t max_evals,
                                        util::Rng& rng,
                                        const StopFn& stop) const {
    (void)rng;
    PRESS_EXPECTS(max_evals >= 1, "need a positive budget");
    Tracker t(eval, max_evals, stop);
    const std::uint64_t n = space.size();
    for (std::uint64_t i = 0; i < n && !t.exhausted(); ++i)
        t.evaluate(space.at(i));
    return t.take();
}

SearchResult ExhaustiveSearcher::search_batched(
    const surface::ConfigSpace& space, const BatchEvalFn& eval,
    std::size_t max_evals, util::Rng& rng, const StopFn& stop,
    std::size_t batch_hint) const {
    (void)rng;
    PRESS_EXPECTS(max_evals >= 1, "need a positive budget");
    BatchTracker t(eval, max_evals, stop);
    const std::uint64_t n = space.size();
    const std::uint64_t chunk = std::max<std::uint64_t>(batch_hint, 1);
    std::uint64_t i = 0;
    while (i < n && !t.exhausted()) {
        const std::uint64_t take =
            std::min({chunk, n - i,
                      static_cast<std::uint64_t>(t.remaining())});
        std::vector<surface::Config> batch;
        batch.reserve(static_cast<std::size_t>(take));
        for (std::uint64_t j = 0; j < take; ++j)
            batch.push_back(space.at(i + j));
        t.evaluate(std::move(batch));
        i += take;
    }
    return t.take();
}

SearchResult RandomSearcher::search(const surface::ConfigSpace& space,
                                    const EvalFn& eval,
                                    std::size_t max_evals, util::Rng& rng,
                                    const StopFn& stop) const {
    PRESS_EXPECTS(max_evals >= 1, "need a positive budget");
    Tracker t(eval, max_evals, stop);
    while (!t.exhausted()) t.evaluate(random_config(space, rng));
    return t.take();
}

SearchResult GreedyCoordinateDescent::search(const surface::ConfigSpace& space,
                                             const EvalFn& eval,
                                             std::size_t max_evals,
                                             util::Rng& rng,
                                             const StopFn& stop) const {
    PRESS_EXPECTS(max_evals >= 1, "need a positive budget");
    Tracker t(eval, max_evals, stop);
    ScoreMemo memo;
    const std::size_t memo_cap =
        memo_entry_cap(space.num_elements(), max_evals);
    memo.reserve(memo_cap);
    const auto memoize = [&memo, memo_cap](const surface::Config& c,
                                           double s) {
        if (memo.size() < memo_cap) memo.emplace(c, s);
    };
    while (!t.exhausted()) {
        // One restart pass of the descent; nested under the caller's
        // optimize span, so a trace shows how rounds split the budget.
        obs::TraceSpan round_span("control.search.round");
        const std::size_t evals_at_restart = t.evaluations();
        surface::Config current = random_config(space, rng);
        double current_score;
        if (auto it = memo.find(current); it != memo.end()) {
            current_score = it->second;
        } else {
            current_score = t.evaluate(current);
            memoize(current, current_score);
        }
        bool improved = true;
        while (improved && !t.exhausted()) {
            improved = false;
            for (std::size_t e = 0;
                 e < space.num_elements() && !t.exhausted(); ++e) {
                const int original = current[e];
                int best_state = original;
                for (int s = 0; s < space.radices()[e] && !t.exhausted();
                     ++s) {
                    if (s == original) continue;
                    current[e] = s;
                    double score;
                    if (auto it = memo.find(current); it != memo.end()) {
                        score = it->second;
                    } else {
                        score = t.evaluate(current);
                        memoize(current, score);
                    }
                    if (score > current_score) {
                        current_score = score;
                        best_state = s;
                        improved = true;
                    }
                }
                current[e] = best_state;
            }
        }
        // Random restart when a local optimum is reached with budget left.
        // If the whole restart pass rode the memo (no fresh evaluations),
        // the reachable region is already scored — stop rather than spin.
        if (t.evaluations() == evals_at_restart) break;
    }
    return t.take();
}

SearchResult GreedyCoordinateDescent::search_batched(
    const surface::ConfigSpace& space, const BatchEvalFn& eval,
    std::size_t max_evals, util::Rng& rng, const StopFn& stop,
    std::size_t batch_hint) const {
    return search_batched(space, eval, CoordinateEvalFn{}, max_evals, rng,
                          stop, batch_hint);
}

SearchResult GreedyCoordinateDescent::search_batched(
    const surface::ConfigSpace& space, const BatchEvalFn& eval,
    const CoordinateEvalFn& coordinate, std::size_t max_evals,
    util::Rng& rng, const StopFn& stop, std::size_t batch_hint) const {
    (void)batch_hint;  // the sweep's natural batch is one element's states
    PRESS_EXPECTS(max_evals >= 1, "need a positive budget");
    BatchTracker t(eval, max_evals, stop);
    ScoreMemo memo;
    const std::size_t memo_cap =
        memo_entry_cap(space.num_elements(), max_evals);
    memo.reserve(memo_cap);
    const auto memoize = [&memo, memo_cap](surface::Config c, double s) {
        if (memo.size() < memo_cap) memo.emplace(std::move(c), s);
    };
    while (!t.exhausted()) {
        // One restart pass; same span name as the serial variant so the
        // two produce comparable trees.
        obs::TraceSpan round_span("control.search.round");
        const std::size_t evals_at_restart = t.evaluations();
        surface::Config current = random_config(space, rng);
        double current_score;
        if (auto it = memo.find(current); it != memo.end()) {
            current_score = it->second;
        } else {
            const std::vector<double> scores =
                t.evaluate(std::vector<surface::Config>{current});
            if (scores.empty()) break;
            current_score = scores[0];
            memoize(current, current_score);
        }
        bool improved = true;
        while (improved && !t.exhausted()) {
            improved = false;
            for (std::size_t e = 0;
                 e < space.num_elements() && !t.exhausted(); ++e) {
                const int original = current[e];
                int best_state = original;
                double best_score = current_score;
                // Memoized alternatives are free; unseen ones become the
                // batch, in ascending state order (matching the serial
                // sweep's evaluation order). With a coordinate hook the
                // candidate configurations are never materialized — the
                // callee reconstructs them from (base, element, state).
                std::vector<int> fresh_states;
                std::vector<surface::Config> batch;
                for (int s = 0; s < space.radices()[e]; ++s) {
                    if (s == original) continue;
                    current[e] = s;
                    if (auto it = memo.find(current); it != memo.end()) {
                        if (it->second > best_score) {
                            best_score = it->second;
                            best_state = s;
                        }
                    } else {
                        fresh_states.push_back(s);
                        if (!coordinate) batch.push_back(current);
                    }
                }
                current[e] = original;
                if (!fresh_states.empty()) {
                    const std::vector<double> scores =
                        coordinate ? t.evaluate_coordinate(coordinate,
                                                           current, e,
                                                           fresh_states)
                                   : t.evaluate(std::move(batch));
                    // scores may be shorter than the proposal when the
                    // budget truncated the tail.
                    for (std::size_t i = 0; i < scores.size(); ++i) {
                        surface::Config scored = current;
                        scored[e] = fresh_states[i];
                        memoize(std::move(scored), scores[i]);
                        if (scores[i] > best_score) {
                            best_score = scores[i];
                            best_state = fresh_states[i];
                        }
                    }
                }
                if (best_state != original) {
                    current[e] = best_state;
                    current_score = best_score;
                    improved = true;
                }
            }
        }
        if (t.evaluations() == evals_at_restart) break;
    }
    return t.take();
}

SimulatedAnnealingSearcher::SimulatedAnnealingSearcher(double initial_temp,
                                                       double cooling)
    : initial_temp_(initial_temp), cooling_(cooling) {
    PRESS_EXPECTS(initial_temp > 0.0, "temperature must be positive");
    PRESS_EXPECTS(cooling > 0.0 && cooling < 1.0, "cooling must be in (0,1)");
}

SearchResult SimulatedAnnealingSearcher::search(
    const surface::ConfigSpace& space, const EvalFn& eval,
    std::size_t max_evals, util::Rng& rng, const StopFn& stop) const {
    PRESS_EXPECTS(max_evals >= 1, "need a positive budget");
    Tracker t(eval, max_evals, stop);
    if (t.exhausted()) return t.take();
    surface::Config current = random_config(space, rng);
    double current_score = t.evaluate(current);
    double temp = initial_temp_;
    while (!t.exhausted()) {
        // Mutate one element to a different state (when it has one).
        surface::Config candidate = current;
        const std::size_t e = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(space.num_elements()) - 1));
        const int radix = space.radices()[e];
        if (radix > 1) {
            int s = static_cast<int>(rng.uniform_int(0, radix - 2));
            if (s >= candidate[e]) ++s;
            candidate[e] = s;
        }
        const double score = t.evaluate(candidate);
        const double delta = score - current_score;
        if (delta >= 0.0 ||
            rng.chance(std::exp(std::max(delta / temp, -50.0)))) {
            current = candidate;
            current_score = score;
        }
        temp = std::max(temp * cooling_, 1e-3);
    }
    return t.take();
}

GeneticSearcher::GeneticSearcher(std::size_t population,
                                 double mutation_rate)
    : population_(population), mutation_rate_(mutation_rate) {
    PRESS_EXPECTS(population >= 4, "population must be at least 4");
    PRESS_EXPECTS(mutation_rate >= 0.0 && mutation_rate <= 1.0,
                  "mutation rate must be a probability");
}

SearchResult GeneticSearcher::search(const surface::ConfigSpace& space,
                                     const EvalFn& eval,
                                     std::size_t max_evals, util::Rng& rng,
                                     const StopFn& stop) const {
    PRESS_EXPECTS(max_evals >= 1, "need a positive budget");
    Tracker t(eval, max_evals, stop);

    struct Individual {
        surface::Config config;
        double fitness = 0.0;
    };
    std::vector<Individual> pop;
    for (std::size_t i = 0; i < population_ && !t.exhausted(); ++i) {
        Individual ind{random_config(space, rng), 0.0};
        ind.fitness = t.evaluate(ind.config);
        pop.push_back(std::move(ind));
    }

    auto tournament = [&]() -> const Individual& {
        const Individual& a = pop[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pop.size()) - 1))];
        const Individual& b = pop[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pop.size()) - 1))];
        return a.fitness >= b.fitness ? a : b;
    };

    while (!t.exhausted() && !pop.empty()) {
        // Uniform crossover of two tournament winners, then mutation.
        const Individual& pa = tournament();
        const Individual& pb = tournament();
        Individual child;
        child.config.resize(space.num_elements());
        for (std::size_t e = 0; e < space.num_elements(); ++e) {
            child.config[e] =
                rng.chance(0.5) ? pa.config[e] : pb.config[e];
            if (rng.chance(mutation_rate_)) {
                child.config[e] = static_cast<int>(
                    rng.uniform_int(0, space.radices()[e] - 1));
            }
        }
        child.fitness = t.evaluate(child.config);
        // Steady-state replacement of the current worst individual.
        auto worst = std::min_element(
            pop.begin(), pop.end(),
            [](const Individual& x, const Individual& y) {
                return x.fitness < y.fitness;
            });
        if (child.fitness > worst->fitness) *worst = std::move(child);
    }
    return t.take();
}

MajorityVoteSearcher::MajorityVoteSearcher(std::size_t probes_per_round,
                                           double flip_prob,
                                           double flip_decay,
                                           double min_flip_prob)
    : probes_per_round_(probes_per_round),
      flip_prob_(flip_prob),
      flip_decay_(flip_decay),
      min_flip_prob_(min_flip_prob) {
    PRESS_EXPECTS(probes_per_round >= 1, "need at least one probe per round");
    PRESS_EXPECTS(flip_prob > 0.0 && flip_prob <= 1.0,
                  "flip probability must be in (0, 1]");
    PRESS_EXPECTS(flip_decay > 0.0 && flip_decay <= 1.0,
                  "flip decay must be in (0, 1]");
    PRESS_EXPECTS(min_flip_prob > 0.0 && min_flip_prob <= flip_prob,
                  "min flip probability must be in (0, flip_prob]");
}

SearchResult MajorityVoteSearcher::search(const surface::ConfigSpace& space,
                                          const EvalFn& eval,
                                          std::size_t max_evals,
                                          util::Rng& rng,
                                          const StopFn& stop) const {
    const BatchEvalFn batched = serialize_eval(eval);
    return search_batched(space, batched, CoordinateEvalFn{}, max_evals,
                          rng, stop, 1);
}

SearchResult MajorityVoteSearcher::search_batched(
    const surface::ConfigSpace& space, const BatchEvalFn& eval,
    std::size_t max_evals, util::Rng& rng, const StopFn& stop,
    std::size_t batch_hint) const {
    return search_batched(space, eval, CoordinateEvalFn{}, max_evals, rng,
                          stop, batch_hint);
}

SearchResult MajorityVoteSearcher::search_batched(
    const surface::ConfigSpace& space, const BatchEvalFn& eval,
    const CoordinateEvalFn& coordinate, std::size_t max_evals,
    util::Rng& rng, const StopFn& stop, std::size_t batch_hint) const {
    // No coordinate sweeps to route; batch size is the probe count, not
    // the pool hint, so the candidate stream (and every rng draw) is
    // independent of the evaluator's thread count.
    (void)coordinate;
    (void)batch_hint;
    PRESS_EXPECTS(max_evals >= 1, "need a positive budget");
    BatchTracker t(eval, max_evals, stop);
    const std::size_t n = space.num_elements();
    int max_radix = 1;
    for (int r : space.radices()) max_radix = std::max(max_radix, r);

    std::uint64_t rounds = 0;
    std::uint64_t probes_measured = 0;
    std::uint64_t adoptions = 0;
    std::uint64_t element_flips = 0;
    const auto publish = [&]() {
        if (!obs::enabled()) return;
        auto& registry = obs::MetricsRegistry::global();
        registry.counter("control.search.majority.rounds").add(rounds);
        registry.counter("control.search.majority.probes")
            .add(probes_measured);
        registry.counter("control.search.majority.adoptions").add(adoptions);
        registry.counter("control.search.majority.element_flips")
            .add(element_flips);
    };

    surface::Config current = random_config(space, rng);
    double current_score;
    {
        const std::vector<double> seed_score =
            t.evaluate(std::vector<surface::Config>{current});
        if (seed_score.empty()) {
            publish();
            return t.take();
        }
        current_score = seed_score[0];
    }

    // Per-(element, state) vote accumulators, cumulative across rounds:
    // one element's signal is a ~1/n sliver of each probe's score, far
    // below one round's sampling noise, so decisions only become reliable
    // when every probe ever measured keeps contributing evidence (this is
    // RFocus's aggregated per-element decision). Later rounds sample the
    // improving incumbent more densely, which weights its states'
    // means upward — reinforcing, not staling, earlier evidence.
    std::vector<double> vote_sum(n * static_cast<std::size_t>(max_radix));
    std::vector<std::uint32_t> vote_count(
        n * static_cast<std::size_t>(max_radix));
    std::vector<surface::Config> probes;
    probes.reserve(probes_per_round_);
    double flip = flip_prob_;

    while (!t.exhausted()) {
        obs::TraceSpan round_span("control.search.round");
        probes.clear();
        for (std::size_t p = 0; p < probes_per_round_; ++p) {
            surface::Config probe = current;
            for (std::size_t e = 0; e < n; ++e) {
                if (space.radices()[e] > 1 && rng.chance(flip)) {
                    probe[e] = static_cast<int>(
                        rng.uniform_int(0, space.radices()[e] - 1));
                }
            }
            probes.push_back(std::move(probe));
        }
        // Keep the proposal list: scores[i] belongs to probes[i], and a
        // budget-truncated tail simply contributes no votes.
        const std::vector<double> scores = t.evaluate(probes);
        ++rounds;
        probes_measured += scores.size();
        if (scores.empty()) break;
        // Votes are per-round *deltas* (score minus the round's mean), so
        // the incumbent's round-over-round improvement cancels out of the
        // comparison: without centering, incumbent states — which dominate
        // the later, higher-scoring rounds as flip anneals — would look
        // better than every alternative regardless of their actual merit.
        double round_mean = 0.0;
        for (const double s : scores) round_mean += s;
        round_mean /= static_cast<double>(scores.size());
        for (std::size_t i = 0; i < scores.size(); ++i) {
            for (std::size_t e = 0; e < n; ++e) {
                const std::size_t slot =
                    e * static_cast<std::size_t>(max_radix) +
                    static_cast<std::size_t>(probes[i][e]);
                vote_sum[slot] += scores[i] - round_mean;
                vote_count[slot] += 1;
            }
        }
        if (t.exhausted()) break;

        // Per-element majority: the state with the best mean probe score
        // wins; unsampled states abstain, ties keep the incumbent.
        surface::Config consensus = current;
        for (std::size_t e = 0; e < n; ++e) {
            const std::size_t base =
                e * static_cast<std::size_t>(max_radix);
            const std::size_t incumbent =
                base + static_cast<std::size_t>(current[e]);
            double best_mean =
                vote_count[incumbent] > 0
                    ? vote_sum[incumbent] / vote_count[incumbent]
                    : -std::numeric_limits<double>::infinity();
            for (int s = 0; s < space.radices()[e]; ++s) {
                const std::size_t slot =
                    base + static_cast<std::size_t>(s);
                if (vote_count[slot] == 0 || slot == incumbent) continue;
                const double mean = vote_sum[slot] / vote_count[slot];
                if (mean > best_mean) {
                    best_mean = mean;
                    consensus[e] = s;
                }
            }
        }
        if (consensus != current) {
            const std::vector<double> consensus_score =
                t.evaluate(std::vector<surface::Config>{consensus});
            if (consensus_score.empty()) break;
            if (consensus_score[0] > current_score) {
                ++adoptions;
                for (std::size_t e = 0; e < n; ++e)
                    if (consensus[e] != current[e]) ++element_flips;
                current = std::move(consensus);
                current_score = consensus_score[0];
            }
        }
        flip = std::max(flip * flip_decay_, min_flip_prob_);
    }
    publish();
    return t.take();
}

RandomizedPartitionSearcher::RandomizedPartitionSearcher(
    std::size_t initial_groups, std::size_t max_groups)
    : initial_groups_(initial_groups), max_groups_(max_groups) {
    PRESS_EXPECTS(initial_groups >= 1, "need at least one group");
    PRESS_EXPECTS(max_groups >= initial_groups,
                  "max groups must be at least the initial group count");
}

SearchResult RandomizedPartitionSearcher::search(
    const surface::ConfigSpace& space, const EvalFn& eval,
    std::size_t max_evals, util::Rng& rng, const StopFn& stop) const {
    const BatchEvalFn batched = serialize_eval(eval);
    return search_batched(space, batched, CoordinateEvalFn{}, max_evals,
                          rng, stop, 1);
}

SearchResult RandomizedPartitionSearcher::search_batched(
    const surface::ConfigSpace& space, const BatchEvalFn& eval,
    std::size_t max_evals, util::Rng& rng, const StopFn& stop,
    std::size_t batch_hint) const {
    return search_batched(space, eval, CoordinateEvalFn{}, max_evals, rng,
                          stop, batch_hint);
}

SearchResult RandomizedPartitionSearcher::search_batched(
    const surface::ConfigSpace& space, const BatchEvalFn& eval,
    const CoordinateEvalFn& coordinate, std::size_t max_evals,
    util::Rng& rng, const StopFn& stop, std::size_t batch_hint) const {
    (void)coordinate;
    (void)batch_hint;
    PRESS_EXPECTS(max_evals >= 1, "need a positive budget");
    BatchTracker t(eval, max_evals, stop);
    const std::size_t n = space.num_elements();

    std::uint64_t rounds = 0;
    std::uint64_t accepts = 0;
    const auto publish = [&]() {
        if (!obs::enabled()) return;
        auto& registry = obs::MetricsRegistry::global();
        registry.counter("control.search.partition.rounds").add(rounds);
        registry.counter("control.search.partition.accepts").add(accepts);
    };

    surface::Config current = random_config(space, rng);
    double current_score;
    {
        const std::vector<double> seed_score =
            t.evaluate(std::vector<surface::Config>{current});
        if (seed_score.empty()) {
            publish();
            return t.take();
        }
        current_score = seed_score[0];
    }

    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = i;
    const std::size_t finest = std::min(max_groups_, std::max<std::size_t>(
                                                         n, 1));
    std::size_t groups = std::min(initial_groups_, finest);
    std::size_t stale_at_finest = 0;
    std::vector<surface::Config> candidates;

    while (!t.exhausted()) {
        obs::TraceSpan round_span("control.search.round");
        // Fisher-Yates shuffle: a fresh random partition every round.
        for (std::size_t i = n; i > 1; --i) {
            const std::size_t j = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
            std::swap(perm[i - 1], perm[j]);
        }
        candidates.clear();
        for (std::size_t g = 0; g < groups; ++g) {
            const std::size_t begin = g * n / groups;
            const std::size_t end = (g + 1) * n / groups;
            if (begin == end) continue;
            surface::Config candidate = current;
            for (std::size_t i = begin; i < end; ++i) {
                const std::size_t e = perm[i];
                const int radix = space.radices()[e];
                if (radix <= 1) continue;
                int s = static_cast<int>(rng.uniform_int(0, radix - 2));
                if (s >= candidate[e]) ++s;
                candidate[e] = s;
            }
            candidates.push_back(std::move(candidate));
        }
        if (candidates.empty()) break;
        const std::vector<double> scores = t.evaluate(candidates);
        ++rounds;
        std::size_t best_i = candidates.size();
        double best = current_score;
        for (std::size_t i = 0; i < scores.size(); ++i) {
            if (scores[i] > best) {
                best = scores[i];
                best_i = i;
            }
        }
        if (best_i < candidates.size()) {
            current = candidates[best_i];
            current_score = best;
            ++accepts;
            stale_at_finest = 0;
        } else if (groups < finest) {
            groups = std::min(groups * 2, finest);
        } else if (++stale_at_finest >= 8) {
            // Single-element granularity has gone stale for several
            // rounds: a local optimum under this move set. Stop rather
            // than spend the rest of the budget re-rolling losers.
            break;
        }
    }
    publish();
    return t.take();
}

void record_search_telemetry(const std::string& searcher_name,
                             const SearchResult& result) {
    if (!obs::enabled()) return;
    auto& registry = obs::MetricsRegistry::global();
    const std::string prefix = "control.search." + searcher_name;
    registry.counter(prefix + ".runs").add();
    registry.counter(prefix + ".evaluations").add(result.evaluations);
    registry.gauge(prefix + ".best_score").set(result.best_score);
    if (result.remeasure_evals > 0) {
        registry.gauge(prefix + ".best_score_remeasured")
            .set(result.best_score_remeasured);
        registry.counter(prefix + ".remeasure_evals")
            .add(result.remeasure_evals);
    }
    registry.series(prefix + ".best_score").append(result.trajectory);
}

std::vector<std::unique_ptr<Searcher>> all_searchers() {
    std::vector<std::unique_ptr<Searcher>> out;
    out.push_back(std::make_unique<ExhaustiveSearcher>());
    out.push_back(std::make_unique<RandomSearcher>());
    out.push_back(std::make_unique<GreedyCoordinateDescent>());
    out.push_back(std::make_unique<SimulatedAnnealingSearcher>());
    out.push_back(std::make_unique<GeneticSearcher>());
    out.push_back(std::make_unique<MajorityVoteSearcher>());
    out.push_back(std::make_unique<RandomizedPartitionSearcher>());
    return out;
}

}  // namespace press::control
