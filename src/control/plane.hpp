// Control-plane timing model.
//
// The paper's central timing constraint (Section 2): the whole
// measure -> search -> actuate loop must finish within the channel
// coherence time (~80 ms quasi-static, ~6 ms at walking speed), and its
// prototype needed ~5 seconds for a 64-configuration sweep. This model
// prices every step of the loop so searches can be budgeted in seconds of
// simulated wall-clock time rather than abstract evaluation counts.
#pragma once

#include <cstddef>

#include "control/message.hpp"
#include "obs/trace.hpp"

namespace press::control {

/// Latency/bandwidth description of the out-of-band control channel plus
/// element actuation and measurement costs.
struct ControlPlaneModel {
    /// Control channel bit rate (e.g. a low-rate ISM/whitespace link).
    double bitrate_bps = 250e3;
    /// Fixed one-way latency per message (propagation + MCU processing).
    double latency_s = 1e-3;
    /// Settling time of one element's RF switch after a state change.
    double element_switch_s = 10e-6;
    /// Air time of one sounding frame plus receiver processing.
    double measurement_s = 1e-3;

    /// The paper's prototype pace: ~5 s for a 64-configuration sweep
    /// (~78 ms per configuration), dominated by host-side latency.
    static ControlPlaneModel prototype();

    /// A deployment-grade target: 2 Mb/s control channel, 100 us latency.
    static ControlPlaneModel fast();

    /// Time for one message to cross the control channel.
    double transfer_time_s(std::size_t message_bytes) const;

    /// Actuation cost alone: SetConfig + ack transfers plus switch settle.
    /// A ReliableSession prices each delivery attempt with this model, so
    /// retries on a lossy channel consume real coherence-time budget.
    double apply_cost_s(const SetConfig& set_config) const;

    /// Measurement cost alone: per observed link a MeasureRequest, the
    /// sounding itself, and the MeasureReport back.
    double measure_cost_s(std::size_t num_links,
                          std::size_t num_subcarriers) const;

    /// Full cost of trying one configuration on `num_links` links:
    /// apply_cost_s + measure_cost_s.
    double config_trial_time_s(const SetConfig& set_config,
                               std::size_t num_links,
                               std::size_t num_subcarriers) const;
};

/// Simulated wall clock accumulated by a controller run. Implements
/// obs::SimTimeSource so trace spans can price a region in simulated
/// seconds alongside wall time.
class SimClock : public obs::SimTimeSource {
public:
    void advance(double seconds);
    double now_s() const { return now_s_; }
    double sim_now_s() const override { return now_s_; }

private:
    double now_s_ = 0.0;
};

}  // namespace press::control
