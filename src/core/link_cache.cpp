#include "core/link_cache.hpp"

#include <algorithm>

#include "em/channel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace press::core {

namespace {

// Mirrors the cache's own atomic counters into the global registry so an
// export sees them without holding a LinkCache pointer. Called on the cold
// paths only (rebuilds, invalidations) plus note-batch folds via System.
void mirror_miss() {
    if (!obs::enabled()) return;
    static obs::Counter& misses =
        obs::MetricsRegistry::global().counter("core.link_cache.misses");
    misses.add();
}

void mirror_hits(std::uint64_t n) {
    if (!obs::enabled()) return;
    static obs::Counter& hits =
        obs::MetricsRegistry::global().counter("core.link_cache.hits");
    hits.add(n);
}

}  // namespace

LinkCache::Fingerprint LinkCache::link_fingerprint(const sdr::Link& link) {
    Fingerprint fp{};
    std::size_t i = 0;
    const auto antenna_facets = [&fp, &i](const em::Antenna& a) {
        fp[i++] = a.peak_gain_dbi();
        fp[i++] = a.is_omni() ? 1.0 : 0.0;
        fp[i++] = a.beamwidth_rad();
        fp[i++] = a.boresight().x;
        fp[i++] = a.boresight().y;
        fp[i++] = a.boresight().z;
    };
    fp[i++] = link.tx.position.x;
    fp[i++] = link.tx.position.y;
    fp[i++] = link.tx.position.z;
    fp[i++] = link.rx.position.x;
    fp[i++] = link.rx.position.y;
    fp[i++] = link.rx.position.z;
    antenna_facets(link.tx.antenna);
    antenna_facets(link.rx.antenna);
    return fp;
}

bool LinkCache::current(const sdr::Medium& medium, const Entry& entry,
                        const sdr::Link& link) const {
    if (!entry.valid) return false;
    if (entry.env_revision != medium.environment().revision()) return false;
    if (entry.arrays.size() != medium.num_arrays()) return false;
    for (std::size_t a = 0; a < entry.arrays.size(); ++a) {
        if (entry.arrays[a].structure_revision !=
            medium.array(a).structure_revision())
            return false;
    }
    return entry.fingerprint == link_fingerprint(link);
}

void LinkCache::rebuild(const sdr::Medium& medium, Entry& entry,
                        const sdr::Link& link) {
    obs::TraceSpan span("core.link_cache.rebuild");
    const std::vector<double>& freqs = medium.ofdm().used_frequencies_hz();
    const std::size_t num_sc = freqs.size();
    const double carrier_hz = medium.ofdm().carrier_hz();

    const util::CVec h_static = em::frequency_response(
        medium.environment_paths(link), freqs);
    entry.h_static.resize(num_sc);
    util::kernels::deinterleave(h_static.data(), entry.h_static.re.data(),
                                entry.h_static.im.data(), num_sc);
    entry.arrays.clear();
    entry.arrays.reserve(medium.num_arrays());
    for (std::size_t a = 0; a < medium.num_arrays(); ++a) {
        const surface::Array& array = medium.array(a);
        ArrayBasis basis;
        basis.structure_revision = array.structure_revision();
        basis.radices.reserve(array.size());
        basis.row_offset.reserve(array.size());
        const std::vector<std::vector<em::Path>> per_state =
            array.state_paths(medium.environment(), link.tx, link.rx,
                              carrier_hz);
        std::size_t rows = 0;
        for (const auto& states : per_state) rows += states.size();
        basis.num_sc = num_sc;
        // Pad each component segment to a whole number of kernel lanes so
        // every row block starts lane-aligned; padding doubles stay zero
        // and are never read by the length-exact kernels.
        constexpr std::size_t kLanes = util::kernels::kLanes;
        basis.row_stride = (num_sc + kLanes - 1) / kLanes * kLanes;
        basis.table.assign(rows * 2 * basis.row_stride, 0.0);
        std::size_t row = 0;
        for (const auto& states : per_state) {
            basis.radices.push_back(static_cast<int>(states.size()));
            basis.row_offset.push_back(row);
            for (const em::Path& p : states) {
                util::CVec response(num_sc, util::cd{0.0, 0.0});
                em::accumulate_frequency_response(response, {p}, freqs);
                util::kernels::deinterleave(response.data(),
                                            basis.row_re(row),
                                            basis.row_im(row), num_sc);
                ++row;
            }
        }
        entry.arrays.push_back(std::move(basis));
    }
    entry.env_revision = medium.environment().revision();
    entry.fingerprint = link_fingerprint(link);
    entry.valid = true;
}

void LinkCache::add_rows(util::kernels::SplitVec& h, const ArrayBasis& basis,
                         const surface::Config& config,
                         std::size_t skip_element) {
    const util::kernels::IndexRange full{0, h.size()};
    add_rows_ranges(h, basis, config, &full, 1, skip_element);
}

void LinkCache::add_rows_ranges(util::kernels::SplitVec& h,
                                const ArrayBasis& basis,
                                const surface::Config& config,
                                const util::kernels::IndexRange* ranges,
                                std::size_t num_ranges,
                                std::size_t skip_element) {
    PRESS_EXPECTS(config.size() == basis.radices.size(),
                  "configuration arity must match the cached array");
    for (std::size_t e = 0; e < config.size(); ++e) {
        if (e == skip_element) continue;
        PRESS_EXPECTS(config[e] >= 0 && config[e] < basis.radices[e],
                      "configuration state out of the cached range");
    }
    const util::kernels::Dispatch d = util::kernels::active();
    // Tile over subcarrier blocks of each span with the element walk
    // innermost: the scratch tile stays L1-resident while the selected
    // rows stream past. Each subcarrier still receives its element terms
    // in ascending element order, so neither the tiling nor the span
    // bounding changes the bits of any touched subcarrier.
    for (std::size_t ri = 0; ri < num_ranges; ++ri) {
        const std::size_t end = ranges[ri].offset + ranges[ri].len;
        PRESS_EXPECTS(end <= h.size(), "span exceeds the response width");
        for (std::size_t sc = ranges[ri].offset; sc < end;
             sc += kTileSubcarriers) {
            const std::size_t len = std::min(kTileSubcarriers, end - sc);
            double* tile_re = h.re.data() + sc;
            double* tile_im = h.im.data() + sc;
            for (std::size_t e = 0; e < config.size(); ++e) {
                if (e == skip_element) continue;
                const std::size_t row =
                    basis.row_offset[e] +
                    static_cast<std::size_t>(config[e]);
                util::kernels::accumulate(d, basis.row_re(row) + sc,
                                          basis.row_im(row) + sc, tile_re,
                                          tile_im, len);
            }
        }
    }
}

void LinkCache::note_batch_hits(std::uint64_t n) {
    hits_.fetch_add(n, std::memory_order_relaxed);
    mirror_hits(n);
}

void LinkCache::warm(const sdr::Medium& medium, std::size_t link_id,
                     const sdr::Link& link) {
    if (entries_.size() <= link_id) entries_.resize(link_id + 1);
    Entry& entry = entries_[link_id];
    if (!current(medium, entry, link)) {
        rebuild(medium, entry, link);
        misses_.fetch_add(1, std::memory_order_relaxed);
        mirror_miss();
    }
}

util::CVec LinkCache::response(const sdr::Medium& medium,
                               std::size_t link_id, const sdr::Link& link) {
    if (entries_.size() <= link_id) entries_.resize(link_id + 1);
    Entry& entry = entries_[link_id];
    if (current(medium, entry, link)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        mirror_hits(1);
    } else {
        rebuild(medium, entry, link);
        misses_.fetch_add(1, std::memory_order_relaxed);
        mirror_miss();
    }
    util::kernels::SplitVec h;
    accumulate_response(medium, entry, /*array_id=*/entry.arrays.size(),
                        surface::Config{}, kNoSkip, h);
    util::CVec out(h.size());
    util::kernels::interleave(h.re.data(), h.im.data(), out.data(),
                              h.size());
    return out;
}

void LinkCache::accumulate_response_ranges(
    const sdr::Medium& medium, const Entry& entry, std::size_t array_id,
    const surface::Config& config, std::size_t skip_element,
    const util::kernels::IndexRange* ranges, std::size_t num_ranges,
    util::kernels::SplitVec& out) const {
    const std::size_t num_sc = entry.h_static.size();
    out.resize(num_sc);
    const util::kernels::Dispatch d = util::kernels::active();
    for (std::size_t ri = 0; ri < num_ranges; ++ri) {
        const std::size_t o = ranges[ri].offset;
        PRESS_EXPECTS(o + ranges[ri].len <= num_sc,
                      "span exceeds the cached subcarrier count");
        util::kernels::copy(d, entry.h_static.re.data() + o,
                            entry.h_static.im.data() + o, out.re.data() + o,
                            out.im.data() + o, ranges[ri].len);
    }
    for (std::size_t a = 0; a < entry.arrays.size(); ++a) {
        // Branch instead of a ternary: a `ref : prvalue` conditional's
        // common type is a prvalue, which would copy (allocate) `config`
        // on every read of the candidate's own array.
        if (a == array_id) {
            add_rows_ranges(out, entry.arrays[a], config, ranges,
                            num_ranges, skip_element);
        } else {
            add_rows_ranges(out, entry.arrays[a],
                            medium.array(a).current_config(), ranges,
                            num_ranges, kNoSkip);
        }
    }
}

void LinkCache::accumulate_response(const sdr::Medium& medium,
                                    const Entry& entry,
                                    std::size_t array_id,
                                    const surface::Config& config,
                                    std::size_t skip_element,
                                    util::kernels::SplitVec& out) const {
    const util::kernels::IndexRange full{0, entry.h_static.size()};
    accumulate_response_ranges(medium, entry, array_id, config,
                               skip_element, &full, 1, out);
}

util::CVec LinkCache::response_with(const sdr::Medium& medium,
                                    std::size_t link_id,
                                    const sdr::Link& link,
                                    std::size_t array_id,
                                    const surface::Config& config) const {
    util::kernels::SplitVec h;
    response_into(medium, link_id, link, array_id, config, h);
    util::CVec out(h.size());
    util::kernels::interleave(h.re.data(), h.im.data(), out.data(),
                              h.size());
    return out;
}

void LinkCache::response_into(const sdr::Medium& medium,
                              std::size_t link_id, const sdr::Link& link,
                              std::size_t array_id,
                              const surface::Config& config,
                              util::kernels::SplitVec& out) const {
    PRESS_EXPECTS(link_id < entries_.size(), "link has no cache entry");
    const Entry& entry = entries_[link_id];
    PRESS_EXPECTS(current(medium, entry, link),
                  "cache entry is stale; call warm() before batch reads");
    PRESS_EXPECTS(array_id < entry.arrays.size(),
                  "array id out of the cached range");
    accumulate_response(medium, entry, array_id, config, kNoSkip, out);
}

void LinkCache::response_base_into(const sdr::Medium& medium,
                                   std::size_t link_id,
                                   const sdr::Link& link,
                                   std::size_t array_id,
                                   const surface::Config& config,
                                   std::size_t element,
                                   util::kernels::SplitVec& out) const {
    PRESS_EXPECTS(link_id < entries_.size(), "link has no cache entry");
    const Entry& entry = entries_[link_id];
    PRESS_EXPECTS(current(medium, entry, link),
                  "cache entry is stale; call warm() before batch reads");
    PRESS_EXPECTS(array_id < entry.arrays.size(),
                  "array id out of the cached range");
    PRESS_EXPECTS(element < entry.arrays[array_id].radices.size(),
                  "element id out of the cached range");
    accumulate_response(medium, entry, array_id, config, element, out);
}

void LinkCache::response_ranges_into(const sdr::Medium& medium,
                                     std::size_t link_id,
                                     const sdr::Link& link,
                                     std::size_t array_id,
                                     const surface::Config& config,
                                     const util::kernels::IndexRange* ranges,
                                     std::size_t num_ranges,
                                     util::kernels::SplitVec& out) const {
    PRESS_EXPECTS(link_id < entries_.size(), "link has no cache entry");
    const Entry& entry = entries_[link_id];
    PRESS_EXPECTS(current(medium, entry, link),
                  "cache entry is stale; call warm() before batch reads");
    PRESS_EXPECTS(array_id < entry.arrays.size(),
                  "array id out of the cached range");
    accumulate_response_ranges(medium, entry, array_id, config, kNoSkip,
                               ranges, num_ranges, out);
}

void LinkCache::response_base_ranges_into(
    const sdr::Medium& medium, std::size_t link_id, const sdr::Link& link,
    std::size_t array_id, const surface::Config& config, std::size_t element,
    const util::kernels::IndexRange* ranges, std::size_t num_ranges,
    util::kernels::SplitVec& out) const {
    PRESS_EXPECTS(link_id < entries_.size(), "link has no cache entry");
    const Entry& entry = entries_[link_id];
    PRESS_EXPECTS(current(medium, entry, link),
                  "cache entry is stale; call warm() before batch reads");
    PRESS_EXPECTS(array_id < entry.arrays.size(),
                  "array id out of the cached range");
    PRESS_EXPECTS(element < entry.arrays[array_id].radices.size(),
                  "element id out of the cached range");
    accumulate_response_ranges(medium, entry, array_id, config, element,
                               ranges, num_ranges, out);
}

void LinkCache::accumulate_element_row_ranges(
    std::size_t link_id, std::size_t array_id, std::size_t element,
    int state, const util::kernels::IndexRange* ranges,
    std::size_t num_ranges, util::kernels::SplitVec& h) const {
    PRESS_EXPECTS(link_id < entries_.size(), "link has no cache entry");
    const Entry& entry = entries_[link_id];
    PRESS_EXPECTS(array_id < entry.arrays.size(),
                  "array id out of the cached range");
    const ArrayBasis& basis = entry.arrays[array_id];
    PRESS_EXPECTS(element < basis.radices.size(),
                  "element id out of the cached range");
    PRESS_EXPECTS(state >= 0 && state < basis.radices[element],
                  "configuration state out of the cached range");
    PRESS_EXPECTS(h.size() == entry.h_static.size(),
                  "scratch does not match the cached subcarrier count");
    for (std::size_t ri = 0; ri < num_ranges; ++ri)
        PRESS_EXPECTS(ranges[ri].offset + ranges[ri].len <= h.size(),
                      "span exceeds the cached subcarrier count");
    const std::size_t row =
        basis.row_offset[element] + static_cast<std::size_t>(state);
    util::kernels::masked_accumulate(util::kernels::active(),
                                     basis.row_re(row), basis.row_im(row),
                                     h.re.data(), h.im.data(), ranges,
                                     num_ranges);
}

void LinkCache::accumulate_element_row(std::size_t link_id,
                                       std::size_t array_id,
                                       std::size_t element, int state,
                                       util::kernels::SplitVec& h) const {
    PRESS_EXPECTS(link_id < entries_.size(), "link has no cache entry");
    const Entry& entry = entries_[link_id];
    PRESS_EXPECTS(array_id < entry.arrays.size(),
                  "array id out of the cached range");
    const ArrayBasis& basis = entry.arrays[array_id];
    PRESS_EXPECTS(element < basis.radices.size(),
                  "element id out of the cached range");
    PRESS_EXPECTS(state >= 0 && state < basis.radices[element],
                  "configuration state out of the cached range");
    const std::size_t num_sc = h.size();
    PRESS_EXPECTS(num_sc == entry.h_static.size(),
                  "scratch does not match the cached subcarrier count");
    const std::size_t row =
        basis.row_offset[element] + static_cast<std::size_t>(state);
    util::kernels::accumulate(util::kernels::active(), basis.row_re(row),
                              basis.row_im(row), h.re.data(), h.im.data(),
                              num_sc);
}

void LinkCache::element_row_delta(std::size_t link_id, std::size_t array_id,
                                  std::size_t element, int state,
                                  const util::kernels::SplitVec& base,
                                  util::kernels::SplitVec& out) const {
    PRESS_EXPECTS(link_id < entries_.size(), "link has no cache entry");
    const Entry& entry = entries_[link_id];
    PRESS_EXPECTS(array_id < entry.arrays.size(),
                  "array id out of the cached range");
    const ArrayBasis& basis = entry.arrays[array_id];
    PRESS_EXPECTS(element < basis.radices.size(),
                  "element id out of the cached range");
    PRESS_EXPECTS(state >= 0 && state < basis.radices[element],
                  "configuration state out of the cached range");
    const std::size_t num_sc = entry.h_static.size();
    PRESS_EXPECTS(base.size() == num_sc,
                  "base does not match the cached subcarrier count");
    PRESS_EXPECTS(out.size() == num_sc,
                  "out must be pre-sized to the cached subcarrier count");
    const std::size_t row =
        basis.row_offset[element] + static_cast<std::size_t>(state);
    util::kernels::copy_accumulate(util::kernels::active(), base.re.data(),
                                   base.im.data(), basis.row_re(row),
                                   basis.row_im(row), out.re.data(),
                                   out.im.data(), num_sc);
}

void LinkCache::element_row_delta_ranges(
    std::size_t link_id, std::size_t array_id, std::size_t element,
    int state, const util::kernels::IndexRange* ranges,
    std::size_t num_ranges, const util::kernels::SplitVec& base,
    util::kernels::SplitVec& out) const {
    PRESS_EXPECTS(link_id < entries_.size(), "link has no cache entry");
    const Entry& entry = entries_[link_id];
    PRESS_EXPECTS(array_id < entry.arrays.size(),
                  "array id out of the cached range");
    const ArrayBasis& basis = entry.arrays[array_id];
    PRESS_EXPECTS(element < basis.radices.size(),
                  "element id out of the cached range");
    PRESS_EXPECTS(state >= 0 && state < basis.radices[element],
                  "configuration state out of the cached range");
    const std::size_t num_sc = entry.h_static.size();
    PRESS_EXPECTS(base.size() == num_sc,
                  "base does not match the cached subcarrier count");
    PRESS_EXPECTS(out.size() == num_sc,
                  "out must be pre-sized to the cached subcarrier count");
    for (std::size_t ri = 0; ri < num_ranges; ++ri)
        PRESS_EXPECTS(ranges[ri].offset + ranges[ri].len <= num_sc,
                      "span exceeds the cached subcarrier count");
    const std::size_t row =
        basis.row_offset[element] + static_cast<std::size_t>(state);
    util::kernels::masked_copy_accumulate(
        util::kernels::active(), base.re.data(), base.im.data(),
        basis.row_re(row), basis.row_im(row), out.re.data(), out.im.data(),
        ranges, num_ranges);
}

LinkCache::BasisLayout LinkCache::basis_layout(std::size_t link_id,
                                               std::size_t array_id) const {
    PRESS_EXPECTS(link_id < entries_.size(), "link has no cache entry");
    const Entry& entry = entries_[link_id];
    PRESS_EXPECTS(entry.valid, "cache entry is cold; call warm() first");
    PRESS_EXPECTS(array_id < entry.arrays.size(),
                  "array id out of the cached range");
    const ArrayBasis& basis = entry.arrays[array_id];
    BasisLayout layout;
    layout.rows = basis.radices.empty()
                      ? 0
                      : basis.row_offset.back() +
                            static_cast<std::size_t>(basis.radices.back());
    layout.num_sc = basis.num_sc;
    layout.row_stride = basis.row_stride;
    layout.bytes = basis.table.size() * sizeof(double);
    return layout;
}

void LinkCache::invalidate() {
    for (Entry& entry : entries_) entry.valid = false;
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
        static obs::Counter& invalidations =
            obs::MetricsRegistry::global().counter(
                "core.link_cache.invalidations");
        invalidations.add();
    }
}

}  // namespace press::core
