#include "core/link_cache.hpp"

#include "em/channel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace press::core {

namespace {

// Mirrors the cache's own atomic counters into the global registry so an
// export sees them without holding a LinkCache pointer. Called on the cold
// paths only (rebuilds, invalidations) plus note-batch folds via System.
void mirror_miss() {
    if (!obs::enabled()) return;
    static obs::Counter& misses =
        obs::MetricsRegistry::global().counter("core.link_cache.misses");
    misses.add();
}

void mirror_hits(std::uint64_t n) {
    if (!obs::enabled()) return;
    static obs::Counter& hits =
        obs::MetricsRegistry::global().counter("core.link_cache.hits");
    hits.add(n);
}

}  // namespace

std::vector<double> LinkCache::link_fingerprint(const sdr::Link& link) {
    const auto antenna_facets = [](const em::Antenna& a,
                                   std::vector<double>& out) {
        out.push_back(a.peak_gain_dbi());
        out.push_back(a.is_omni() ? 1.0 : 0.0);
        out.push_back(a.beamwidth_rad());
        out.push_back(a.boresight().x);
        out.push_back(a.boresight().y);
        out.push_back(a.boresight().z);
    };
    std::vector<double> fp;
    fp.reserve(18);
    fp.push_back(link.tx.position.x);
    fp.push_back(link.tx.position.y);
    fp.push_back(link.tx.position.z);
    fp.push_back(link.rx.position.x);
    fp.push_back(link.rx.position.y);
    fp.push_back(link.rx.position.z);
    antenna_facets(link.tx.antenna, fp);
    antenna_facets(link.rx.antenna, fp);
    return fp;
}

bool LinkCache::current(const sdr::Medium& medium, const Entry& entry,
                        const sdr::Link& link) const {
    if (!entry.valid) return false;
    if (entry.env_revision != medium.environment().revision()) return false;
    if (entry.arrays.size() != medium.num_arrays()) return false;
    for (std::size_t a = 0; a < entry.arrays.size(); ++a) {
        if (entry.arrays[a].structure_revision !=
            medium.array(a).structure_revision())
            return false;
    }
    return entry.fingerprint == link_fingerprint(link);
}

void LinkCache::rebuild(const sdr::Medium& medium, Entry& entry,
                        const sdr::Link& link) {
    obs::TraceSpan span("core.link_cache.rebuild");
    const std::vector<double>& freqs = medium.ofdm().used_frequencies_hz();
    const std::size_t num_sc = freqs.size();
    const double carrier_hz = medium.ofdm().carrier_hz();

    entry.h_static = em::frequency_response(medium.environment_paths(link),
                                            freqs);
    entry.arrays.clear();
    entry.arrays.reserve(medium.num_arrays());
    for (std::size_t a = 0; a < medium.num_arrays(); ++a) {
        const surface::Array& array = medium.array(a);
        ArrayBasis basis;
        basis.structure_revision = array.structure_revision();
        basis.radices.reserve(array.size());
        basis.row_offset.reserve(array.size());
        const std::vector<std::vector<em::Path>> per_state =
            array.state_paths(medium.environment(), link.tx, link.rx,
                              carrier_hz);
        std::size_t rows = 0;
        for (const auto& states : per_state) rows += states.size();
        basis.table.assign(rows * num_sc, util::cd{0.0, 0.0});
        std::size_t row = 0;
        for (const auto& states : per_state) {
            basis.radices.push_back(static_cast<int>(states.size()));
            basis.row_offset.push_back(row);
            for (const em::Path& p : states) {
                util::CVec response(num_sc, util::cd{0.0, 0.0});
                em::accumulate_frequency_response(response, {p}, freqs);
                std::copy(response.begin(), response.end(),
                          basis.table.begin() +
                              static_cast<std::ptrdiff_t>(row * num_sc));
                ++row;
            }
        }
        entry.arrays.push_back(std::move(basis));
    }
    entry.env_revision = medium.environment().revision();
    entry.fingerprint = link_fingerprint(link);
    entry.valid = true;
}

void LinkCache::add_rows(util::CVec& h, const ArrayBasis& basis,
                         const surface::Config& config) {
    PRESS_EXPECTS(config.size() == basis.radices.size(),
                  "configuration arity must match the cached array");
    const std::size_t num_sc = h.size();
    for (std::size_t e = 0; e < config.size(); ++e) {
        PRESS_EXPECTS(config[e] >= 0 && config[e] < basis.radices[e],
                      "configuration state out of the cached range");
        const util::cd* row =
            basis.table.data() +
            (basis.row_offset[e] + static_cast<std::size_t>(config[e])) *
                num_sc;
        for (std::size_t k = 0; k < num_sc; ++k) h[k] += row[k];
    }
}

void LinkCache::note_batch_hits(std::uint64_t n) {
    hits_.fetch_add(n, std::memory_order_relaxed);
    mirror_hits(n);
}

void LinkCache::warm(const sdr::Medium& medium, std::size_t link_id,
                     const sdr::Link& link) {
    if (entries_.size() <= link_id) entries_.resize(link_id + 1);
    Entry& entry = entries_[link_id];
    if (!current(medium, entry, link)) {
        rebuild(medium, entry, link);
        misses_.fetch_add(1, std::memory_order_relaxed);
        mirror_miss();
    }
}

util::CVec LinkCache::response(const sdr::Medium& medium,
                               std::size_t link_id, const sdr::Link& link) {
    if (entries_.size() <= link_id) entries_.resize(link_id + 1);
    Entry& entry = entries_[link_id];
    if (current(medium, entry, link)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        mirror_hits(1);
    } else {
        rebuild(medium, entry, link);
        misses_.fetch_add(1, std::memory_order_relaxed);
        mirror_miss();
    }
    util::CVec h = entry.h_static;
    for (std::size_t a = 0; a < entry.arrays.size(); ++a)
        add_rows(h, entry.arrays[a], medium.array(a).current_config());
    return h;
}

util::CVec LinkCache::response_with(const sdr::Medium& medium,
                                    std::size_t link_id,
                                    const sdr::Link& link,
                                    std::size_t array_id,
                                    const surface::Config& config) const {
    PRESS_EXPECTS(link_id < entries_.size(), "link has no cache entry");
    const Entry& entry = entries_[link_id];
    PRESS_EXPECTS(current(medium, entry, link),
                  "cache entry is stale; call warm() before batch reads");
    PRESS_EXPECTS(array_id < entry.arrays.size(),
                  "array id out of the cached range");
    util::CVec h = entry.h_static;
    for (std::size_t a = 0; a < entry.arrays.size(); ++a)
        add_rows(h, entry.arrays[a],
                 a == array_id ? config : medium.array(a).current_config());
    return h;
}

void LinkCache::invalidate() {
    for (Entry& entry : entries_) entry.valid = false;
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
        static obs::Counter& invalidations =
            obs::MetricsRegistry::global().counter(
                "core.link_cache.invalidations");
        invalidations.add();
    }
}

}  // namespace press::core
