// Factored per-link channel cache: the searcher's fast evaluation path.
//
// For a fixed scene geometry, link endpoints and element load banks, the
// channel of a link decomposes into a configuration-independent part and a
// per-element basis:
//
//     H[k] = H_static[k] + sum_e B[e][ state_e ][k]
//
// where H_static is the CFR of the environment paths (direct + wall images
// + scatterers + static diffuse multipath) and B[e][s] is the CFR of
// element e's two-hop re-radiation under load state s — both independent
// of which configuration is applied. Scoring a candidate configuration
// then costs a row-gather plus a complex accumulation over
// elements x subcarriers (a sparse complex GEMV) instead of an image-
// method re-trace of the scene, which is what lets a controller sweep
// thousands of candidates inside one coherence window.
//
// The basis is stored as a blocked split-complex SoA table: each row
// occupies one contiguous block of 2*row_stride doubles — the re lane
// segment followed by the im lane segment, with row_stride padded up to a
// multiple of util::kernels::kLanes. Keeping a row's re and im segments
// adjacent means a row gather touches ONE forward-striding memory stream
// (and half the TLB pages) instead of two distant ones, which is what
// keeps the accumulation bandwidth-bound rather than stride-bound once
// the table grows to thousands of rows. On top of the row blocking, the
// candidate accumulation is tiled over fixed-size subcarrier blocks
// (kTileSubcarriers): for wide numerologies the element loop runs inside
// each subcarrier tile so the scratch segment stays resident in L1 while
// thousands of rows stream past it. The accumulation runs through the
// util::kernels SoA layer, and the hot read path writes into caller-owned
// scratch (response_into) — zero heap allocations per candidate once the
// scratch reaches steady-state size.
// The reconstruction adds the exact same per-path terms in the exact same
// order as the direct synthesis (environment paths first, then each
// array's elements in order), so a cached response is bit-identical to
// em::frequency_response(medium.resolve_paths(link)) — not merely close.
// The tiling only changes which subcarrier segment is visited when; for
// any single subcarrier the element addition order is still ascending, so
// the blocked layout produces the same bits as the flat one (element-wise
// accumulation has no cross-lane reduction, and the kernels' kLanes
// blocking handles the reductions that do).
//
// Coordinate sweeps get an incremental form: response_base_into() builds
// the response with ONE element's row left out entirely, and
// accumulate_element_row() adds a single row on top. A greedy coordinate
// sweep therefore pays O(1) row-adds per candidate instead of the full
// O(elements) gather, and because the swept row is always added last —
// whether the base was cached (delta path) or recomputed per candidate —
// both paths produce the exact same bits.
//
// Invalidation: entries are validated on every access against
//   - the environment's revision stamp (walls, obstacles, scatterers,
//     reflection order, static paths),
//   - each array's structure revision (elements added, loads swapped by
//     fault injection or trim, element antennas re-pointed),
//   - a fingerprint of the link endpoints (positions and antennas).
// Applying configurations changes none of these, so config sweeps hit the
// cache; fault installation and geometry edits rebuild it. Endpoint
// velocities are ignored: responses are evaluated at elapsed time zero,
// where Doppler contributes no rotation.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "press/config.hpp"
#include "sdr/medium.hpp"
#include "util/cvec.hpp"
#include "util/kernels.hpp"

namespace press::core {

class LinkCache {
public:
    LinkCache() = default;

    // The atomic counters delete the implicit moves, but System (and the
    // scenarios that return one by value) moves caches around before any
    // worker thread exists — plain relaxed exchanges suffice. The source's
    // counters are zeroed so a moved-from cache that is reused starts a
    // fresh count instead of double-reporting the transferred hits/misses
    // in telemetry.
    LinkCache(LinkCache&& other) noexcept
        : entries_(std::move(other.entries_)),
          hits_(other.hits_.exchange(0, std::memory_order_relaxed)),
          misses_(other.misses_.exchange(0, std::memory_order_relaxed)),
          invalidations_(other.invalidations_.exchange(
              0, std::memory_order_relaxed)) {}
    LinkCache& operator=(LinkCache&& other) noexcept {
        entries_ = std::move(other.entries_);
        hits_.store(other.hits_.exchange(0, std::memory_order_relaxed),
                    std::memory_order_relaxed);
        misses_.store(other.misses_.exchange(0, std::memory_order_relaxed),
                      std::memory_order_relaxed);
        invalidations_.store(
            other.invalidations_.exchange(0, std::memory_order_relaxed),
            std::memory_order_relaxed);
        return *this;
    }

    /// Point-in-time snapshot of the cache counters. Counters are kept in
    /// relaxed atomics internally so a telemetry export can read them while
    /// batch workers are folding hits — stats() hands back plain values.
    struct Stats {
        std::uint64_t hits = 0;           ///< responses served from a warm basis
        std::uint64_t misses = 0;         ///< basis (re)builds
        std::uint64_t invalidations = 0;  ///< explicit invalidate() calls
    };

    /// Subcarrier-tile width (doubles) of the blocked accumulation: a tile
    /// of the scratch (2 x 256 doubles = 4 KiB) plus one basis row segment
    /// fits comfortably in L1 while thousands of rows stream through.
    static constexpr std::size_t kTileSubcarriers = 256;

    /// Geometry of one array's basis table, for benchmarks and tests that
    /// want to report (or assert on) the blocked layout.
    struct BasisLayout {
        std::size_t rows = 0;        ///< total element-state rows
        std::size_t num_sc = 0;      ///< used subcarriers per row
        std::size_t row_stride = 0;  ///< doubles per component, kLanes-padded
        std::size_t bytes = 0;       ///< table footprint (rows*2*stride*8)
    };

    /// Layout of the warm entry for (`link_id`, `array_id`). Requires a
    /// warm entry (same precondition as response_into).
    BasisLayout basis_layout(std::size_t link_id, std::size_t array_id) const;

    /// CFR of `link` on the used subcarriers under every array's currently
    /// selected states, rebuilding the factored basis if stale.
    util::CVec response(const sdr::Medium& medium, std::size_t link_id,
                        const sdr::Link& link);

    /// CFR with array `array_id`'s states overridden by `config` (other
    /// arrays stay at their current states). Requires a warm, current
    /// entry (see warm()); never rebuilds, and reads only immutable entry
    /// state — safe to call concurrently from a batch evaluator.
    util::CVec response_with(const sdr::Medium& medium, std::size_t link_id,
                             const sdr::Link& link, std::size_t array_id,
                             const surface::Config& config) const;

    /// The allocation-free form of response_with(): writes the same bits
    /// into caller-owned scratch, resized to the subcarrier count
    /// (capacity is retained across calls, so a reused scratch never
    /// allocates in steady state). Same thread-safety contract.
    void response_into(const sdr::Medium& medium, std::size_t link_id,
                       const sdr::Link& link, std::size_t array_id,
                       const surface::Config& config,
                       util::kernels::SplitVec& out) const;

    /// Coordinate-sweep base: like response_into(), but element `element`
    /// of array `array_id` contributes NO row at all (its state in
    /// `config` is ignored). Adding exactly one of that element's rows
    /// afterwards (accumulate_element_row) yields the sweep's candidate
    /// response with the swept row added last — the canonical arithmetic
    /// both the delta-caching and the per-candidate-recompute paths
    /// reproduce bit-for-bit.
    void response_base_into(const sdr::Medium& medium, std::size_t link_id,
                            const sdr::Link& link, std::size_t array_id,
                            const surface::Config& config,
                            std::size_t element,
                            util::kernels::SplitVec& out) const;

    /// Adds element `element`'s basis row for load state `state` (array
    /// `array_id`) into `h`. Requires a warm entry (validated by the
    /// response_base_into() call that produced `h`).
    void accumulate_element_row(std::size_t link_id, std::size_t array_id,
                                std::size_t element, int state,
                                util::kernels::SplitVec& h) const;

    /// Fused coordinate delta: out = base + element `element`'s basis row
    /// for load state `state`, in ONE pass over out (base untouched) —
    /// bit-identical to copying `base` into `out` and calling
    /// accumulate_element_row(), at 60% of the memory traffic. `out` must
    /// already be sized to `base` (resize it once outside the sweep; the
    /// call itself never allocates) and must not alias `base`.
    void element_row_delta(std::size_t link_id, std::size_t array_id,
                           std::size_t element, int state,
                           const util::kernels::SplitVec& base,
                           util::kernels::SplitVec& out) const;

    // Tile-bounded reads (DESIGN.md §15): the same arithmetic restricted
    // to half-open subcarrier spans. A masked objective only ever reads
    // the tones inside an RU mask's active spans, so the accumulation can
    // skip every basis tile the mask never touches. `out` is still
    // resized to the full subcarrier count, but ONLY the doubles inside
    // the given spans are written — bit-identical to the full-width call
    // on those positions (per subcarrier the element addition order is
    // unchanged); everything outside is left untouched and must not be
    // read. Spans must be ascending, non-overlapping, and inside
    // [0, num_sc) — phy::RuMask::tile_spans(kTileSubcarriers) produces
    // exactly that.

    /// Tile-bounded response_into(): writes only the given spans.
    void response_ranges_into(const sdr::Medium& medium, std::size_t link_id,
                              const sdr::Link& link, std::size_t array_id,
                              const surface::Config& config,
                              const util::kernels::IndexRange* ranges,
                              std::size_t num_ranges,
                              util::kernels::SplitVec& out) const;

    /// Tile-bounded response_base_into(): writes only the given spans.
    void response_base_ranges_into(const sdr::Medium& medium,
                                   std::size_t link_id,
                                   const sdr::Link& link,
                                   std::size_t array_id,
                                   const surface::Config& config,
                                   std::size_t element,
                                   const util::kernels::IndexRange* ranges,
                                   std::size_t num_ranges,
                                   util::kernels::SplitVec& out) const;

    /// Tile-bounded accumulate_element_row(): adds the row over only the
    /// given spans of `h`.
    void accumulate_element_row_ranges(std::size_t link_id,
                                       std::size_t array_id,
                                       std::size_t element, int state,
                                       const util::kernels::IndexRange* ranges,
                                       std::size_t num_ranges,
                                       util::kernels::SplitVec& h) const;

    /// Tile-bounded element_row_delta(): out = base + row over only the
    /// given spans (one fused pass; outside the spans `out` is left
    /// untouched). Same sizing/aliasing contract as element_row_delta().
    void element_row_delta_ranges(std::size_t link_id, std::size_t array_id,
                                  std::size_t element, int state,
                                  const util::kernels::IndexRange* ranges,
                                  std::size_t num_ranges,
                                  const util::kernels::SplitVec& base,
                                  util::kernels::SplitVec& out) const;

    /// Builds (or refreshes) the entry for `link_id` so that subsequent
    /// response_with() calls are pure reads.
    void warm(const sdr::Medium& medium, std::size_t link_id,
              const sdr::Link& link);

    /// Drops every entry (the next response per link is a miss).
    void invalidate();

    /// Folds `n` cache hits observed by a batch of response_with() reads.
    /// response_with itself counts nothing: its contract guarantees a warm
    /// entry (every read is a hit by construction), and the cached
    /// evaluation path is ~quarter-microsecond per call, so even a relaxed
    /// per-call increment would be measurable. Batch owners account for
    /// their reads in one amortised add instead.
    void note_batch_hits(std::uint64_t n);

    Stats stats() const {
        Stats s;
        s.hits = hits_.load(std::memory_order_relaxed);
        s.misses = misses_.load(std::memory_order_relaxed);
        s.invalidations = invalidations_.load(std::memory_order_relaxed);
        return s;
    }

private:
    /// One array's basis: per-state CFR rows in the blocked split-complex
    /// layout. Row r's re segment starts at table[r * 2 * row_stride], its
    /// im segment row_stride doubles later; row_stride is num_sc rounded
    /// up to a multiple of kernels::kLanes (padding stays zero). One
    /// allocation, one memory stream per gathered row.
    struct ArrayBasis {
        std::uint64_t structure_revision = 0;
        std::vector<int> radices;             ///< states per element
        std::vector<std::size_t> row_offset;  ///< element -> first row
        std::size_t num_sc = 0;               ///< valid doubles per segment
        std::size_t row_stride = 0;           ///< padded doubles per segment
        std::vector<double> table;            ///< rows x [re | im] blocks

        const double* row_re(std::size_t row) const {
            return table.data() + row * 2 * row_stride;
        }
        const double* row_im(std::size_t row) const {
            return row_re(row) + row_stride;
        }
        double* row_re(std::size_t row) {
            return table.data() + row * 2 * row_stride;
        }
        double* row_im(std::size_t row) { return row_re(row) + row_stride; }
    };

    /// Link endpoint fingerprint: 2 x (position + antenna facets). Fixed
    /// arity, so current() compares without allocating.
    static constexpr std::size_t kFingerprintSize = 18;
    using Fingerprint = std::array<double, kFingerprintSize>;

    struct Entry {
        bool valid = false;
        std::uint64_t env_revision = 0;
        Fingerprint fingerprint{};
        util::kernels::SplitVec h_static;
        std::vector<ArrayBasis> arrays;
    };

    static Fingerprint link_fingerprint(const sdr::Link& link);
    bool current(const sdr::Medium& medium, const Entry& entry,
                 const sdr::Link& link) const;
    void rebuild(const sdr::Medium& medium, Entry& entry,
                 const sdr::Link& link);

    /// Accumulates the rows selected by `config` into the split response
    /// over each span, optionally skipping one element (kNoSkip = none).
    /// add_rows() is the full-width special case (one span covering the
    /// whole axis), so the two cannot drift.
    static constexpr std::size_t kNoSkip = static_cast<std::size_t>(-1);
    static void add_rows(util::kernels::SplitVec& h, const ArrayBasis& basis,
                         const surface::Config& config,
                         std::size_t skip_element = kNoSkip);
    static void add_rows_ranges(util::kernels::SplitVec& h,
                                const ArrayBasis& basis,
                                const surface::Config& config,
                                const util::kernels::IndexRange* ranges,
                                std::size_t num_ranges,
                                std::size_t skip_element);

    /// Shared body of response_with / response_into / response_base_into
    /// and their tile-bounded forms (full-width calls pass one span).
    void accumulate_response_ranges(const sdr::Medium& medium,
                                    const Entry& entry, std::size_t array_id,
                                    const surface::Config& config,
                                    std::size_t skip_element,
                                    const util::kernels::IndexRange* ranges,
                                    std::size_t num_ranges,
                                    util::kernels::SplitVec& out) const;
    void accumulate_response(const sdr::Medium& medium, const Entry& entry,
                             std::size_t array_id,
                             const surface::Config& config,
                             std::size_t skip_element,
                             util::kernels::SplitVec& out) const;

    std::vector<Entry> entries_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> invalidations_{0};
};

}  // namespace press::core
