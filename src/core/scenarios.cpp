#include "core/scenarios.hpp"

#include "em/material.hpp"
#include "em/statistical.hpp"
#include "util/contracts.hpp"
#include "util/units.hpp"

namespace press::core {

namespace {

using em::Aabb;
using em::Antenna;
using em::Environment;
using em::Material;
using em::RadiatingEndpoint;
using em::Room;
using em::Scatterer;
using em::Vec3;

/// Builds the study room with seeded clutter. Every scenario shares this
/// base; the seed moves scatterers (the paper notes each element placement
/// "results in a different scattering environment due to the movement of
/// our experiment equipment").
Environment make_room_environment(util::Rng& rng, const StudyParams& p) {
    Environment env;
    Room room(Aabb{{0.0, 0.0, 0.0}, {p.room_x, p.room_y, p.room_z}},
              Material::concrete());
    room.set_wall_material(em::Wall::kZHigh, Material::drywall());
    env.set_room(room);
    env.set_max_reflection_order(p.wall_reflection_order);
    for (int i = 0; i < p.num_scatterers; ++i) {
        Scatterer s;
        s.position = {rng.uniform(0.4, p.room_x - 0.4),
                      rng.uniform(0.4, p.room_y - 0.4),
                      rng.uniform(0.3, p.room_z - 0.3)};
        s.reflectivity =
            rng.uniform(0.10, 0.35) * rng.unit_phasor();
        env.add_scatterer(s);
    }
    // Metal cabinets and equipment racks: large radar cross-sections that
    // dominate the scattered field the way lab furniture does.
    for (int i = 0; i < p.num_metal_scatterers; ++i) {
        Scatterer s;
        s.position = {rng.uniform(1.0, p.room_x - 1.0),
                      rng.uniform(1.0, p.room_y - 1.0),
                      rng.uniform(0.5, 2.0)};
        s.reflectivity = rng.uniform(0.6, 1.4) * rng.unit_phasor();
        env.add_scatterer(s);
    }
    return env;
}

void add_blocker(Environment& env, const StudyParams& p) {
    // A metal screen across the direct TX-RX line.
    em::Obstacle blocker;
    blocker.box = Aabb{{p.room_x / 2.0 - 0.15, p.room_y / 2.0 - 0.9, 0.0},
                       {p.room_x / 2.0 + 0.15, p.room_y / 2.0 + 0.9, 2.2}};
    blocker.attenuation_db = p.blocker_attenuation_db;
    env.add_obstacle(blocker);
}

RadiatingEndpoint make_endpoint(const Vec3& pos, double gain_dbi) {
    RadiatingEndpoint e;
    e.position = pos;
    e.antenna = Antenna::omni(gain_dbi);
    return e;
}

/// The element placement region: a band 1-2 m from both endpoints, offset
/// from the TX-RX axis (the paper's "grid 1-2 meters from both the
/// transmitting and receiving antennas").
Aabb element_region(const StudyParams& p) {
    // A band offset ~1.0-1.9 m from the TX-RX axis, roughly equidistant
    // from both endpoints ("1-2 meters from both ... antennas").
    return Aabb{{p.room_x / 2.0 - 0.9, p.room_y / 2.0 - 2.0, 0.9},
                {p.room_x / 2.0 + 0.9, p.room_y / 2.0 - 1.25, 1.6}};
}

Vec3 tx_position(const StudyParams& p) {
    return {p.room_x / 2.0 - p.link_distance_m / 2.0, p.room_y / 2.0, 1.2};
}

Vec3 rx_position(const StudyParams& p) {
    return {p.room_x / 2.0 + p.link_distance_m / 2.0, p.room_y / 2.0, 1.2};
}

// Per-seed placement jitter: the paper notes each repetition "results in a
// different scattering environment due to the movement of our experiment
// equipment", so endpoints shift a little between scenario seeds.
Vec3 jitter(const Vec3& base, util::Rng& rng) {
    return {base.x + rng.uniform(-0.35, 0.35),
            base.y + rng.uniform(-0.35, 0.35),
            base.z + rng.uniform(-0.15, 0.15)};
}

}  // namespace

LinkScenario make_link_scenario(std::uint64_t seed, bool line_of_sight,
                                const StudyParams& p) {
    util::Rng rng(seed);
    Environment env = make_room_environment(rng, p);
    if (!line_of_sight) add_blocker(env, p);

    sdr::Medium medium(std::move(env), phy::OfdmParams::wifi20());
    util::Rng placement_rng = rng.fork();
    const std::size_t array_id = medium.add_array(surface::random_sp4t_array(
        p.num_elements, element_region(p),
        Antenna::omni(p.element_gain_dbi), p.carrier_hz, placement_rng));

    LinkScenario scenario{System(std::move(medium)), array_id, 0};
    sdr::Link link;
    util::Rng jitter_rng = rng.fork();
    link.tx = make_endpoint(jitter(tx_position(p), jitter_rng),
                            p.endpoint_gain_dbi);
    link.rx = make_endpoint(jitter(rx_position(p), jitter_rng),
                            p.endpoint_gain_dbi);
    link.profile = sdr::RadioProfile::warp_v3();
    scenario.link_id = scenario.system.add_link(link);
    return scenario;
}

LinkScenario make_active_link_scenario(std::uint64_t seed,
                                       bool line_of_sight, double gain_db,
                                       const StudyParams& p) {
    // Identical world to the passive scenario (same seed -> same clutter
    // and element positions), with the passive loads swapped for
    // amplify-and-forward states.
    LinkScenario scenario = make_link_scenario(seed, line_of_sight, p);
    surface::Array& passive =
        scenario.system.medium().array(scenario.array_id);
    surface::Array active;
    for (const surface::Element& e : passive.elements()) {
        active.add_element(surface::Element::active(
            e.position(), e.antenna(), p.carrier_hz, /*num_phases=*/4,
            gain_db));
    }
    passive = std::move(active);
    return scenario;
}

LinkScenario make_sv_link_scenario(std::uint64_t seed,
                                   const StudyParams& p) {
    util::Rng rng(seed);
    Environment env;  // no room: the clutter is entirely statistical
    add_blocker(env, p);
    em::SalehValenzuelaParams sv;
    util::Rng sv_rng = rng.fork();
    env.add_static_paths(em::saleh_valenzuela_paths(sv, sv_rng));

    sdr::Medium medium(std::move(env), phy::OfdmParams::wifi20());
    util::Rng placement_rng = rng.fork();
    const std::size_t array_id = medium.add_array(surface::random_sp4t_array(
        p.num_elements, element_region(p),
        Antenna::omni(p.element_gain_dbi), p.carrier_hz, placement_rng));

    LinkScenario scenario{System(std::move(medium)), array_id, 0};
    sdr::Link link;
    util::Rng jitter_rng = rng.fork();
    link.tx = make_endpoint(jitter(tx_position(p), jitter_rng),
                            p.endpoint_gain_dbi);
    link.rx = make_endpoint(jitter(rx_position(p), jitter_rng),
                            p.endpoint_gain_dbi);
    link.profile = sdr::RadioProfile::warp_v3();
    scenario.link_id = scenario.system.add_link(link);
    return scenario;
}

LinkScenario make_fig7_link_scenario(std::uint64_t seed,
                                     const StudyParams& p) {
    util::Rng rng(seed);
    Environment env = make_room_environment(rng, p);
    add_blocker(env, p);

    sdr::Medium medium(std::move(env), phy::OfdmParams::n210_wideband());

    const Aabb region = element_region(p);
    util::Rng placement_rng = rng.fork();
    surface::Array array;
    for (int i = 0; i < 2; ++i) {
        const Vec3 pos{placement_rng.uniform(region.lo.x, region.hi.x),
                       placement_rng.uniform(region.lo.y, region.hi.y),
                       placement_rng.uniform(region.lo.z, region.hi.z)};
        array.add_element(surface::Element::uniform_phases(
            pos, Antenna::omni(p.element_gain_dbi), p.carrier_hz,
            /*num_phases=*/4, /*include_off=*/false));
    }

    LinkScenario scenario{System(std::move(medium)), 0, 0};
    scenario.array_id = scenario.system.medium().add_array(std::move(array));

    sdr::Link link;
    util::Rng jitter_rng = rng.fork();
    link.tx = make_endpoint(jitter(tx_position(p), jitter_rng),
                            p.endpoint_gain_dbi);
    link.rx = make_endpoint(jitter(rx_position(p), jitter_rng),
                            p.endpoint_gain_dbi);
    link.profile = sdr::RadioProfile::usrp_n210();
    scenario.link_id = scenario.system.add_link(link);
    return scenario;
}

LinkScenario make_massive_scenario(std::size_t n_elements,
                                   std::uint64_t seed,
                                   const MassiveParams& p) {
    PRESS_EXPECTS(n_elements >= 1, "need at least one element");
    PRESS_EXPECTS(p.num_states >= 2, "elements need at least two states");
    // The room, clutter and link budget reuse the study-room builder;
    // only the element deployment differs (a dense panel instead of the
    // paper's three hand-placed directional elements).
    StudyParams sp;
    sp.carrier_hz = p.carrier_hz;
    sp.room_x = p.room_x;
    sp.room_y = p.room_y;
    sp.room_z = p.room_z;
    sp.endpoint_gain_dbi = p.endpoint_gain_dbi;
    sp.element_gain_dbi = p.element_gain_dbi;
    sp.blocker_attenuation_db = p.blocker_attenuation_db;
    sp.link_distance_m = p.link_distance_m;
    sp.num_scatterers = p.num_scatterers;
    sp.num_metal_scatterers = p.num_metal_scatterers;
    sp.wall_reflection_order = p.wall_reflection_order;

    util::Rng rng(seed);
    Environment env = make_room_environment(rng, sp);
    add_blocker(env, sp);
    sdr::Medium medium(std::move(env), phy::OfdmParams::wifi20());

    // Column-major grid on a vertical panel parallel to the TX-RX axis,
    // offset from it like the study's element band; half-wavelength pitch
    // with sub-pitch placement jitter per seed.
    const double spacing = p.panel_spacing_m > 0.0
                               ? p.panel_spacing_m
                               : util::wavelength(p.carrier_hz) / 2.0;
    const double z_lo = 0.4;
    const double z_span = p.room_z - 0.8;
    const std::size_t rows_z = std::max<std::size_t>(
        1, static_cast<std::size_t>(z_span / spacing) + 1);
    const std::size_t cols = (n_elements + rows_z - 1) / rows_z;
    const double panel_width = static_cast<double>(cols - 1) * spacing;
    PRESS_EXPECTS(panel_width <= p.room_x - 1.0,
                  "element panel does not fit the room");
    const double x0 = p.room_x / 2.0 - panel_width / 2.0;
    const double panel_y = p.room_y / 2.0 - 2.0;

    util::Rng placement_rng = rng.fork();
    surface::Array array;
    for (std::size_t i = 0; i < n_elements; ++i) {
        const std::size_t col = i / rows_z;
        const std::size_t row = i % rows_z;
        const Vec3 pos{
            x0 + static_cast<double>(col) * spacing +
                placement_rng.uniform(-0.12, 0.12) * spacing,
            panel_y + placement_rng.uniform(-0.01, 0.01),
            z_lo + static_cast<double>(row) * spacing +
                placement_rng.uniform(-0.12, 0.12) * spacing};
        array.add_element(surface::Element::uniform_phases(
            pos, Antenna::omni(p.element_gain_dbi), p.carrier_hz,
            /*num_phases=*/p.num_states, /*include_off=*/false));
    }

    LinkScenario scenario{System(std::move(medium)), 0, 0};
    scenario.array_id = scenario.system.medium().add_array(std::move(array));

    sdr::Link link;
    util::Rng jitter_rng = rng.fork();
    link.tx = make_endpoint(jitter(tx_position(sp), jitter_rng),
                            p.endpoint_gain_dbi);
    link.rx = make_endpoint(jitter(rx_position(sp), jitter_rng),
                            p.endpoint_gain_dbi);
    link.profile = sdr::RadioProfile::warp_v3();
    scenario.link_id = scenario.system.add_link(link);
    return scenario;
}

WidebandScenario make_wideband_scenario(std::uint64_t seed,
                                        const WidebandParams& p) {
    PRESS_EXPECTS(p.num_elements >= 1, "need at least one element");
    PRESS_EXPECTS(p.num_states >= 2, "elements need at least two states");
    PRESS_EXPECTS(p.num_ru >= 1, "need at least one RU");
    // The study room at the wideband numerology's 6 GHz carrier; the
    // same clutter and blocker give the delay spread that makes a
    // 160/320 MHz channel deeply frequency-selective.
    StudyParams sp;
    sp.carrier_hz = p.ofdm.carrier_hz();

    util::Rng rng(seed);
    Environment env = make_room_environment(rng, sp);
    add_blocker(env, sp);
    sdr::Medium medium(std::move(env), p.ofdm);

    const Aabb region = element_region(sp);
    util::Rng placement_rng = rng.fork();
    surface::Array array;
    for (int i = 0; i < p.num_elements; ++i) {
        const Vec3 pos{placement_rng.uniform(region.lo.x, region.hi.x),
                       placement_rng.uniform(region.lo.y, region.hi.y),
                       placement_rng.uniform(region.lo.z, region.hi.z)};
        array.add_element(surface::Element::uniform_phases(
            pos, Antenna::omni(sp.element_gain_dbi), sp.carrier_hz,
            /*num_phases=*/p.num_states, /*include_off=*/false));
    }

    phy::RuMask mask = phy::RuMask::uniform(p.ofdm.num_used(), p.num_ru);
    if (!p.punctured_rus.empty()) mask = mask.punctured(p.punctured_rus);

    WidebandScenario scenario{System(std::move(medium)), 0, 0,
                              std::move(mask)};
    scenario.array_id = scenario.system.medium().add_array(std::move(array));

    sdr::Link link;
    util::Rng jitter_rng = rng.fork();
    link.tx = make_endpoint(jitter(tx_position(sp), jitter_rng),
                            sp.endpoint_gain_dbi);
    link.rx = make_endpoint(jitter(rx_position(sp), jitter_rng),
                            sp.endpoint_gain_dbi);
    link.profile = sdr::RadioProfile::warp_v3();
    scenario.link_id = scenario.system.add_link(link);
    return scenario;
}

MultiLinkScenario make_multi_link_scenario(std::uint64_t seed,
                                           const MultiLinkParams& p) {
    PRESS_EXPECTS(p.num_aps >= 1, "need at least one AP");
    PRESS_EXPECTS(p.clients_per_ap >= 1, "need at least one client per AP");
    PRESS_EXPECTS(p.num_elements >= 1, "need at least one element");
    PRESS_EXPECTS(p.num_states >= 2, "elements need at least two states");
    const StudyParams& sp = p.study;

    util::Rng rng(seed);
    Environment env = make_room_environment(rng, sp);
    add_blocker(env, sp);
    sdr::Medium medium(std::move(env), phy::OfdmParams::wifi20());

    // Element panel between the AP wall and the client half: the massive
    // scenario's column-major half-wavelength grid, sized down to
    // p.num_elements multi-state elements.
    const double spacing = util::wavelength(sp.carrier_hz) / 2.0;
    const double z_lo = 0.9;
    const std::size_t rows_z = 4;
    const std::size_t n_elements = static_cast<std::size_t>(p.num_elements);
    const std::size_t cols = (n_elements + rows_z - 1) / rows_z;
    const double panel_width = static_cast<double>(cols - 1) * spacing;
    PRESS_EXPECTS(panel_width <= sp.room_x - 1.0,
                  "element panel does not fit the room");
    const double x0 = sp.room_x / 2.0 - panel_width / 2.0;
    const double panel_y = sp.room_y / 2.0 - 2.0;

    util::Rng placement_rng = rng.fork();
    surface::Array array;
    for (std::size_t i = 0; i < n_elements; ++i) {
        const std::size_t col = i / rows_z;
        const std::size_t row = i % rows_z;
        const Vec3 pos{
            x0 + static_cast<double>(col) * spacing +
                placement_rng.uniform(-0.12, 0.12) * spacing,
            panel_y + placement_rng.uniform(-0.01, 0.01),
            z_lo + static_cast<double>(row) * spacing +
                placement_rng.uniform(-0.12, 0.12) * spacing};
        array.add_element(surface::Element::uniform_phases(
            pos, Antenna::omni(sp.element_gain_dbi), sp.carrier_hz,
            /*num_phases=*/p.num_states, /*include_off=*/false));
    }

    MultiLinkScenario scenario{System(std::move(medium)), 0, p.num_aps,
                               p.clients_per_ap,
                               p.num_aps * p.clients_per_ap};
    scenario.array_id = scenario.system.medium().add_array(std::move(array));

    // APs wall-mounted along the panel side, clients seeded over the
    // opposite half of the room. AP-major link order: every AP's links
    // are contiguous, so the shared basis forms num_aps groups.
    const sdr::RadioProfile profile = sdr::RadioProfile::warp_v3();
    const double ap_y = 0.8;
    const double ap_pitch =
        (sp.room_x - 3.0) / static_cast<double>(std::max<std::size_t>(
                                1, p.num_aps - 1));
    util::Rng client_rng = rng.fork();
    for (std::size_t a = 0; a < p.num_aps; ++a) {
        const Vec3 ap_pos{
            p.num_aps == 1 ? sp.room_x / 2.0
                           : 1.5 + static_cast<double>(a) * ap_pitch,
            ap_y, 2.4};
        const RadiatingEndpoint ap =
            make_endpoint(ap_pos, sp.endpoint_gain_dbi);
        for (std::size_t c = 0; c < p.clients_per_ap; ++c) {
            const Vec3 client_pos{
                client_rng.uniform(0.6, sp.room_x - 0.6),
                client_rng.uniform(sp.room_y / 2.0, sp.room_y - 0.6),
                client_rng.uniform(0.9, 1.5)};
            const RadiatingEndpoint client =
                make_endpoint(client_pos, sp.endpoint_gain_dbi);
            scenario.system.add_link({ap, client, profile});
        }
    }
    return scenario;
}

HarmonizationScenario make_harmonization_scenario(std::uint64_t seed,
                                                  const StudyParams& p) {
    util::Rng rng(seed);
    Environment env = make_room_environment(rng, p);
    add_blocker(env, p);

    sdr::Medium medium(std::move(env), phy::OfdmParams::n210_wideband());

    // Two 4-phase elements (no absorptive load) near the link region,
    // seeded placement, "to decrease the reflected phase granularity".
    const Aabb region = element_region(p);
    util::Rng placement_rng = rng.fork();
    surface::Array array;
    for (int i = 0; i < 2; ++i) {
        const Vec3 pos{placement_rng.uniform(region.lo.x, region.hi.x),
                       placement_rng.uniform(region.lo.y, region.hi.y),
                       placement_rng.uniform(region.lo.z, region.hi.z)};
        array.add_element(surface::Element::uniform_phases(
            pos, Antenna::omni(p.element_gain_dbi), p.carrier_hz,
            /*num_phases=*/4, /*include_off=*/false));
    }

    HarmonizationScenario scenario{System(std::move(medium)), 0};
    scenario.array_id = scenario.system.medium().add_array(std::move(array));

    // Two networks: AP1/client1 on the left, AP2/client2 on the right.
    const sdr::RadioProfile profile = sdr::RadioProfile::usrp_n210();
    const double cx = p.room_x / 2.0;
    const double cy = p.room_y / 2.0;
    const RadiatingEndpoint ap1 =
        make_endpoint({cx - 2.0, cy - 1.6, 1.2}, p.endpoint_gain_dbi);
    const RadiatingEndpoint c1 =
        make_endpoint({cx + 2.0, cy - 2.0, 1.2}, p.endpoint_gain_dbi);
    const RadiatingEndpoint ap2 =
        make_endpoint({cx - 2.0, cy + 1.6, 1.2}, p.endpoint_gain_dbi);
    const RadiatingEndpoint c2 =
        make_endpoint({cx + 2.0, cy + 2.0, 1.2}, p.endpoint_gain_dbi);

    scenario.system.add_link({ap1, c1, profile});  // link 0: comm A
    scenario.system.add_link({ap2, c2, profile});  // link 1: comm B
    scenario.system.add_link({ap1, c2, profile});  // link 2: interference
    scenario.system.add_link({ap2, c1, profile});  // link 3: interference
    return scenario;
}

MimoScenario make_mimo_scenario(std::uint64_t seed, const StudyParams& p) {
    util::Rng rng(seed);
    Environment env = make_room_environment(rng, p);
    add_blocker(env, p);

    MimoScenario scenario{
        sdr::Medium(std::move(env), phy::OfdmParams::wifi20()),
        {},
        {},
        sdr::RadioProfile::usrp_x310(),
        0};

    const double lambda = util::wavelength(p.carrier_hz);
    const Vec3 tx0 = tx_position(p);
    const Vec3 rx0 = rx_position(p);
    // TX pair at half-wavelength spacing along y.
    scenario.tx_antennas.push_back(
        make_endpoint(tx0, p.endpoint_gain_dbi));
    scenario.tx_antennas.push_back(make_endpoint(
        {tx0.x, tx0.y + lambda / 2.0, tx0.z}, p.endpoint_gain_dbi));
    scenario.rx_antennas.push_back(
        make_endpoint(rx0, p.endpoint_gain_dbi));
    scenario.rx_antennas.push_back(make_endpoint(
        {rx0.x, rx0.y + lambda / 2.0, rx0.z}, p.endpoint_gain_dbi));

    // Elements co-linear with the TX pair at one-wavelength spacing,
    // continuing the pair's axis (the Figure-8 deployment).
    const Vec3 origin{tx0.x, tx0.y + lambda / 2.0 + lambda, tx0.z};
    surface::Array array;
    for (int i = 0; i < p.num_elements; ++i) {
        array.add_element(surface::Element::sp4t_prototype(
            {origin.x, origin.y + lambda * static_cast<double>(i),
             origin.z},
            Antenna::omni(p.element_gain_dbi), p.carrier_hz));
    }
    scenario.array_id = scenario.medium.add_array(std::move(array));
    return scenario;
}

}  // namespace press::core
