// Experiment runners: one function per figure / in-text claim of the
// paper's Section 3, returning structured results that benches print and
// tests assert on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenarios.hpp"
#include "press/config.hpp"
#include "util/rng.hpp"

namespace press::core {

/// A full sweep of every configuration of a link scenario's array,
/// repeated `trials` times (the paper iterates its 64 combinations 10
/// times).
struct ConfigSweep {
    /// Mean measured per-subcarrier SNR across trials: [config][subcarrier].
    std::vector<std::vector<double>> mean_snr_db;
    /// Raw per-trial profiles: [trial][config][subcarrier] (Figure 5 draws
    /// one CCDF per experimental repetition from these).
    std::vector<std::vector<std::vector<double>>> snr_per_trial_db;
    /// Per-trial minimum-across-subcarriers SNR: [trial][config].
    std::vector<std::vector<double>> min_snr_per_trial_db;
    /// Paper-notation label per configuration, e.g. "(pi, 0, 0.5pi)".
    std::vector<std::string> config_labels;
    std::size_t num_subcarriers = 0;
};

/// Sweeps all configurations of `scenario`'s array.
ConfigSweep sweep_configurations(LinkScenario& scenario, int trials,
                                 util::Rng& rng);

/// The configuration pair with the largest single-subcarrier mean-SNR
/// difference (what each Figure-4 panel plots).
struct ExtremePair {
    std::size_t config_a = 0;
    std::size_t config_b = 0;
    std::size_t subcarrier = 0;   ///< where the largest difference occurs
    double max_diff_db = 0.0;
};

ExtremePair find_extreme_pair(const ConfigSweep& sweep);

/// Figure 5: movement (in subcarriers) of the most significant null
/// between every pair of configurations that both exhibit a null at least
/// `threshold_db` below their median SNR. Computed on the mean profiles.
std::vector<double> null_movements(const ConfigSweep& sweep,
                                   double threshold_db = 5.0);

/// Figure 5's per-repetition variant: null movements within one trial's
/// profiles (one CCDF curve per experimental repetition).
std::vector<double> null_movements_for_trial(const ConfigSweep& sweep,
                                             std::size_t trial,
                                             double threshold_db = 5.0);

/// Figure 6 (left): |change in minimum-subcarrier SNR| across all
/// unordered configuration pairs, from mean profiles.
std::vector<double> min_snr_changes(const ConfigSweep& sweep);

/// Largest change of the mean SNR on any single subcarrier (the paper's
/// "largest change in the mean SNR on any given subcarrier is 18.6 dB").
double max_mean_subcarrier_swing_db(const ConfigSweep& sweep);

/// Largest single-trial, single-subcarrier SNR change between configs (the
/// paper's 26 dB headline). Computed from a per-trial sweep.
double max_single_trial_swing_db(LinkScenario& scenario, int trials,
                                 util::Rng& rng);

/// Figure 7: two configurations with opposite halves-of-band selectivity.
struct HarmonizationPair {
    bool found = false;
    std::uint64_t seed = 0;              ///< scenario seed that exhibits it
    surface::Config config_a, config_b;
    std::string label_a, label_b;
    std::vector<double> snr_a_db, snr_b_db;  ///< per-subcarrier profiles
    double selectivity_a_db = 0.0;  ///< mean(low half) - mean(high half)
    double selectivity_b_db = 0.0;
};

/// Emulates the paper's curation ("the elements and the surrounding
/// environment were manipulated until a frequency-selective channel was
/// found"): advances the scenario seed from `base_seed` until some
/// configuration pair shows at least `min_selectivity_db` of opposite
/// band preference, up to `max_attempts` seeds.
HarmonizationPair find_harmonization_pair(std::uint64_t base_seed,
                                          int max_attempts,
                                          double min_selectivity_db,
                                          util::Rng& rng);

/// Figure 8: per-configuration distribution of the 2x2 condition number.
struct MimoSweep {
    /// Condition number (dB) per subcarrier, from the mean of `repeats`
    /// channel measurements: [config][subcarrier].
    std::vector<std::vector<double>> condition_db;
    std::vector<std::string> config_labels;
    std::size_t best_config = 0;   ///< lowest median condition number
    std::size_t worst_config = 0;  ///< highest median condition number
    double median_gap_db = 0.0;    ///< worst median - best median
};

MimoSweep sweep_mimo(MimoScenario& scenario, int repeats, util::Rng& rng);

/// The Section-3 line-of-sight claim: maximum per-subcarrier swing the
/// array can induce on a link, from noise-free responses (isolates the
/// array's effect from estimator noise).
double max_true_swing_db(LinkScenario& scenario);

}  // namespace press::core
