// Adapts a core::System into the callback engine control::Service runs
// on. The control layer cannot depend on core (press_core links
// press_control), so the service is written against an injected
// ServiceEngine bundle — the same decoupling Controller uses for
// ApplyFn/MeasureFn — and this header is where the two layers meet:
// pressd, press_loadgen, the service tests and the service bench all
// build their engine here.
#pragma once

#include <cstddef>
#include <cstdint>

#include "control/plane.hpp"
#include "control/service.hpp"
#include "core/system.hpp"
#include "util/rng.hpp"

namespace press::core {

/// Knobs for the adapted engine.
struct ServeConfig {
    /// Timing model every optimize cycle is priced with.
    control::ControlPlaneModel plane = control::ControlPlaneModel::fast();
    /// Evaluation threads per request. The service executes one request
    /// at a time, so the default keeps per-request cost (thread spawn)
    /// minimal; raise it for scenes where a single search dominates.
    std::size_t threads = 1;
    /// Seed of the engine's private rng (measurement noise draws).
    std::uint64_t seed = 0x5E221CEull;
};

/// Builds a ServiceEngine over `system`. The engine holds a reference:
/// `system` must outlive any Service built on the returned bundle.
///
/// Semantics mapped onto System:
///   optimize        -> System::optimize_fast for the single-link
///                      presets (kMinSnr/kMeanSnr), or
///                      System::optimize_multilink for the composite
///                      presets (selector >= kMaxMinFair) scored over
///                      the shared multi-link basis; either way
///                      cache-backed and leaves the best
///                      configuration applied
///   mutate          -> one element state poked through System::apply
///                      (fault models respected)
///   checkpoint      -> snapshots every array's current configuration
///   revert          -> re-applies the snapshot (the watchdog's
///                      last-known-good restore)
///   scene_revision  -> environment revision + array structure stamps +
///                      a mutation counter, so the service can assert
///                      the frozen-scene guarantee across each cycle
control::ServiceEngine make_service_engine(System& system,
                                           const ServeConfig& config = {});

}  // namespace press::core
