#include "core/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/contracts.hpp"

namespace press::core {

void print_table(std::ostream& os, const std::vector<std::string>& headers,
                 const std::vector<std::vector<std::string>>& rows) {
    PRESS_EXPECTS(!headers.empty(), "table needs headers");
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto& row : rows) {
        PRESS_EXPECTS(row.size() == headers.size(),
                      "row arity must match headers");
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    auto line = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << cells[c];
        os << '\n';
    };
    line(headers);
    std::vector<std::string> rule(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        rule[c] = std::string(widths[c], '-');
    line(rule);
    for (const auto& row : rows) line(row);
}

std::string fmt(double value, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

void print_series(std::ostream& os, const std::string& name,
                  const std::vector<double>& x,
                  const std::vector<double>& y) {
    PRESS_EXPECTS(x.size() == y.size(), "series lengths must match");
    for (std::size_t i = 0; i < x.size(); ++i)
        os << name << ' ' << fmt(x[i], 4) << ' ' << fmt(y[i], 4) << '\n';
}

void print_ccdf(std::ostream& os, const std::string& name,
                const std::vector<double>& samples, std::size_t points) {
    const util::EmpiricalDistribution dist(samples);
    for (const auto& [x, p] : dist.ccdf_grid(points))
        os << name << ' ' << fmt(x, 4) << ' ' << fmt(p, 5) << '\n';
}

void print_cdf(std::ostream& os, const std::string& name,
               const std::vector<double>& samples, std::size_t points) {
    const util::EmpiricalDistribution dist(samples);
    for (const auto& [x, p] : dist.cdf_grid(points))
        os << name << ' ' << fmt(x, 4) << ' ' << fmt(p, 5) << '\n';
}

std::string sparkline(const std::vector<double>& values) {
    static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                    "▅", "▆", "▇", "█"};
    if (values.empty()) return "";
    const double lo = *std::min_element(values.begin(), values.end());
    const double hi = *std::max_element(values.begin(), values.end());
    const double span = hi - lo;
    std::string out;
    for (double v : values) {
        const int level =
            span <= 0.0
                ? 0
                : std::min(7, static_cast<int>((v - lo) / span * 8.0));
        out += kLevels[level];
    }
    return out;
}

}  // namespace press::core
