#include "core/system.hpp"

#include "util/contracts.hpp"

namespace press::core {

System::System(sdr::Medium medium) : medium_(std::move(medium)) {}

std::size_t System::add_link(sdr::Link link) {
    links_.push_back(std::move(link));
    return links_.size() - 1;
}

const sdr::Link& System::link(std::size_t id) const {
    PRESS_EXPECTS(id < links_.size(), "link id out of range");
    return links_[id];
}

sdr::Link& System::link(std::size_t id) {
    PRESS_EXPECTS(id < links_.size(), "link id out of range");
    return links_[id];
}

void System::set_sounding_repeats(std::size_t repeats) {
    PRESS_EXPECTS(repeats >= 2, "sounding needs at least two repetitions");
    sounding_repeats_ = repeats;
}

phy::ChannelEstimate System::sound(std::size_t link_id,
                                   util::Rng& rng) const {
    return medium_.sound(link(link_id), sounding_repeats_, rng);
}

std::vector<double> System::measured_snr_db(std::size_t link_id,
                                            util::Rng& rng) const {
    return sound(link_id, rng).snr_db();
}

std::vector<double> System::true_snr_db(std::size_t link_id) const {
    return medium_.true_snr_db(link(link_id));
}

control::Observation System::observe(util::Rng& rng) const {
    PRESS_EXPECTS(!links_.empty(), "no links registered");
    control::Observation obs;
    obs.link_snr_db.reserve(links_.size());
    for (std::size_t i = 0; i < links_.size(); ++i)
        obs.link_snr_db.push_back(measured_snr_db(i, rng));
    return obs;
}

control::Observation System::observe_true() const {
    PRESS_EXPECTS(!links_.empty(), "no links registered");
    control::Observation obs;
    obs.link_snr_db.reserve(links_.size());
    for (std::size_t i = 0; i < links_.size(); ++i)
        obs.link_snr_db.push_back(true_snr_db(i));
    return obs;
}

void System::inject_faults(std::size_t array_id, fault::FaultModel model) {
    surface::Array& array = medium_.array(array_id);
    model.install(array);
    fault_models_.insert_or_assign(array_id, std::move(model));
}

const fault::FaultModel* System::faults(std::size_t array_id) const {
    const auto it = fault_models_.find(array_id);
    return it == fault_models_.end() ? nullptr : &it->second;
}

void System::apply(std::size_t array_id, const surface::Config& config) {
    surface::Array& array = medium_.array(array_id);
    const auto it = fault_models_.find(array_id);
    if (it != fault_models_.end())
        it->second.apply(array, config);
    else
        array.apply(config);
}

fault::HealthReport System::probe_health(
    std::size_t array_id, const control::ControlPlaneModel& plane,
    util::Rng& rng, const fault::ProbeOptions& options) {
    PRESS_EXPECTS(!links_.empty(), "register links before probing");
    const surface::Array& array = medium_.array(array_id);
    fault::HealthMonitor monitor(
        [this, array_id](const surface::Config& c) {
            apply(array_id, c);
            return true;
        },
        [this, &rng]() { return observe(rng); }, links_.size(),
        medium_.ofdm().num_used());
    return monitor.probe(array.config_space(), array.current_config(),
                         plane, options);
}

control::OptimizationOutcome System::optimize(
    std::size_t array_id, const control::Objective& objective,
    const control::Searcher& searcher,
    const control::ControlPlaneModel& plane, double time_budget_s,
    util::Rng& rng) {
    PRESS_EXPECTS(!links_.empty(), "register links before optimizing");
    const surface::ConfigSpace space =
        medium_.array(array_id).config_space();
    control::Controller controller(
        plane,
        [this, array_id](const surface::Config& c) {
            apply(array_id, c);
            return true;
        },
        [this, &rng]() { return observe(rng); }, links_.size(),
        medium_.ofdm().num_used());
    return controller.optimize(space, objective, searcher, time_budget_s,
                               rng);
}

control::OptimizationOutcome System::optimize_degraded(
    std::size_t array_id, const control::Objective& objective,
    const control::Searcher& searcher,
    const control::ControlPlaneModel& plane, double time_budget_s,
    const fault::HealthReport& report, util::Rng& rng) {
    PRESS_EXPECTS(!links_.empty(), "register links before optimizing");
    const surface::Array& array = medium_.array(array_id);
    const surface::ConfigSpace space = array.config_space();
    PRESS_EXPECTS(report.suspect.size() == space.num_elements(),
                  "health report does not match this array");

    const std::size_t flagged = report.num_suspect();
    // Nothing to freeze — or nothing left to search — degrades to the
    // plain path over the full space.
    if (flagged == 0 || flagged == space.num_elements())
        return optimize(array_id, objective, searcher, plane,
                        time_budget_s, rng);

    const surface::FrozenProjection projection =
        report.freeze(space, array.current_config());
    control::Controller controller(
        plane,
        [this, array_id, &projection](const surface::Config& reduced) {
            apply(array_id, projection.lift(reduced));
            return true;
        },
        [this, &rng]() { return observe(rng); }, links_.size(),
        medium_.ofdm().num_used());
    control::OptimizationOutcome outcome =
        controller.optimize(projection.reduced(), objective, searcher,
                            time_budget_s, rng);
    // Report the winning configuration in full arity, as callers expect.
    if (!outcome.search.best_config.empty())
        outcome.search.best_config =
            projection.lift(outcome.search.best_config);
    return outcome;
}

}  // namespace press::core
