#include "core/system.hpp"

#include "util/contracts.hpp"

namespace press::core {

System::System(sdr::Medium medium) : medium_(std::move(medium)) {}

std::size_t System::add_link(sdr::Link link) {
    links_.push_back(std::move(link));
    return links_.size() - 1;
}

const sdr::Link& System::link(std::size_t id) const {
    PRESS_EXPECTS(id < links_.size(), "link id out of range");
    return links_[id];
}

sdr::Link& System::link(std::size_t id) {
    PRESS_EXPECTS(id < links_.size(), "link id out of range");
    return links_[id];
}

void System::set_sounding_repeats(std::size_t repeats) {
    PRESS_EXPECTS(repeats >= 2, "sounding needs at least two repetitions");
    sounding_repeats_ = repeats;
}

phy::ChannelEstimate System::sound(std::size_t link_id,
                                   util::Rng& rng) const {
    return medium_.sound(link(link_id), sounding_repeats_, rng);
}

std::vector<double> System::measured_snr_db(std::size_t link_id,
                                            util::Rng& rng) const {
    return sound(link_id, rng).snr_db();
}

std::vector<double> System::true_snr_db(std::size_t link_id) const {
    return medium_.true_snr_db(link(link_id));
}

control::Observation System::observe(util::Rng& rng) const {
    PRESS_EXPECTS(!links_.empty(), "no links registered");
    control::Observation obs;
    obs.link_snr_db.reserve(links_.size());
    for (std::size_t i = 0; i < links_.size(); ++i)
        obs.link_snr_db.push_back(measured_snr_db(i, rng));
    return obs;
}

void System::apply(std::size_t array_id, const surface::Config& config) {
    medium_.array(array_id).apply(config);
}

control::OptimizationOutcome System::optimize(
    std::size_t array_id, const control::Objective& objective,
    const control::Searcher& searcher,
    const control::ControlPlaneModel& plane, double time_budget_s,
    util::Rng& rng) {
    PRESS_EXPECTS(!links_.empty(), "register links before optimizing");
    const surface::ConfigSpace space =
        medium_.array(array_id).config_space();
    control::Controller controller(
        plane,
        [this, array_id](const surface::Config& c) { apply(array_id, c); },
        [this, &rng]() { return observe(rng); }, links_.size(),
        medium_.ofdm().num_used());
    return controller.optimize(space, objective, searcher, time_budget_s,
                               rng);
}

}  // namespace press::core
