#include "core/system.hpp"

#include <algorithm>
#include <chrono>
#include <complex>

#include "control/batch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phy/chanest.hpp"
#include "phy/ru.hpp"
#include "util/contracts.hpp"
#include "util/kernels.hpp"

namespace press::core {

System::System(sdr::Medium medium) : medium_(std::move(medium)) {}

std::size_t System::add_link(sdr::Link link) {
    links_.push_back(std::move(link));
    return links_.size() - 1;
}

const sdr::Link& System::link(std::size_t id) const {
    PRESS_EXPECTS(id < links_.size(), "link id out of range");
    return links_[id];
}

sdr::Link& System::link(std::size_t id) {
    PRESS_EXPECTS(id < links_.size(), "link id out of range");
    return links_[id];
}

void System::set_sounding_repeats(std::size_t repeats) {
    PRESS_EXPECTS(repeats >= 2, "sounding needs at least two repetitions");
    sounding_repeats_ = repeats;
}

util::CVec System::channel_response(std::size_t link_id) const {
    return link_cache_.response(medium_, link_id, link(link_id));
}

phy::ChannelEstimate System::sound(std::size_t link_id,
                                   util::Rng& rng) const {
    return medium_.sound_with_response(link(link_id),
                                       channel_response(link_id),
                                       sounding_repeats_, rng);
}

std::vector<double> System::measured_snr_db(std::size_t link_id,
                                            util::Rng& rng) const {
    return sound(link_id, rng).snr_db();
}

std::vector<double> System::true_snr_db(std::size_t link_id) const {
    return medium_.true_snr_db(link(link_id), channel_response(link_id));
}

control::Observation System::observe(util::Rng& rng) const {
    PRESS_EXPECTS(!links_.empty(), "no links registered");
    control::Observation obs;
    obs.link_snr_db.reserve(links_.size());
    for (std::size_t i = 0; i < links_.size(); ++i)
        obs.link_snr_db.push_back(measured_snr_db(i, rng));
    return obs;
}

control::Observation System::observe_true() const {
    PRESS_EXPECTS(!links_.empty(), "no links registered");
    control::Observation obs;
    obs.link_snr_db.reserve(links_.size());
    for (std::size_t i = 0; i < links_.size(); ++i)
        obs.link_snr_db.push_back(true_snr_db(i));
    return obs;
}

void System::inject_faults(std::size_t array_id, fault::FaultModel model) {
    surface::Array& array = medium_.array(array_id);
    model.install(array);
    fault_models_.insert_or_assign(array_id, std::move(model));
}

const fault::FaultModel* System::faults(std::size_t array_id) const {
    const auto it = fault_models_.find(array_id);
    return it == fault_models_.end() ? nullptr : &it->second;
}

void System::apply(std::size_t array_id, const surface::Config& config) {
    surface::Array& array = medium_.array(array_id);
    const auto it = fault_models_.find(array_id);
    if (it != fault_models_.end())
        it->second.apply(array, config);
    else
        array.apply(config);
}

fault::HealthReport System::probe_health(
    std::size_t array_id, const control::ControlPlaneModel& plane,
    util::Rng& rng, const fault::ProbeOptions& options) {
    PRESS_EXPECTS(!links_.empty(), "register links before probing");
    const surface::Array& array = medium_.array(array_id);
    fault::HealthMonitor monitor(
        [this, array_id](const surface::Config& c) {
            apply(array_id, c);
            return true;
        },
        [this, &rng]() { return observe(rng); }, links_.size(),
        medium_.ofdm().num_used());
    return monitor.probe(array.config_space(), array.current_config(),
                         plane, options);
}

control::OptimizationOutcome System::optimize(
    std::size_t array_id, const control::Objective& objective,
    const control::Searcher& searcher,
    const control::ControlPlaneModel& plane, double time_budget_s,
    util::Rng& rng) {
    PRESS_EXPECTS(!links_.empty(), "register links before optimizing");
    const surface::ConfigSpace space =
        medium_.array(array_id).config_space();
    control::Controller controller(
        plane,
        [this, array_id](const surface::Config& c) {
            apply(array_id, c);
            return true;
        },
        [this, &rng]() { return observe(rng); }, links_.size(),
        medium_.ofdm().num_used());
    return controller.optimize(space, objective, searcher, time_budget_s,
                               rng);
}

control::OptimizationOutcome System::optimize_degraded(
    std::size_t array_id, const control::Objective& objective,
    const control::Searcher& searcher,
    const control::ControlPlaneModel& plane, double time_budget_s,
    const fault::HealthReport& report, util::Rng& rng) {
    PRESS_EXPECTS(!links_.empty(), "register links before optimizing");
    const surface::Array& array = medium_.array(array_id);
    const surface::ConfigSpace space = array.config_space();
    PRESS_EXPECTS(report.suspect.size() == space.num_elements(),
                  "health report does not match this array");

    const std::size_t flagged = report.num_suspect();
    // Nothing to freeze — or nothing left to search — degrades to the
    // plain path over the full space.
    if (flagged == 0 || flagged == space.num_elements())
        return optimize(array_id, objective, searcher, plane,
                        time_budget_s, rng);

    const surface::FrozenProjection projection =
        report.freeze(space, array.current_config());
    control::Controller controller(
        plane,
        [this, array_id, &projection](const surface::Config& reduced) {
            apply(array_id, projection.lift(reduced));
            return true;
        },
        [this, &rng]() { return observe(rng); }, links_.size(),
        medium_.ofdm().num_used());
    control::OptimizationOutcome outcome =
        controller.optimize(projection.reduced(), objective, searcher,
                            time_budget_s, rng);
    // Report the winning configuration in full arity, as callers expect.
    if (!outcome.search.best_config.empty())
        outcome.search.best_config =
            projection.lift(outcome.search.best_config);
    return outcome;
}

control::OptimizationOutcome System::optimize_fast(
    std::size_t array_id, const control::Objective& objective,
    const control::Searcher& searcher,
    const control::ControlPlaneModel& plane, double time_budget_s,
    util::Rng& rng, std::size_t threads) {
    PRESS_EXPECTS(!links_.empty(), "register links before optimizing");
    PRESS_EXPECTS(time_budget_s > 0.0, "budget must be positive");
    obs::TraceSpan span("core.system.optimize_fast");
    const surface::ConfigSpace space =
        medium_.array(array_id).config_space();

    // Price one trial exactly like the serial controller does: batch
    // evaluation speeds up the simulator, not the modeled hardware, so
    // simulated wall-clock is still charged per trial.
    control::SetConfig probe;
    probe.array_id = 0;
    probe.config.assign(space.num_elements(), 0);
    const double trial_cost = plane.config_trial_time_s(
        probe, links_.size(), medium_.ofdm().num_used());
    const std::size_t max_evals = std::max<std::size_t>(
        1, static_cast<std::size_t>(time_budget_s / trial_cost));

    // Warm every link's basis so the batch workers only ever read.
    {
        obs::TraceSpan warm_span("core.system.warm_cache");
        for (std::size_t i = 0; i < links_.size(); ++i)
            link_cache_.warm(medium_, i, links_[i]);
    }

    // Trials are scored against the cache instead of actuating the
    // (simulated) hardware, so flaky switches hold their pre-search state
    // for the whole run; stuck/dead/drift faults distort every candidate
    // exactly as a live apply would.
    const surface::Config baseline =
        medium_.array(array_id).current_config();
    const fault::FaultModel* fm = faults(array_id);

    // The estimator noise variance is a pure function of the link's radio
    // profile — hoist it out of the per-candidate loop.
    const std::size_t num_links = links_.size();
    std::vector<double> link_noise(num_links);
    for (std::size_t i = 0; i < num_links; ++i)
        link_noise[i] = medium_.estimate_noise_variance(links_[i]);

    // Objectives that reduce one link's SNR span through a min or mean
    // skip the Observation entirely: response -> sounding draws -> fused
    // reduction, all inside the worker's scratch arena.
    const control::FusedSpec fused = objective.fused_spec();
    const bool fuse = fused.kind != control::FusedSpec::Kind::kNone &&
                      fused.link < num_links;
    const std::size_t responses_per_eval = fuse ? 1 : num_links;
    const std::size_t repeats = sounding_repeats_;

    // Masked fused objectives (DESIGN.md §15) score only the RU mask's
    // active tones: the basis accumulation is bounded to the subcarrier
    // tiles the mask intersects (tile_spans), the sounding draws one
    // noise sample per ACTIVE tone per repetition (ascending active-index
    // order — identical rng consumption on the delta and recompute
    // paths), and the reduction runs over the dense masked axis.
    const bool masked = fuse && fused.mask != nullptr;
    std::vector<util::kernels::IndexRange> mask_spans;
    const std::size_t* mask_idx = nullptr;
    std::size_t mask_m = 0;
    if (masked) {
        PRESS_EXPECTS(fused.mask->num_used() == medium_.ofdm().num_used(),
                      "RU mask must span the numerology's used tones");
        PRESS_EXPECTS(fused.mask->num_active() > 0,
                      "RU mask must leave at least one active tone");
        const std::vector<phy::RuRange> spans =
            fused.mask->tile_spans(LinkCache::kTileSubcarriers);
        mask_spans.reserve(spans.size());
        for (const phy::RuRange& r : spans)
            mask_spans.push_back({r.first, r.last - r.first});
        mask_idx = fused.mask->active_indices().data();
        mask_m = fused.mask->active_indices().size();
    }

    // Simulates the sounding of link `link_id` whose cached response is
    // already in s.h: raw LTF draws (same r-outer / k-inner rng order as
    // Medium::sound_with_response) then the combining kernel, leaving the
    // combined estimate in s.mean_re/_im and s.noise_var.
    const auto sound_scratch = [&link_noise, repeats](
                                   std::size_t link_id, util::Rng& crng,
                                   control::EvalScratch& s) {
        const std::size_t n = s.h.size();
        const double var = link_noise[link_id];
        s.resize_tracked(s.raw_re, repeats * n);
        s.resize_tracked(s.raw_im, repeats * n);
        s.resize_tracked(s.mean_re, n);
        s.resize_tracked(s.mean_im, n);
        s.resize_tracked(s.noise_var, n);
        for (std::size_t r = 0; r < repeats; ++r) {
            double* rr = s.raw_re.data() + r * n;
            double* ri = s.raw_im.data() + r * n;
            for (std::size_t k = 0; k < n; ++k) {
                const std::complex<double> w = crng.complex_gaussian(var);
                rr[k] = s.h.re[k] + w.real();
                ri[k] = s.h.im[k] + w.imag();
            }
        }
        util::kernels::ltf_mean_var(
            util::kernels::active(), s.raw_re.data(), s.raw_im.data(),
            repeats, n, s.mean_re.data(), s.mean_im.data(),
            s.noise_var.data());
    };

    // Fused finish: sound the objective's link and reduce straight to the
    // score (min exactly matches the Observation path; mean differs by
    // blocked-vs-sequential association ulps, see FusedSpec).
    const auto finish_fused = [&sound_scratch, fused](
                                  util::Rng& crng, control::EvalScratch& s) {
        sound_scratch(fused.link, crng, s);
        const util::kernels::Dispatch d = util::kernels::active();
        const std::size_t n = s.h.size();
        return fused.kind == control::FusedSpec::Kind::kMinSnr
                   ? util::kernels::snr_db_min(
                         d, s.mean_re.data(), s.mean_im.data(),
                         s.noise_var.data(), n, phy::kSnrCapDb,
                         phy::kSnrFloorDb)
                   : util::kernels::snr_db_mean(
                         d, s.mean_re.data(), s.mean_im.data(),
                         s.noise_var.data(), n, phy::kSnrCapDb,
                         phy::kSnrFloorDb);
    };

    // Masked fused finish: sound ONLY the active tones of the candidate
    // response already in s.h (one gaussian per active tone per
    // repetition, ascending active order), combine through the masked
    // LTF kernel into dense length-m spans, and reduce densely. The
    // blocked reduction runs over the dense masked axis, so the score is
    // bit-identical to gathering the active tones first and running the
    // unmasked fused finish on the dense vectors.
    const auto finish_fused_masked = [&link_noise, repeats, fused, mask_idx,
                                      mask_m](util::Rng& crng,
                                              control::EvalScratch& s) {
        const std::size_t n = s.h.size();
        const double var = link_noise[fused.link];
        s.resize_tracked(s.raw_re, repeats * n);
        s.resize_tracked(s.raw_im, repeats * n);
        s.resize_tracked(s.mean_re, mask_m);
        s.resize_tracked(s.mean_im, mask_m);
        s.resize_tracked(s.noise_var, mask_m);
        for (std::size_t r = 0; r < repeats; ++r) {
            double* rr = s.raw_re.data() + r * n;
            double* ri = s.raw_im.data() + r * n;
            for (std::size_t i = 0; i < mask_m; ++i) {
                const std::size_t k = mask_idx[i];
                const std::complex<double> w = crng.complex_gaussian(var);
                rr[k] = s.h.re[k] + w.real();
                ri[k] = s.h.im[k] + w.imag();
            }
        }
        const util::kernels::Dispatch d = util::kernels::active();
        util::kernels::masked_ltf_mean_var(
            d, s.raw_re.data(), s.raw_im.data(), repeats, n, mask_idx,
            mask_m, s.mean_re.data(), s.mean_im.data(), s.noise_var.data());
        return fused.kind == control::FusedSpec::Kind::kMinSnr
                   ? util::kernels::snr_db_min(
                         d, s.mean_re.data(), s.mean_im.data(),
                         s.noise_var.data(), mask_m, phy::kSnrCapDb,
                         phy::kSnrFloorDb)
                   : util::kernels::snr_db_mean(
                         d, s.mean_re.data(), s.mean_im.data(),
                         s.noise_var.data(), mask_m, phy::kSnrCapDb,
                         phy::kSnrFloorDb);
    };

    // General finish: rebuild the Observation in the scratch arena — one
    // response + sounding + SNR fill per link — and score it.
    const auto finish_general =
        [this, &objective, &sound_scratch, num_links, array_id](
            const surface::Config& actual, util::Rng& crng,
            control::EvalScratch& s) {
            if (s.observation.link_snr_db.size() != num_links)
                s.observation.link_snr_db.resize(num_links);
            for (std::size_t i = 0; i < num_links; ++i) {
                link_cache_.response_into(medium_, i, links_[i], array_id,
                                          actual, s.h);
                sound_scratch(i, crng, s);
                std::vector<double>& snr = s.observation.link_snr_db[i];
                s.resize_tracked(snr, s.h.size());
                util::kernels::snr_db_into(
                    util::kernels::active(), s.mean_re.data(),
                    s.mean_im.data(), s.noise_var.data(), s.h.size(),
                    phy::kSnrCapDb, phy::kSnrFloorDb, snr.data());
            }
            return objective.score(s.observation);
        };

    control::BatchEvaluator pool(
        [this, array_id, fm, &baseline, fuse, fused, masked, &mask_spans,
         &finish_fused, &finish_fused_masked,
         &finish_general](const surface::Config& c, util::Rng& crng,
                          control::EvalScratch& s) {
            const surface::Config* actual = &c;
            if (fm) {
                fm->distorted_into(c, baseline, crng, s.config);
                actual = &s.config;
            }
            if (masked) {
                link_cache_.response_ranges_into(
                    medium_, fused.link, links_[fused.link], array_id,
                    *actual, mask_spans.data(), mask_spans.size(), s.h);
                return finish_fused_masked(crng, s);
            }
            if (fuse) {
                link_cache_.response_into(medium_, fused.link,
                                          links_[fused.link], array_id,
                                          *actual, s.h);
                return finish_fused(crng, s);
            }
            return finish_general(*actual, crng, s);
        },
        rng.engine()(), threads);

    // Coordinate sweeps share per-coordinate base responses (the swept
    // element's row excluded) built once here, outside the workers; each
    // candidate then costs one copy plus one row-add. With the delta path
    // disabled (PRESS_DELTA=0) workers recompute the base per candidate —
    // same arithmetic, same bits, no cache.
    const bool delta = control::coordinate_delta_enabled();
    std::vector<util::kernels::SplitVec> coord_base(num_links);
    pool.set_coordinate_score(
        [this, array_id, fuse, fused, masked, &mask_spans, num_links, delta,
         &coord_base, &objective, &sound_scratch, &finish_fused,
         &finish_fused_masked](
            const control::CoordinateBatch& cb, std::size_t idx,
            util::Rng& crng, control::EvalScratch& s) {
            const int state = (*cb.states)[idx];
            const util::kernels::Dispatch d = util::kernels::active();
            const auto load_candidate = [&](std::size_t link_id) {
                if (delta) {
                    // Fused delta: candidate = base + swept row in one
                    // pass — bit-identical to copy-then-add (same single
                    // addition per tone), 60% of the memory traffic.
                    const util::kernels::SplitVec& base =
                        coord_base[link_id];
                    s.resize_tracked(s.h, base.size());
                    link_cache_.element_row_delta(link_id, array_id,
                                                  cb.element, state, base,
                                                  s.h);
                } else {
                    link_cache_.response_base_into(
                        medium_, link_id, links_[link_id], array_id,
                        *cb.base, cb.element, s.h);
                    link_cache_.accumulate_element_row(
                        link_id, array_id, cb.element, state, s.h);
                }
            };
            if (masked) {
                // Tile-bounded delta sweep: the fused base-plus-row pass
                // and the base recompute both walk only the mask's tile
                // spans. The swept row still combines with the base as
                // the last addition on each tone, so the delta and
                // recompute paths agree bitwise on every span double.
                if (delta) {
                    const util::kernels::SplitVec& base =
                        coord_base[fused.link];
                    s.resize_tracked(s.h, base.size());
                    link_cache_.element_row_delta_ranges(
                        fused.link, array_id, cb.element, state,
                        mask_spans.data(), mask_spans.size(), base, s.h);
                } else {
                    link_cache_.response_base_ranges_into(
                        medium_, fused.link, links_[fused.link], array_id,
                        *cb.base, cb.element, mask_spans.data(),
                        mask_spans.size(), s.h);
                    link_cache_.accumulate_element_row_ranges(
                        fused.link, array_id, cb.element, state,
                        mask_spans.data(), mask_spans.size(), s.h);
                }
                return finish_fused_masked(crng, s);
            }
            if (fuse) {
                load_candidate(fused.link);
                return finish_fused(crng, s);
            }
            if (s.observation.link_snr_db.size() != num_links)
                s.observation.link_snr_db.resize(num_links);
            for (std::size_t i = 0; i < num_links; ++i) {
                load_candidate(i);
                sound_scratch(i, crng, s);
                std::vector<double>& snr = s.observation.link_snr_db[i];
                s.resize_tracked(snr, s.h.size());
                util::kernels::snr_db_into(
                    d, s.mean_re.data(), s.mean_im.data(),
                    s.noise_var.data(), s.h.size(), phy::kSnrCapDb,
                    phy::kSnrFloorDb, snr.data());
            }
            return objective.score(s.observation);
        });

    control::OptimizationOutcome outcome;
    outcome.trial_cost_s = trial_cost;

    control::SimClock clock;
    const control::BatchEvalFn eval =
        [this, &pool, &clock, trial_cost, responses_per_eval](
            const std::vector<surface::Config>& batch) {
            std::vector<double> scores = pool.evaluate(batch);
            // Every cached read inside the batch is a hit by the warm()
            // precondition; fold them at batch granularity so the
            // per-call path stays instrumentation-free. A candidate reads
            // one response per scored link (one when the objective is
            // fused), however it was assembled.
            link_cache_.note_batch_hits(
                static_cast<std::uint64_t>(batch.size()) *
                responses_per_eval);
            clock.advance(trial_cost * static_cast<double>(batch.size()));
            return scores;
        };
    // Coordinate sweeps bypass full-configuration assembly, but only when
    // no fault model distorts candidates: faults rewrite arbitrary
    // elements (and flaky ones consume candidate rng), which the
    // base-plus-one-row arithmetic cannot represent.
    const control::CoordinateEvalFn coord_eval =
        fm ? control::CoordinateEvalFn{}
           : control::CoordinateEvalFn(
                 [this, &pool, &clock, trial_cost, responses_per_eval,
                  delta, fuse, fused, masked, &mask_spans, num_links,
                  array_id, &coord_base](
                     const surface::Config& base, std::size_t element,
                     const std::vector<int>& states) {
                     if (delta) {
                         if (masked)
                             link_cache_.response_base_ranges_into(
                                 medium_, fused.link, links_[fused.link],
                                 array_id, base, element,
                                 mask_spans.data(), mask_spans.size(),
                                 coord_base[fused.link]);
                         else if (fuse)
                             link_cache_.response_base_into(
                                 medium_, fused.link, links_[fused.link],
                                 array_id, base, element,
                                 coord_base[fused.link]);
                         else
                             for (std::size_t i = 0; i < num_links; ++i)
                                 link_cache_.response_base_into(
                                     medium_, i, links_[i], array_id, base,
                                     element, coord_base[i]);
                     }
                     control::CoordinateBatch cb{&base, element, &states};
                     std::vector<double> scores =
                         pool.evaluate_coordinate(cb);
                     link_cache_.note_batch_hits(
                         static_cast<std::uint64_t>(states.size()) *
                         responses_per_eval);
                     clock.advance(trial_cost *
                                   static_cast<double>(states.size()));
                     return scores;
                 });
    const control::StopFn stop = [&clock, time_budget_s]() {
        return clock.now_s() >= time_budget_s;
    };

    {
        obs::TraceSpan search_span("core.system.search_batched", &clock);
        const auto compute_t0 = std::chrono::steady_clock::now();
        outcome.search =
            searcher.search_batched(space, eval, coord_eval, max_evals,
                                    rng, stop, pool.num_threads() * 2);
        outcome.search.compute_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - compute_t0)
                .count();
    }
    outcome.elapsed_s = clock.now_s();
    outcome.budget_limited = outcome.search.evaluations >= max_evals ||
                             clock.now_s() >= time_budget_s;

    // best_score is the max over noisy samples, biased high (see
    // SearchResult). Re-score the winner over fresh candidate rng
    // streams — routed through `eval` so the confirmation trials are
    // priced on the sim clock and counted as cache hits like any other.
    outcome.search.best_score_remeasured = outcome.search.best_score;
    if (!outcome.search.best_config.empty()) {
        obs::TraceSpan remeasure_span("core.system.remeasure", &clock);
        constexpr std::size_t kRemeasureEvals = 3;
        const std::vector<double> confirm = eval(std::vector<surface::Config>(
            kRemeasureEvals, outcome.search.best_config));
        double sum = 0.0;
        for (double v : confirm) sum += v;
        outcome.search.remeasure_evals = confirm.size();
        outcome.search.best_score_remeasured =
            sum / static_cast<double>(confirm.size());
    }
    control::record_search_telemetry(searcher.name(), outcome.search);
    pool.publish_worker_stats();

    // Actuate the winner through the normal (fault-distorting) path.
    if (!outcome.search.best_config.empty())
        apply(array_id, outcome.search.best_config);
    return outcome;
}

}  // namespace press::core
