#include "core/system.hpp"

#include <algorithm>

#include "control/batch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace press::core {

System::System(sdr::Medium medium) : medium_(std::move(medium)) {}

std::size_t System::add_link(sdr::Link link) {
    links_.push_back(std::move(link));
    return links_.size() - 1;
}

const sdr::Link& System::link(std::size_t id) const {
    PRESS_EXPECTS(id < links_.size(), "link id out of range");
    return links_[id];
}

sdr::Link& System::link(std::size_t id) {
    PRESS_EXPECTS(id < links_.size(), "link id out of range");
    return links_[id];
}

void System::set_sounding_repeats(std::size_t repeats) {
    PRESS_EXPECTS(repeats >= 2, "sounding needs at least two repetitions");
    sounding_repeats_ = repeats;
}

util::CVec System::channel_response(std::size_t link_id) const {
    return link_cache_.response(medium_, link_id, link(link_id));
}

phy::ChannelEstimate System::sound(std::size_t link_id,
                                   util::Rng& rng) const {
    return medium_.sound_with_response(link(link_id),
                                       channel_response(link_id),
                                       sounding_repeats_, rng);
}

std::vector<double> System::measured_snr_db(std::size_t link_id,
                                            util::Rng& rng) const {
    return sound(link_id, rng).snr_db();
}

std::vector<double> System::true_snr_db(std::size_t link_id) const {
    return medium_.true_snr_db(link(link_id), channel_response(link_id));
}

control::Observation System::observe(util::Rng& rng) const {
    PRESS_EXPECTS(!links_.empty(), "no links registered");
    control::Observation obs;
    obs.link_snr_db.reserve(links_.size());
    for (std::size_t i = 0; i < links_.size(); ++i)
        obs.link_snr_db.push_back(measured_snr_db(i, rng));
    return obs;
}

control::Observation System::observe_true() const {
    PRESS_EXPECTS(!links_.empty(), "no links registered");
    control::Observation obs;
    obs.link_snr_db.reserve(links_.size());
    for (std::size_t i = 0; i < links_.size(); ++i)
        obs.link_snr_db.push_back(true_snr_db(i));
    return obs;
}

void System::inject_faults(std::size_t array_id, fault::FaultModel model) {
    surface::Array& array = medium_.array(array_id);
    model.install(array);
    fault_models_.insert_or_assign(array_id, std::move(model));
}

const fault::FaultModel* System::faults(std::size_t array_id) const {
    const auto it = fault_models_.find(array_id);
    return it == fault_models_.end() ? nullptr : &it->second;
}

void System::apply(std::size_t array_id, const surface::Config& config) {
    surface::Array& array = medium_.array(array_id);
    const auto it = fault_models_.find(array_id);
    if (it != fault_models_.end())
        it->second.apply(array, config);
    else
        array.apply(config);
}

fault::HealthReport System::probe_health(
    std::size_t array_id, const control::ControlPlaneModel& plane,
    util::Rng& rng, const fault::ProbeOptions& options) {
    PRESS_EXPECTS(!links_.empty(), "register links before probing");
    const surface::Array& array = medium_.array(array_id);
    fault::HealthMonitor monitor(
        [this, array_id](const surface::Config& c) {
            apply(array_id, c);
            return true;
        },
        [this, &rng]() { return observe(rng); }, links_.size(),
        medium_.ofdm().num_used());
    return monitor.probe(array.config_space(), array.current_config(),
                         plane, options);
}

control::OptimizationOutcome System::optimize(
    std::size_t array_id, const control::Objective& objective,
    const control::Searcher& searcher,
    const control::ControlPlaneModel& plane, double time_budget_s,
    util::Rng& rng) {
    PRESS_EXPECTS(!links_.empty(), "register links before optimizing");
    const surface::ConfigSpace space =
        medium_.array(array_id).config_space();
    control::Controller controller(
        plane,
        [this, array_id](const surface::Config& c) {
            apply(array_id, c);
            return true;
        },
        [this, &rng]() { return observe(rng); }, links_.size(),
        medium_.ofdm().num_used());
    return controller.optimize(space, objective, searcher, time_budget_s,
                               rng);
}

control::OptimizationOutcome System::optimize_degraded(
    std::size_t array_id, const control::Objective& objective,
    const control::Searcher& searcher,
    const control::ControlPlaneModel& plane, double time_budget_s,
    const fault::HealthReport& report, util::Rng& rng) {
    PRESS_EXPECTS(!links_.empty(), "register links before optimizing");
    const surface::Array& array = medium_.array(array_id);
    const surface::ConfigSpace space = array.config_space();
    PRESS_EXPECTS(report.suspect.size() == space.num_elements(),
                  "health report does not match this array");

    const std::size_t flagged = report.num_suspect();
    // Nothing to freeze — or nothing left to search — degrades to the
    // plain path over the full space.
    if (flagged == 0 || flagged == space.num_elements())
        return optimize(array_id, objective, searcher, plane,
                        time_budget_s, rng);

    const surface::FrozenProjection projection =
        report.freeze(space, array.current_config());
    control::Controller controller(
        plane,
        [this, array_id, &projection](const surface::Config& reduced) {
            apply(array_id, projection.lift(reduced));
            return true;
        },
        [this, &rng]() { return observe(rng); }, links_.size(),
        medium_.ofdm().num_used());
    control::OptimizationOutcome outcome =
        controller.optimize(projection.reduced(), objective, searcher,
                            time_budget_s, rng);
    // Report the winning configuration in full arity, as callers expect.
    if (!outcome.search.best_config.empty())
        outcome.search.best_config =
            projection.lift(outcome.search.best_config);
    return outcome;
}

control::OptimizationOutcome System::optimize_fast(
    std::size_t array_id, const control::Objective& objective,
    const control::Searcher& searcher,
    const control::ControlPlaneModel& plane, double time_budget_s,
    util::Rng& rng, std::size_t threads) {
    PRESS_EXPECTS(!links_.empty(), "register links before optimizing");
    PRESS_EXPECTS(time_budget_s > 0.0, "budget must be positive");
    obs::TraceSpan span("core.system.optimize_fast");
    const surface::ConfigSpace space =
        medium_.array(array_id).config_space();

    // Price one trial exactly like the serial controller does: batch
    // evaluation speeds up the simulator, not the modeled hardware, so
    // simulated wall-clock is still charged per trial.
    control::SetConfig probe;
    probe.array_id = 0;
    probe.config.assign(space.num_elements(), 0);
    const double trial_cost = plane.config_trial_time_s(
        probe, links_.size(), medium_.ofdm().num_used());
    const std::size_t max_evals = std::max<std::size_t>(
        1, static_cast<std::size_t>(time_budget_s / trial_cost));

    // Warm every link's basis so the batch workers only ever read.
    {
        obs::TraceSpan warm_span("core.system.warm_cache");
        for (std::size_t i = 0; i < links_.size(); ++i)
            link_cache_.warm(medium_, i, links_[i]);
    }

    // Trials are scored against the cache instead of actuating the
    // (simulated) hardware, so flaky switches hold their pre-search state
    // for the whole run; stuck/dead/drift faults distort every candidate
    // exactly as a live apply would.
    const surface::Config baseline =
        medium_.array(array_id).current_config();
    const fault::FaultModel* fm = faults(array_id);

    control::BatchEvaluator pool(
        [this, array_id, &objective, fm, &baseline](
            const surface::Config& c, util::Rng& crng) {
            const surface::Config actual =
                fm ? fm->distorted(c, baseline, crng) : c;
            control::Observation obs;
            obs.link_snr_db.reserve(links_.size());
            for (std::size_t i = 0; i < links_.size(); ++i) {
                const util::CVec h = link_cache_.response_with(
                    medium_, i, links_[i], array_id, actual);
                obs.link_snr_db.push_back(
                    medium_
                        .sound_with_response(links_[i], h,
                                             sounding_repeats_, crng)
                        .snr_db());
            }
            return objective.score(obs);
        },
        rng.engine()(), threads);

    control::OptimizationOutcome outcome;
    outcome.trial_cost_s = trial_cost;

    control::SimClock clock;
    const std::size_t num_links = links_.size();
    const control::BatchEvalFn eval =
        [this, &pool, &clock, trial_cost, num_links](
            const std::vector<surface::Config>& batch) {
            std::vector<double> scores = pool.evaluate(batch);
            // Every response_with() read inside the batch is a hit by the
            // warm() precondition; fold them at batch granularity so the
            // per-call path stays instrumentation-free.
            link_cache_.note_batch_hits(
                static_cast<std::uint64_t>(batch.size()) * num_links);
            clock.advance(trial_cost * static_cast<double>(batch.size()));
            return scores;
        };
    const control::StopFn stop = [&clock, time_budget_s]() {
        return clock.now_s() >= time_budget_s;
    };

    {
        obs::TraceSpan search_span("core.system.search_batched", &clock);
        outcome.search = searcher.search_batched(
            space, eval, max_evals, rng, stop, pool.num_threads() * 2);
    }
    outcome.elapsed_s = clock.now_s();
    outcome.budget_limited = outcome.search.evaluations >= max_evals ||
                             clock.now_s() >= time_budget_s;

    // best_score is the max over noisy samples, biased high (see
    // SearchResult). Re-score the winner over fresh candidate rng
    // streams — routed through `eval` so the confirmation trials are
    // priced on the sim clock and counted as cache hits like any other.
    outcome.search.best_score_remeasured = outcome.search.best_score;
    if (!outcome.search.best_config.empty()) {
        obs::TraceSpan remeasure_span("core.system.remeasure", &clock);
        constexpr std::size_t kRemeasureEvals = 3;
        const std::vector<double> confirm = eval(std::vector<surface::Config>(
            kRemeasureEvals, outcome.search.best_config));
        double sum = 0.0;
        for (double v : confirm) sum += v;
        outcome.search.remeasure_evals = confirm.size();
        outcome.search.best_score_remeasured =
            sum / static_cast<double>(confirm.size());
    }
    control::record_search_telemetry(searcher.name(), outcome.search);
    pool.publish_worker_stats();

    // Actuate the winner through the normal (fault-distorting) path.
    if (!outcome.search.best_config.empty())
        apply(array_id, outcome.search.best_config);
    return outcome;
}

}  // namespace press::core
