// Scenario builders: seeded, self-contained reconstructions of the paper's
// experimental setups (Section 3). All geometry and link-budget constants
// live here so every bench, test and example measures the same world.
#pragma once

#include <cstdint>

#include "core/system.hpp"

namespace press::core {

/// Geometry and hardware constants of the exploratory-study room. Exposed
/// so ablation benches can vary one knob at a time.
struct StudyParams {
    double carrier_hz = 2.462e9;     ///< Wi-Fi channel 11
    /// The lab floor: an open-plan space (reflections propagate well
    /// beyond the immediate benches, giving the ~100 ns delay spreads that
    /// make 20 MHz channels frequency-selective indoors).
    double room_x = 16.0, room_y = 12.0, room_z = 3.0;
    double endpoint_gain_dbi = 2.0;  ///< PulseLarsen W1030-like omnis
    double element_gain_dbi = 12.0;  ///< element antenna gain (the prototype's
                                     ///  Laird GD24BP-class directional element,
                                     ///  modeled as its well-aimed boresight gain)
    double blocker_attenuation_db = 35.0;
    double link_distance_m = 3.0;    ///< TX-RX separation
    int num_scatterers = 10;
    int num_metal_scatterers = 3;    ///< cabinets/racks: strong reflectors
    int num_elements = 3;            ///< the prototype's three elements
    int wall_reflection_order = 3;

    static StudyParams defaults() { return {}; }
};

/// A single-link scenario: link 0 is TX -> RX across the room, array 0 is
/// the PRESS array between them. `line_of_sight == false` installs the
/// metal blocker the paper uses to create frequency-selective channels.
struct LinkScenario {
    System system;
    std::size_t array_id = 0;
    std::size_t link_id = 0;
};

/// Builds the Section 3.2.1 setup: WARP-like endpoints, Wi-Fi numerology,
/// `params.num_elements` SP4T prototype elements placed uniformly at random
/// in a region 1-2 m from both antennas (a new placement per seed, like the
/// paper's eight random placements).
LinkScenario make_link_scenario(std::uint64_t seed, bool line_of_sight,
                                const StudyParams& params =
                                    StudyParams::defaults());

/// Same geometry but the array is made of active (amplify-and-forward)
/// elements with `gain_db` of forward gain — the paper's proposed fix for
/// line-of-sight links.
LinkScenario make_active_link_scenario(std::uint64_t seed,
                                       bool line_of_sight, double gain_db,
                                       const StudyParams& params =
                                           StudyParams::defaults());

/// The same single-link experiment on the Saleh-Valenzuela statistical
/// substrate instead of the ray-traced room: the direct path is blocked
/// (as in the NLoS study) and the multipath is a seeded SV realization.
/// Used by bench/ablation_substrate to check that the paper's conclusions
/// survive a change of channel model.
LinkScenario make_sv_link_scenario(std::uint64_t seed,
                                   const StudyParams& params =
                                       StudyParams::defaults());

/// The Figure-7 measurement setup as the paper actually ran it: a single
/// N210 link with the 102-subcarrier numerology and two 4-phase elements
/// (no absorptive load), in non-line-of-sight. The paper manipulated the
/// environment "until a frequency-selective channel was found"; callers
/// emulate that curation by advancing the seed (see
/// experiments::find_harmonization_pair).
LinkScenario make_fig7_link_scenario(std::uint64_t seed,
                                     const StudyParams& params =
                                         StudyParams::defaults());

/// Knobs of the massive-element (RFocus-regime) scene. The defaults model
/// a wall-mounted panel of cheap two-state backscatter elements at
/// half-wavelength pitch — the arXiv:1905.05130 deployment scaled into
/// the study room — rather than the paper's three directional elements.
struct MassiveParams {
    double carrier_hz = 2.462e9;     ///< Wi-Fi channel 11
    double room_x = 16.0, room_y = 12.0, room_z = 3.0;
    double endpoint_gain_dbi = 2.0;
    /// Per-element gain: a dense panel of patch-like radiators, far
    /// flatter than the study's well-aimed directional elements.
    double element_gain_dbi = 6.0;
    double blocker_attenuation_db = 35.0;
    double link_distance_m = 6.0;    ///< TX-RX separation
    int num_scatterers = 10;
    int num_metal_scatterers = 3;
    int wall_reflection_order = 2;
    /// States per element; 2 = binary phase (0, pi), the RFocus regime.
    int num_states = 2;
    /// Element pitch on the panel; <= 0 resolves to half a wavelength.
    double panel_spacing_m = 0.0;

    static MassiveParams defaults() { return {}; }
};

/// Builds a 1,000-4,000 element scene: a planar grid of `n_elements`
/// two-state elements on a wall panel offset ~2 m from the (blocked)
/// TX-RX axis, with seeded sub-pitch placement jitter. The returned
/// scenario has ConfigSpace cardinality 2^n — callers must use searchers
/// that never enumerate or count the space (majority-vote, random
/// partition, greedy coordinate descent).
LinkScenario make_massive_scenario(std::size_t n_elements,
                                   std::uint64_t seed,
                                   const MassiveParams& params =
                                       MassiveParams::defaults());

/// Knobs of the wideband Wi-Fi 6E/7 scene (DESIGN.md §15): a 996-tone
/// (160 MHz) or 1960-tone (320 MHz) numerology in the 6 GHz band over a
/// small multi-phase panel, scored per-RU under a preamble-puncturing
/// mask.
struct WidebandParams {
    /// Numerology: wifi6e_160() (996 used tones) or wifi7_320() (1960).
    phy::OfdmParams ofdm = phy::OfdmParams::wifi6e_160();
    int num_elements = 16;  ///< panel elements
    int num_states = 4;     ///< phases per element
    /// RU partition arity of the scenario's mask (uniform split of the
    /// used tones, the modeled regularization of the 802.11ax RU ladder).
    std::size_t num_ru = 8;
    /// RUs punctured out of the mask (incumbent avoidance). Empty keeps
    /// the full mask.
    std::vector<std::size_t> punctured_rus = {5};

    static WidebandParams defaults() { return {}; }
};

/// The wideband scene: link 0 across the study room, array 0 the panel,
/// plus the scenario's RU mask (uniform partition with the configured
/// RUs punctured). Pair with control::MaskedSnrObjective(mask, ...) and
/// System::optimize_fast for the tile-bounded masked evaluation path.
struct WidebandScenario {
    System system;
    std::size_t array_id = 0;
    std::size_t link_id = 0;
    phy::RuMask mask;
};

/// Builds the wideband scene: the study room and clutter at the
/// numerology's 6 GHz carrier, the standard metal blocker for NLoS
/// frequency selectivity, `num_elements` seeded-placement multi-phase
/// elements in the study's element band, and a punctured uniform RU
/// mask over the used tones.
WidebandScenario make_wideband_scenario(std::uint64_t seed,
                                        const WidebandParams& params =
                                            WidebandParams::defaults());

/// Knobs of the multi-user (N-link) scene: several APs, each serving a
/// population of clients, all sharing one element field. The defaults
/// give 4 x 8 = 32 links over a 16-element 4-phase panel — the
/// fig-harmonization bench shape.
struct MultiLinkParams {
    std::size_t num_aps = 4;         ///< distinct transmitters (groups)
    std::size_t clients_per_ap = 8;  ///< links per transmitter
    int num_elements = 16;           ///< panel elements
    int num_states = 4;              ///< phases per element
    /// Room, clutter and link-budget constants (the study room).
    StudyParams study = StudyParams::defaults();

    static MultiLinkParams defaults() { return {}; }
};

/// An N-link scene over one shared element field. Links are ordered AP
/// major: link a * clients_per_ap + c is AP `a` serving client `c`, so
/// the shared basis groups them into `num_aps` transmitter groups.
struct MultiLinkScenario {
    System system;
    std::size_t array_id = 0;
    std::size_t num_aps = 0;
    std::size_t clients_per_ap = 0;
    std::size_t num_links = 0;  ///< num_aps * clients_per_ap
};

/// Builds the multi-user scene: APs wall-mounted along one side of the
/// study room, clients seeded uniformly over the opposite half, a
/// half-wavelength-pitch panel of `num_elements` `num_states`-phase
/// elements between them, and the standard metal blocker for NLoS
/// richness. Wi-Fi 20 MHz numerology. Pair with
/// System::optimize_multilink and a control::MultiLinkProblem objective.
MultiLinkScenario make_multi_link_scenario(
    std::uint64_t seed,
    const MultiLinkParams& params = MultiLinkParams::defaults());

/// The full two-network harmonization setup of the paper's Figure 2
/// vision: two co-located networks (links 0 and
/// 1: AP1 -> client1, AP2 -> client2; links 2 and 3 the cross-network
/// interference channels), N210-like endpoints with the 102-subcarrier
/// numerology, and two 4-phase elements without absorptive loads.
struct HarmonizationScenario {
    System system;
    std::size_t array_id = 0;
};

HarmonizationScenario make_harmonization_scenario(
    std::uint64_t seed,
    const StudyParams& params = StudyParams::defaults());

/// The Figure-8 MIMO setup: X310-like 2x2 endpoints in non-line-of-sight,
/// PRESS elements co-linear with the TX antenna pair at one-wavelength
/// spacing.
struct MimoScenario {
    sdr::Medium medium;
    std::vector<em::RadiatingEndpoint> tx_antennas;
    std::vector<em::RadiatingEndpoint> rx_antennas;
    sdr::RadioProfile profile;
    std::size_t array_id = 0;
};

MimoScenario make_mimo_scenario(std::uint64_t seed,
                                const StudyParams& params =
                                    StudyParams::defaults());

}  // namespace press::core
