// press::core::System — the public facade of the library.
//
// A System owns a Medium (environment + PRESS arrays + numerology) and a
// set of observed links, and exposes the full loop a deployment runs:
// measure links, sweep or search configurations through a Controller with
// a control-plane timing model, and leave the array in the best state.
#pragma once

#include <cstddef>
#include <vector>

#include "control/controller.hpp"
#include "control/objective.hpp"
#include "control/search.hpp"
#include "sdr/medium.hpp"
#include "util/rng.hpp"

namespace press::core {

/// Facade tying the substrates together. See examples/quickstart.cpp.
class System {
public:
    explicit System(sdr::Medium medium);

    sdr::Medium& medium() { return medium_; }
    const sdr::Medium& medium() const { return medium_; }

    /// Registers a link the controller will observe; returns its id.
    std::size_t add_link(sdr::Link link);

    std::size_t num_links() const { return links_.size(); }
    const sdr::Link& link(std::size_t id) const;
    sdr::Link& link(std::size_t id);

    /// Number of LTF repetitions per sounding (default 4, as in a Wi-Fi
    /// preamble-rich measurement frame).
    void set_sounding_repeats(std::size_t repeats);
    std::size_t sounding_repeats() const { return sounding_repeats_; }

    /// Sounds one link under the current configuration.
    phy::ChannelEstimate sound(std::size_t link_id, util::Rng& rng) const;

    /// Measured per-subcarrier SNR (dB) of one link.
    std::vector<double> measured_snr_db(std::size_t link_id,
                                        util::Rng& rng) const;

    /// Noise-free per-subcarrier SNR (dB) of one link (ground truth).
    std::vector<double> true_snr_db(std::size_t link_id) const;

    /// Observation across every registered link (what a controller sees).
    control::Observation observe(util::Rng& rng) const;

    /// Applies a configuration to array `array_id`.
    void apply(std::size_t array_id, const surface::Config& config);

    /// Runs a budgeted optimization of array `array_id` toward `objective`
    /// using `searcher` under `plane` timing; leaves the best configuration
    /// applied.
    control::OptimizationOutcome optimize(
        std::size_t array_id, const control::Objective& objective,
        const control::Searcher& searcher,
        const control::ControlPlaneModel& plane, double time_budget_s,
        util::Rng& rng);

private:
    sdr::Medium medium_;
    std::vector<sdr::Link> links_;
    std::size_t sounding_repeats_ = 4;
};

}  // namespace press::core
