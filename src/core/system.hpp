// press::core::System — the public facade of the library.
//
// A System owns a Medium (environment + PRESS arrays + numerology) and a
// set of observed links, and exposes the full loop a deployment runs:
// measure links, sweep or search configurations through a Controller with
// a control-plane timing model, and leave the array in the best state.
//
// Fault tolerance: inject_faults() attaches a fault::FaultModel to an
// array, after which every apply (including the controller's trials) is
// distorted by the faulty hardware while the caller still believes its
// requested configuration landed. probe_health() runs the per-element
// detection sweep, and optimize_degraded() searches only the dimensions a
// HealthReport left unfrozen.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "control/controller.hpp"
#include "control/objective.hpp"
#include "control/search.hpp"
#include "core/link_cache.hpp"
#include "core/multilink_cache.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "sdr/medium.hpp"
#include "util/cvec.hpp"
#include "util/rng.hpp"

namespace press::core {

/// Facade tying the substrates together. See examples/quickstart.cpp.
class System {
public:
    explicit System(sdr::Medium medium);

    sdr::Medium& medium() { return medium_; }
    const sdr::Medium& medium() const { return medium_; }

    /// Registers a link the controller will observe; returns its id.
    std::size_t add_link(sdr::Link link);

    std::size_t num_links() const { return links_.size(); }
    const sdr::Link& link(std::size_t id) const;
    sdr::Link& link(std::size_t id);

    /// Number of LTF repetitions per sounding (default 4, as in a Wi-Fi
    /// preamble-rich measurement frame).
    void set_sounding_repeats(std::size_t repeats);
    std::size_t sounding_repeats() const { return sounding_repeats_; }

    /// Noise-free CFR of one link under the current configuration, served
    /// from the factored channel cache (H = H_static + B . g(config));
    /// bit-identical to synthesizing medium().resolve_paths() directly.
    util::CVec channel_response(std::size_t link_id) const;

    /// Sounds one link under the current configuration.
    phy::ChannelEstimate sound(std::size_t link_id, util::Rng& rng) const;

    /// Measured per-subcarrier SNR (dB) of one link.
    std::vector<double> measured_snr_db(std::size_t link_id,
                                        util::Rng& rng) const;

    /// Noise-free per-subcarrier SNR (dB) of one link (ground truth).
    std::vector<double> true_snr_db(std::size_t link_id) const;

    /// Observation across every registered link (what a controller sees).
    control::Observation observe(util::Rng& rng) const;

    /// Noise-free observation across every link (ground truth; what a
    /// degradation bench scores final states with).
    control::Observation observe_true() const;

    /// Attaches element faults to array `array_id`: permanent damage is
    /// installed immediately, and every subsequent apply is distorted.
    void inject_faults(std::size_t array_id, fault::FaultModel model);

    /// The fault model attached to `array_id`, or nullptr.
    const fault::FaultModel* faults(std::size_t array_id) const;

    /// Applies a configuration to array `array_id` (through the array's
    /// fault model when one is attached).
    void apply(std::size_t array_id, const surface::Config& config);

    /// Runs the per-element health probe sweep on array `array_id` from
    /// its current configuration. Probe time is priced with `plane` but
    /// charged to a maintenance window, not a coherence budget.
    fault::HealthReport probe_health(std::size_t array_id,
                                     const control::ControlPlaneModel& plane,
                                     util::Rng& rng,
                                     const fault::ProbeOptions& options = {});

    /// Runs a budgeted optimization of array `array_id` toward `objective`
    /// using `searcher` under `plane` timing; leaves the best configuration
    /// applied.
    control::OptimizationOutcome optimize(
        std::size_t array_id, const control::Objective& objective,
        const control::Searcher& searcher,
        const control::ControlPlaneModel& plane, double time_budget_s,
        util::Rng& rng);

    /// Degradation-aware optimization: elements `report` flagged as
    /// suspect are frozen at the array's current states and the search
    /// runs over the healthy dimensions only. The returned best_config is
    /// lifted back to full arity. Falls back to plain optimize() when the
    /// report flags nothing (or everything).
    control::OptimizationOutcome optimize_degraded(
        std::size_t array_id, const control::Objective& objective,
        const control::Searcher& searcher,
        const control::ControlPlaneModel& plane, double time_budget_s,
        const fault::HealthReport& report, util::Rng& rng);

    /// Cache-backed parallel optimization: candidates are scored against
    /// the factored channel cache on a fixed thread pool instead of being
    /// applied to the (simulated) hardware one at a time, so evaluation
    /// throughput is bounded by the GEMV recombination kernel rather than
    /// the ray tracer. Simulated wall-clock is still charged per trial at
    /// the control-plane rate (parallelism speeds up the simulator, not
    /// the modeled hardware). Stuck/dead/drift faults are fully respected;
    /// flaky switches are evaluated against the pre-search array state.
    /// Results are bit-reproducible for a given rng state regardless of
    /// `threads` (0 = PRESS_THREADS env override, else hardware default).
    /// The best configuration found is applied before returning.
    control::OptimizationOutcome optimize_fast(
        std::size_t array_id, const control::Objective& objective,
        const control::Searcher& searcher,
        const control::ControlPlaneModel& plane, double time_budget_s,
        util::Rng& rng, std::size_t threads = 0);

    /// Multi-link optimization over the SHARED basis: every candidate is
    /// scored against core::MultiLinkCache's per-transmitter stacked
    /// tables — one row selection per transmitter group serves all of
    /// that group's links — instead of N per-link caches. Composite
    /// objectives advertising a MultiLinkSpec (weighted sums, max-min
    /// fairness, QoS floors, nulling; see control::MultiLinkProblem) are
    /// scored fused inside the worker arenas: group responses -> per-term
    /// sounding + reduction -> combinator, no Observation materialized.
    /// Single-link fused objectives and general objectives work too (the
    /// latter materializes the Observation from the stacked responses).
    /// Same determinism contract as optimize_fast: bit-identical results
    /// for any thread count and kernel flavor; the winner is applied.
    /// Defined in core/multilink.cpp.
    control::OptimizationOutcome optimize_multilink(
        std::size_t array_id, const control::Objective& objective,
        const control::Searcher& searcher,
        const control::ControlPlaneModel& plane, double time_budget_s,
        util::Rng& rng, std::size_t threads = 0);

    /// Warms the shared multi-link basis for every registered link (a
    /// no-op when current). optimize_multilink calls this itself; exposed
    /// so benches can split build cost from steady-state sweeps.
    void warm_multilink() { multi_cache_.warm(medium_, links_); }

    /// The shared multi-link basis (warm after warm_multilink()).
    const MultiLinkCache& multilink_cache() const { return multi_cache_; }
    MultiLinkCache::Stats multilink_cache_stats() const {
        return multi_cache_.stats();
    }

    /// Snapshot of the factored channel cache counters (hits, misses,
    /// invalidations). Also exported through the telemetry registry as
    /// core.link_cache.* when observability is enabled.
    LinkCache::Stats cache_stats() const { return link_cache_.stats(); }

    /// Drops every cached channel basis — per-link and shared multi-link
    /// (the next observation / multi-link optimize rebuilds).
    void invalidate_cache() {
        link_cache_.invalidate();
        multi_cache_.invalidate();
    }

private:
    sdr::Medium medium_;
    std::vector<sdr::Link> links_;
    std::size_t sounding_repeats_ = 4;
    std::map<std::size_t, fault::FaultModel> fault_models_;
    /// Factored per-link channel bases; rebuilt lazily on geometry,
    /// endpoint or fault changes. Mutable: observation is logically const.
    mutable LinkCache link_cache_;
    /// Shared per-transmitter stacked bases for multi-link optimization.
    mutable MultiLinkCache multi_cache_;
};

}  // namespace press::core
