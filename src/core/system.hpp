// press::core::System — the public facade of the library.
//
// A System owns a Medium (environment + PRESS arrays + numerology) and a
// set of observed links, and exposes the full loop a deployment runs:
// measure links, sweep or search configurations through a Controller with
// a control-plane timing model, and leave the array in the best state.
//
// Fault tolerance: inject_faults() attaches a fault::FaultModel to an
// array, after which every apply (including the controller's trials) is
// distorted by the faulty hardware while the caller still believes its
// requested configuration landed. probe_health() runs the per-element
// detection sweep, and optimize_degraded() searches only the dimensions a
// HealthReport left unfrozen.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "control/controller.hpp"
#include "control/objective.hpp"
#include "control/search.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "sdr/medium.hpp"
#include "util/rng.hpp"

namespace press::core {

/// Facade tying the substrates together. See examples/quickstart.cpp.
class System {
public:
    explicit System(sdr::Medium medium);

    sdr::Medium& medium() { return medium_; }
    const sdr::Medium& medium() const { return medium_; }

    /// Registers a link the controller will observe; returns its id.
    std::size_t add_link(sdr::Link link);

    std::size_t num_links() const { return links_.size(); }
    const sdr::Link& link(std::size_t id) const;
    sdr::Link& link(std::size_t id);

    /// Number of LTF repetitions per sounding (default 4, as in a Wi-Fi
    /// preamble-rich measurement frame).
    void set_sounding_repeats(std::size_t repeats);
    std::size_t sounding_repeats() const { return sounding_repeats_; }

    /// Sounds one link under the current configuration.
    phy::ChannelEstimate sound(std::size_t link_id, util::Rng& rng) const;

    /// Measured per-subcarrier SNR (dB) of one link.
    std::vector<double> measured_snr_db(std::size_t link_id,
                                        util::Rng& rng) const;

    /// Noise-free per-subcarrier SNR (dB) of one link (ground truth).
    std::vector<double> true_snr_db(std::size_t link_id) const;

    /// Observation across every registered link (what a controller sees).
    control::Observation observe(util::Rng& rng) const;

    /// Noise-free observation across every link (ground truth; what a
    /// degradation bench scores final states with).
    control::Observation observe_true() const;

    /// Attaches element faults to array `array_id`: permanent damage is
    /// installed immediately, and every subsequent apply is distorted.
    void inject_faults(std::size_t array_id, fault::FaultModel model);

    /// The fault model attached to `array_id`, or nullptr.
    const fault::FaultModel* faults(std::size_t array_id) const;

    /// Applies a configuration to array `array_id` (through the array's
    /// fault model when one is attached).
    void apply(std::size_t array_id, const surface::Config& config);

    /// Runs the per-element health probe sweep on array `array_id` from
    /// its current configuration. Probe time is priced with `plane` but
    /// charged to a maintenance window, not a coherence budget.
    fault::HealthReport probe_health(std::size_t array_id,
                                     const control::ControlPlaneModel& plane,
                                     util::Rng& rng,
                                     const fault::ProbeOptions& options = {});

    /// Runs a budgeted optimization of array `array_id` toward `objective`
    /// using `searcher` under `plane` timing; leaves the best configuration
    /// applied.
    control::OptimizationOutcome optimize(
        std::size_t array_id, const control::Objective& objective,
        const control::Searcher& searcher,
        const control::ControlPlaneModel& plane, double time_budget_s,
        util::Rng& rng);

    /// Degradation-aware optimization: elements `report` flagged as
    /// suspect are frozen at the array's current states and the search
    /// runs over the healthy dimensions only. The returned best_config is
    /// lifted back to full arity. Falls back to plain optimize() when the
    /// report flags nothing (or everything).
    control::OptimizationOutcome optimize_degraded(
        std::size_t array_id, const control::Objective& objective,
        const control::Searcher& searcher,
        const control::ControlPlaneModel& plane, double time_budget_s,
        const fault::HealthReport& report, util::Rng& rng);

private:
    sdr::Medium medium_;
    std::vector<sdr::Link> links_;
    std::size_t sounding_repeats_ = 4;
    std::map<std::size_t, fault::FaultModel> fault_models_;
};

}  // namespace press::core
