#include "core/experiments.hpp"

#include <algorithm>
#include <cmath>

#include "phy/chanest.hpp"
#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace press::core {

ConfigSweep sweep_configurations(LinkScenario& scenario, int trials,
                                 util::Rng& rng) {
    PRESS_EXPECTS(trials >= 1, "need at least one trial");
    surface::Array& array = scenario.system.medium().array(scenario.array_id);
    const surface::ConfigSpace space = array.config_space();
    const std::uint64_t n_configs = space.size();
    const auto labels = array.state_labels();

    ConfigSweep sweep;
    sweep.num_subcarriers = scenario.system.medium().ofdm().num_used();
    sweep.mean_snr_db.assign(n_configs,
                             std::vector<double>(sweep.num_subcarriers, 0.0));
    sweep.snr_per_trial_db.assign(
        static_cast<std::size_t>(trials),
        std::vector<std::vector<double>>(n_configs));
    sweep.min_snr_per_trial_db.assign(
        static_cast<std::size_t>(trials),
        std::vector<double>(n_configs, 0.0));
    sweep.config_labels.reserve(n_configs);
    for (std::uint64_t c = 0; c < n_configs; ++c)
        sweep.config_labels.push_back(
            surface::config_to_string(space.at(c), labels));

    for (int t = 0; t < trials; ++t) {
        for (std::uint64_t c = 0; c < n_configs; ++c) {
            scenario.system.apply(scenario.array_id, space.at(c));
            const std::vector<double> snr =
                scenario.system.measured_snr_db(scenario.link_id, rng);
            for (std::size_t k = 0; k < snr.size(); ++k)
                sweep.mean_snr_db[c][k] += snr[k] / trials;
            sweep.min_snr_per_trial_db[static_cast<std::size_t>(t)][c] =
                util::min_value(snr);
            sweep.snr_per_trial_db[static_cast<std::size_t>(t)][c] =
                std::move(snr);
        }
    }
    return sweep;
}

ExtremePair find_extreme_pair(const ConfigSweep& sweep) {
    PRESS_EXPECTS(sweep.mean_snr_db.size() >= 2, "need at least two configs");
    ExtremePair best;
    const std::size_t n = sweep.mean_snr_db.size();
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
            for (std::size_t k = 0; k < sweep.num_subcarriers; ++k) {
                const double diff = std::abs(sweep.mean_snr_db[a][k] -
                                             sweep.mean_snr_db[b][k]);
                if (diff > best.max_diff_db) {
                    best = {a, b, k, diff};
                }
            }
        }
    }
    return best;
}

namespace {
std::vector<double> movements_between(
    const std::vector<std::vector<double>>& profiles, double threshold_db) {
    std::vector<std::pair<bool, std::size_t>> nulls;
    nulls.reserve(profiles.size());
    for (const std::vector<double>& snr : profiles) {
        const auto info = phy::find_null(snr, threshold_db);
        nulls.emplace_back(info.has_value(), info ? info->subcarrier : 0);
    }
    std::vector<double> movements;
    for (std::size_t a = 0; a < nulls.size(); ++a) {
        if (!nulls[a].first) continue;
        for (std::size_t b = 0; b < nulls.size(); ++b) {
            if (a == b || !nulls[b].first) continue;
            movements.push_back(
                std::abs(static_cast<double>(nulls[a].second) -
                         static_cast<double>(nulls[b].second)));
        }
    }
    return movements;
}
}  // namespace

std::vector<double> null_movements(const ConfigSweep& sweep,
                                   double threshold_db) {
    return movements_between(sweep.mean_snr_db, threshold_db);
}

std::vector<double> null_movements_for_trial(const ConfigSweep& sweep,
                                             std::size_t trial,
                                             double threshold_db) {
    PRESS_EXPECTS(trial < sweep.snr_per_trial_db.size(),
                  "trial index out of range");
    return movements_between(sweep.snr_per_trial_db[trial], threshold_db);
}

std::vector<double> min_snr_changes(const ConfigSweep& sweep) {
    std::vector<double> mins;
    mins.reserve(sweep.mean_snr_db.size());
    for (const std::vector<double>& snr : sweep.mean_snr_db)
        mins.push_back(util::min_value(snr));
    std::vector<double> changes;
    for (std::size_t a = 0; a < mins.size(); ++a)
        for (std::size_t b = a + 1; b < mins.size(); ++b)
            changes.push_back(std::abs(mins[a] - mins[b]));
    return changes;
}

double max_mean_subcarrier_swing_db(const ConfigSweep& sweep) {
    return find_extreme_pair(sweep).max_diff_db;
}

double max_single_trial_swing_db(LinkScenario& scenario, int trials,
                                 util::Rng& rng) {
    PRESS_EXPECTS(trials >= 1, "need at least one trial");
    surface::Array& array = scenario.system.medium().array(scenario.array_id);
    const surface::ConfigSpace space = array.config_space();
    const std::uint64_t n_configs = space.size();
    const std::size_t n_sc = scenario.system.medium().ofdm().num_used();

    double best = 0.0;
    for (int t = 0; t < trials; ++t) {
        // Per-subcarrier extremes within this repetition.
        std::vector<double> lo(n_sc, 1e9);
        std::vector<double> hi(n_sc, -1e9);
        for (std::uint64_t c = 0; c < n_configs; ++c) {
            scenario.system.apply(scenario.array_id, space.at(c));
            const std::vector<double> snr =
                scenario.system.measured_snr_db(scenario.link_id, rng);
            for (std::size_t k = 0; k < n_sc; ++k) {
                lo[k] = std::min(lo[k], snr[k]);
                hi[k] = std::max(hi[k], snr[k]);
            }
        }
        for (std::size_t k = 0; k < n_sc; ++k)
            best = std::max(best, hi[k] - lo[k]);
    }
    return best;
}

HarmonizationPair find_harmonization_pair(std::uint64_t base_seed,
                                          int max_attempts,
                                          double min_selectivity_db,
                                          util::Rng& rng) {
    PRESS_EXPECTS(max_attempts >= 1, "need at least one attempt");
    HarmonizationPair result;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(attempt);
        LinkScenario scenario = make_fig7_link_scenario(seed);
        surface::Array& array =
            scenario.system.medium().array(scenario.array_id);
        const surface::ConfigSpace space = array.config_space();
        const auto labels = array.state_labels();
        const std::size_t n_sc =
            scenario.system.medium().ofdm().num_used();
        const std::size_t half = n_sc / 2;

        double best_pos = 0.0;
        double best_neg = 0.0;
        std::uint64_t pos_idx = 0;
        std::uint64_t neg_idx = 0;
        std::vector<double> pos_snr;
        std::vector<double> neg_snr;
        for (std::uint64_t c = 0; c < space.size(); ++c) {
            scenario.system.apply(scenario.array_id, space.at(c));
            const std::vector<double> snr =
                scenario.system.measured_snr_db(scenario.link_id, rng);
            double low = 0.0;
            double high = 0.0;
            for (std::size_t k = 0; k < half; ++k) low += snr[k];
            for (std::size_t k = half; k < n_sc; ++k) high += snr[k];
            const double sel = low / static_cast<double>(half) -
                               high / static_cast<double>(n_sc - half);
            if (sel > best_pos) {
                best_pos = sel;
                pos_idx = c;
                pos_snr = snr;
            }
            if (sel < best_neg) {
                best_neg = sel;
                neg_idx = c;
                neg_snr = snr;
            }
        }
        if (best_pos >= min_selectivity_db &&
            best_neg <= -min_selectivity_db) {
            result.found = true;
            result.seed = seed;
            result.config_a = space.at(pos_idx);
            result.config_b = space.at(neg_idx);
            result.label_a = surface::config_to_string(result.config_a, labels);
            result.label_b = surface::config_to_string(result.config_b, labels);
            result.snr_a_db = std::move(pos_snr);
            result.snr_b_db = std::move(neg_snr);
            result.selectivity_a_db = best_pos;
            result.selectivity_b_db = best_neg;
            return result;
        }
    }
    return result;
}

MimoSweep sweep_mimo(MimoScenario& scenario, int repeats, util::Rng& rng) {
    PRESS_EXPECTS(repeats >= 1, "need at least one measurement");
    surface::Array& array = scenario.medium.array(scenario.array_id);
    const surface::ConfigSpace space = array.config_space();
    const auto labels = array.state_labels();

    MimoSweep sweep;
    sweep.condition_db.reserve(space.size());
    sweep.config_labels.reserve(space.size());
    std::vector<double> medians;
    for (std::uint64_t c = 0; c < space.size(); ++c) {
        array.apply(space.at(c));
        const phy::MimoChannelEstimate est = scenario.medium.sound_mimo(
            scenario.tx_antennas, scenario.rx_antennas, scenario.profile,
            static_cast<std::size_t>(repeats), rng);
        std::vector<double> cond = phy::condition_numbers_db(est);
        medians.push_back(util::median(cond));
        sweep.condition_db.push_back(std::move(cond));
        sweep.config_labels.push_back(
            surface::config_to_string(space.at(c), labels));
    }
    const auto minmax = std::minmax_element(medians.begin(), medians.end());
    sweep.best_config =
        static_cast<std::size_t>(minmax.first - medians.begin());
    sweep.worst_config =
        static_cast<std::size_t>(minmax.second - medians.begin());
    sweep.median_gap_db = *minmax.second - *minmax.first;
    return sweep;
}

double max_true_swing_db(LinkScenario& scenario) {
    surface::Array& array = scenario.system.medium().array(scenario.array_id);
    const surface::ConfigSpace space = array.config_space();
    const std::size_t n_sc = scenario.system.medium().ofdm().num_used();
    std::vector<double> lo(n_sc, 1e9);
    std::vector<double> hi(n_sc, -1e9);
    for (std::uint64_t c = 0; c < space.size(); ++c) {
        scenario.system.apply(scenario.array_id, space.at(c));
        const std::vector<double> snr =
            scenario.system.true_snr_db(scenario.link_id);
        for (std::size_t k = 0; k < n_sc; ++k) {
            lo[k] = std::min(lo[k], snr[k]);
            hi[k] = std::max(hi[k], snr[k]);
        }
    }
    double best = 0.0;
    for (std::size_t k = 0; k < n_sc; ++k)
        best = std::max(best, hi[k] - lo[k]);
    return best;
}

}  // namespace press::core
