// Plain-text reporting: aligned tables and distribution dumps shared by the
// bench harnesses, which print the same rows/series the paper's figures
// plot.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace press::core {

/// Prints an aligned table; every row must match the header arity.
void print_table(std::ostream& os, const std::vector<std::string>& headers,
                 const std::vector<std::vector<std::string>>& rows);

/// Formats a double with fixed precision.
std::string fmt(double value, int precision = 2);

/// Prints "x y" pairs of a named series, one per line, prefixed by the
/// series name (gnuplot-friendly).
void print_series(std::ostream& os, const std::string& name,
                  const std::vector<double>& x,
                  const std::vector<double>& y);

/// Prints the CCDF of a sample set on a fixed grid.
void print_ccdf(std::ostream& os, const std::string& name,
                const std::vector<double>& samples, std::size_t points = 25);

/// Prints the CDF of a sample set on a fixed grid.
void print_cdf(std::ostream& os, const std::string& name,
               const std::vector<double>& samples, std::size_t points = 25);

/// A low-fi sparkline of a series (8 levels), handy for eyeballing SNR
/// profiles in terminal output.
std::string sparkline(const std::vector<double>& values);

}  // namespace press::core
