#include "core/multilink_cache.hpp"

#include <algorithm>
#include <map>

#include "core/link_cache.hpp"
#include "em/channel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace press::core {

namespace {

// Mirrors of the cache's atomic counters in the global registry, so an
// export sees the shared-basis traffic without holding a cache pointer.
// Cold paths only (rebuilds, invalidations) plus amortized batch folds.
void mirror_rebuild() {
    if (!obs::enabled()) return;
    static obs::Counter& rebuilds = obs::MetricsRegistry::global().counter(
        "control.multilink.basis_rebuilds");
    rebuilds.add();
}

void mirror_hits(std::uint64_t n) {
    if (!obs::enabled()) return;
    static obs::Counter& hits = obs::MetricsRegistry::global().counter(
        "control.multilink.shared_basis_hits");
    hits.add(n);
}

void antenna_facets(const em::Antenna& a, double* out) {
    out[0] = a.peak_gain_dbi();
    out[1] = a.is_omni() ? 1.0 : 0.0;
    out[2] = a.beamwidth_rad();
    out[3] = a.boresight().x;
    out[4] = a.boresight().y;
    out[5] = a.boresight().z;
}

// Full-link fingerprint: same 18 facets LinkCache validates per entry.
std::array<double, 18> link_fingerprint(const sdr::Link& link) {
    std::array<double, 18> fp{};
    fp[0] = link.tx.position.x;
    fp[1] = link.tx.position.y;
    fp[2] = link.tx.position.z;
    fp[3] = link.rx.position.x;
    fp[4] = link.rx.position.y;
    fp[5] = link.rx.position.z;
    antenna_facets(link.tx.antenna, fp.data() + 6);
    antenna_facets(link.rx.antenna, fp.data() + 12);
    return fp;
}

// Transmitter identity: position + antenna facets. Links agreeing on all
// nine facets share a group (exact comparison — endpoints come from the
// same scenario-builder doubles, not re-derived values).
using TxKey = std::array<double, 9>;

TxKey tx_key(const sdr::Link& link) {
    TxKey key{};
    key[0] = link.tx.position.x;
    key[1] = link.tx.position.y;
    key[2] = link.tx.position.z;
    antenna_facets(link.tx.antenna, key.data() + 3);
    return key;
}

}  // namespace

bool MultiLinkCache::current(const sdr::Medium& medium,
                             const std::vector<sdr::Link>& links) const {
    if (!valid_) return false;
    if (views_.size() != links.size()) return false;
    if (env_revision_ != medium.environment().revision()) return false;
    if (array_revisions_.size() != medium.num_arrays()) return false;
    for (std::size_t a = 0; a < array_revisions_.size(); ++a) {
        if (array_revisions_[a] != medium.array(a).structure_revision())
            return false;
    }
    for (std::size_t i = 0; i < links.size(); ++i) {
        if (fingerprints_[i] != link_fingerprint(links[i])) return false;
    }
    return true;
}

void MultiLinkCache::rebuild(const sdr::Medium& medium,
                             const std::vector<sdr::Link>& links) {
    obs::TraceSpan span("control.multilink.rebuild");
    const std::vector<double>& freqs = medium.ofdm().used_frequencies_hz();
    num_sc_ = freqs.size();
    constexpr std::size_t kLanes = util::kernels::kLanes;
    link_stride_ = (num_sc_ + kLanes - 1) / kLanes * kLanes;
    const double carrier_hz = medium.ofdm().carrier_hz();

    // Group links by transmitter, groups ordered by first appearance and
    // members ascending (link ids ascend as we scan).
    groups_.clear();
    views_.assign(links.size(), LinkView{});
    fingerprints_.resize(links.size());
    std::map<TxKey, std::size_t> by_tx;
    for (std::size_t i = 0; i < links.size(); ++i) {
        fingerprints_[i] = link_fingerprint(links[i]);
        const TxKey key = tx_key(links[i]);
        auto [it, inserted] = by_tx.try_emplace(key, groups_.size());
        if (inserted) groups_.emplace_back();
        Group& g = groups_[it->second];
        views_[i] = LinkView{it->second, g.links.size(),
                             g.links.size() * link_stride_};
        g.links.push_back(i);
    }

    util::CVec scratch;
    for (Group& g : groups_) {
        g.width = g.links.size() * link_stride_;
        // Wide static CFR: member slot s holds that link's environment
        // response in its first num_sc doubles, zero padding after.
        g.h_static.assign_zero(g.width);
        for (std::size_t s = 0; s < g.links.size(); ++s) {
            const sdr::Link& link = links[g.links[s]];
            const util::CVec h_static =
                em::frequency_response(medium.environment_paths(link), freqs);
            util::kernels::deinterleave(h_static.data(),
                                        g.h_static.re.data() + s * link_stride_,
                                        g.h_static.im.data() + s * link_stride_,
                                        num_sc_);
        }
        // Wide basis per array: the same (element, state) rows a LinkCache
        // would build per member, stacked side by side. Row indexing —
        // radices, row offsets — is shared: it depends only on the array.
        g.arrays.clear();
        g.arrays.reserve(medium.num_arrays());
        for (std::size_t a = 0; a < medium.num_arrays(); ++a) {
            const surface::Array& array = medium.array(a);
            GroupBasis basis;
            basis.width = g.width;
            basis.radices.reserve(array.size());
            basis.row_offset.reserve(array.size());
            std::size_t rows = 0;
            for (std::size_t s = 0; s < g.links.size(); ++s) {
                const sdr::Link& link = links[g.links[s]];
                const std::vector<std::vector<em::Path>> per_state =
                    array.state_paths(medium.environment(), link.tx, link.rx,
                                      carrier_hz);
                if (s == 0) {
                    for (const auto& states : per_state) {
                        basis.radices.push_back(
                            static_cast<int>(states.size()));
                        basis.row_offset.push_back(rows);
                        rows += states.size();
                    }
                    basis.table.assign(rows * 2 * basis.width, 0.0);
                }
                std::size_t e = 0;
                for (const auto& states : per_state) {
                    PRESS_EXPECTS(
                        e < basis.row_offset.size() &&
                            static_cast<int>(states.size()) ==
                                basis.radices[e],
                        "element state arity differs across group members");
                    std::size_t r = basis.row_offset[e];
                    for (const em::Path& p : states) {
                        scratch.assign(num_sc_, util::cd{0.0, 0.0});
                        em::accumulate_frequency_response(scratch, {p},
                                                          freqs);
                        util::kernels::deinterleave(
                            scratch.data(),
                            basis.row_re(r) + s * link_stride_,
                            basis.row_im(r) + s * link_stride_, num_sc_);
                        ++r;
                    }
                    ++e;
                }
            }
            g.arrays.push_back(std::move(basis));
        }
    }

    env_revision_ = medium.environment().revision();
    array_revisions_.resize(medium.num_arrays());
    for (std::size_t a = 0; a < medium.num_arrays(); ++a)
        array_revisions_[a] = medium.array(a).structure_revision();
    valid_ = true;
}

void MultiLinkCache::warm(const sdr::Medium& medium,
                          const std::vector<sdr::Link>& links) {
    PRESS_EXPECTS(!links.empty(), "warm() needs at least one link");
    if (current(medium, links)) return;
    rebuild(medium, links);
    rebuilds_.fetch_add(1, std::memory_order_relaxed);
    mirror_rebuild();
}

void MultiLinkCache::add_rows(util::kernels::SplitVec& h,
                              const GroupBasis& basis,
                              const surface::Config& config,
                              std::size_t skip_element) {
    PRESS_EXPECTS(config.size() == basis.radices.size(),
                  "configuration arity must match the cached array");
    const std::size_t width = h.size();
    for (std::size_t e = 0; e < config.size(); ++e) {
        if (e == skip_element) continue;
        PRESS_EXPECTS(config[e] >= 0 && config[e] < basis.radices[e],
                      "configuration state out of the cached range");
    }
    const util::kernels::Dispatch d = util::kernels::active();
    // Same blocked walk as LinkCache::add_rows, over the wide span: tile
    // the scratch, stream the selected rows innermost. Each double still
    // receives its element terms in ascending element order, and the
    // element-wise accumulate has no cross-position reduction, so every
    // member segment's bits match the standalone per-link path.
    constexpr std::size_t kTile = LinkCache::kTileSubcarriers;
    for (std::size_t sc = 0; sc < width; sc += kTile) {
        const std::size_t len = std::min(kTile, width - sc);
        double* tile_re = h.re.data() + sc;
        double* tile_im = h.im.data() + sc;
        for (std::size_t e = 0; e < config.size(); ++e) {
            if (e == skip_element) continue;
            const std::size_t row =
                basis.row_offset[e] + static_cast<std::size_t>(config[e]);
            util::kernels::accumulate(d, basis.row_re(row) + sc,
                                      basis.row_im(row) + sc, tile_re,
                                      tile_im, len);
        }
    }
}

void MultiLinkCache::add_rows_ranges(util::kernels::SplitVec& h,
                                     const GroupBasis& basis,
                                     const surface::Config& config,
                                     std::size_t num_slots,
                                     std::size_t link_stride,
                                     const util::kernels::IndexRange* ranges,
                                     std::size_t num_ranges,
                                     std::size_t skip_element) {
    PRESS_EXPECTS(config.size() == basis.radices.size(),
                  "configuration arity must match the cached array");
    for (std::size_t e = 0; e < config.size(); ++e) {
        if (e == skip_element) continue;
        PRESS_EXPECTS(config[e] >= 0 && config[e] < basis.radices[e],
                      "configuration state out of the cached range");
    }
    const util::kernels::Dispatch d = util::kernels::active();
    // Slots outer, spans and tiles inner, element walk innermost — the
    // same L1-resident streaming as add_rows, restricted to each member
    // segment's masked spans. Any single double still receives its
    // element terms in ascending element order.
    constexpr std::size_t kTile = LinkCache::kTileSubcarriers;
    for (std::size_t s = 0; s < num_slots; ++s) {
        const std::size_t seg = s * link_stride;
        for (std::size_t ri = 0; ri < num_ranges; ++ri) {
            const std::size_t begin = seg + ranges[ri].offset;
            const std::size_t end = begin + ranges[ri].len;
            PRESS_EXPECTS(end <= h.size(),
                          "span exceeds the group response width");
            for (std::size_t sc = begin; sc < end; sc += kTile) {
                const std::size_t len = std::min(kTile, end - sc);
                double* tile_re = h.re.data() + sc;
                double* tile_im = h.im.data() + sc;
                for (std::size_t e = 0; e < config.size(); ++e) {
                    if (e == skip_element) continue;
                    const std::size_t row =
                        basis.row_offset[e] +
                        static_cast<std::size_t>(config[e]);
                    util::kernels::accumulate(d, basis.row_re(row) + sc,
                                              basis.row_im(row) + sc,
                                              tile_re, tile_im, len);
                }
            }
        }
    }
}

void MultiLinkCache::group_response_ranges_into(
    const sdr::Medium& medium, std::size_t group, std::size_t array_id,
    const surface::Config& config, const util::kernels::IndexRange* ranges,
    std::size_t num_ranges, util::kernels::SplitVec& out) const {
    PRESS_EXPECTS(valid_, "cache is cold; call warm() before group reads");
    PRESS_EXPECTS(group < groups_.size(), "group id out of range");
    const Group& g = groups_[group];
    PRESS_EXPECTS(array_id < g.arrays.size(),
                  "array id out of the cached range");
    for (std::size_t ri = 0; ri < num_ranges; ++ri)
        PRESS_EXPECTS(ranges[ri].offset + ranges[ri].len <= num_sc_,
                      "span exceeds the cached subcarrier count");
    out.resize(g.width);
    const util::kernels::Dispatch d = util::kernels::active();
    for (std::size_t s = 0; s < g.links.size(); ++s) {
        const std::size_t seg = s * link_stride_;
        for (std::size_t ri = 0; ri < num_ranges; ++ri) {
            const std::size_t o = seg + ranges[ri].offset;
            util::kernels::copy(d, g.h_static.re.data() + o,
                                g.h_static.im.data() + o, out.re.data() + o,
                                out.im.data() + o, ranges[ri].len);
        }
    }
    for (std::size_t a = 0; a < g.arrays.size(); ++a) {
        if (a == array_id) {
            add_rows_ranges(out, g.arrays[a], config, g.links.size(),
                            link_stride_, ranges, num_ranges, kNoSkip);
        } else {
            add_rows_ranges(out, g.arrays[a],
                            medium.array(a).current_config(),
                            g.links.size(), link_stride_, ranges,
                            num_ranges, kNoSkip);
        }
    }
}

void MultiLinkCache::accumulate_group(const sdr::Medium& medium,
                                      const Group& group,
                                      std::size_t array_id,
                                      const surface::Config& config,
                                      std::size_t skip_element,
                                      util::kernels::SplitVec& out) const {
    out.resize(group.width);
    util::kernels::copy(util::kernels::active(), group.h_static.re.data(),
                        group.h_static.im.data(), out.re.data(),
                        out.im.data(), group.width);
    for (std::size_t a = 0; a < group.arrays.size(); ++a) {
        if (a == array_id) {
            add_rows(out, group.arrays[a], config, skip_element);
        } else {
            add_rows(out, group.arrays[a], medium.array(a).current_config(),
                     kNoSkip);
        }
    }
}

void MultiLinkCache::group_response_into(const sdr::Medium& medium,
                                         std::size_t group,
                                         std::size_t array_id,
                                         const surface::Config& config,
                                         util::kernels::SplitVec& out) const {
    PRESS_EXPECTS(valid_, "cache is cold; call warm() before group reads");
    PRESS_EXPECTS(group < groups_.size(), "group id out of range");
    PRESS_EXPECTS(array_id < groups_[group].arrays.size(),
                  "array id out of the cached range");
    accumulate_group(medium, groups_[group], array_id, config, kNoSkip, out);
}

void MultiLinkCache::group_response_base_into(
    const sdr::Medium& medium, std::size_t group, std::size_t array_id,
    const surface::Config& config, std::size_t element,
    util::kernels::SplitVec& out) const {
    PRESS_EXPECTS(valid_, "cache is cold; call warm() before group reads");
    PRESS_EXPECTS(group < groups_.size(), "group id out of range");
    PRESS_EXPECTS(array_id < groups_[group].arrays.size(),
                  "array id out of the cached range");
    PRESS_EXPECTS(
        element < groups_[group].arrays[array_id].radices.size(),
        "element id out of the cached range");
    accumulate_group(medium, groups_[group], array_id, config, element, out);
}

void MultiLinkCache::accumulate_group_element_row(
    std::size_t group, std::size_t array_id, std::size_t element, int state,
    util::kernels::SplitVec& h) const {
    PRESS_EXPECTS(valid_, "cache is cold; call warm() before group reads");
    PRESS_EXPECTS(group < groups_.size(), "group id out of range");
    const Group& g = groups_[group];
    PRESS_EXPECTS(array_id < g.arrays.size(),
                  "array id out of the cached range");
    const GroupBasis& basis = g.arrays[array_id];
    PRESS_EXPECTS(element < basis.radices.size(),
                  "element id out of the cached range");
    PRESS_EXPECTS(state >= 0 && state < basis.radices[element],
                  "configuration state out of the cached range");
    PRESS_EXPECTS(h.size() == g.width,
                  "scratch does not match the group width");
    const std::size_t row =
        basis.row_offset[element] + static_cast<std::size_t>(state);
    util::kernels::accumulate(util::kernels::active(), basis.row_re(row),
                              basis.row_im(row), h.re.data(), h.im.data(),
                              g.width);
}

MultiLinkCache::LinkView MultiLinkCache::view(std::size_t link_id) const {
    PRESS_EXPECTS(valid_, "cache is cold; call warm() first");
    PRESS_EXPECTS(link_id < views_.size(), "link id out of range");
    return views_[link_id];
}

const std::vector<std::size_t>& MultiLinkCache::group_links(
    std::size_t group) const {
    PRESS_EXPECTS(valid_, "cache is cold; call warm() first");
    PRESS_EXPECTS(group < groups_.size(), "group id out of range");
    return groups_[group].links;
}

std::size_t MultiLinkCache::group_width(std::size_t group) const {
    PRESS_EXPECTS(valid_, "cache is cold; call warm() first");
    PRESS_EXPECTS(group < groups_.size(), "group id out of range");
    return groups_[group].width;
}

MultiLinkCache::MemoryStats MultiLinkCache::memory_stats() const {
    PRESS_EXPECTS(valid_, "cache is cold; call warm() first");
    MemoryStats m;
    for (const Group& g : groups_) {
        m.shared_static_bytes += 2 * g.h_static.size() * sizeof(double);
        m.shared_metadata_bytes += g.links.size() * sizeof(std::size_t);
        for (const GroupBasis& basis : g.arrays) {
            m.shared_table_bytes += basis.table.size() * sizeof(double);
            const std::size_t meta =
                basis.radices.size() * sizeof(int) +
                basis.row_offset.size() * sizeof(std::size_t);
            m.shared_metadata_bytes += meta;
            // N per-link caches hold the same rows split across N tables
            // (identical doubles) but duplicate the selection metadata
            // per member; their static CFRs are unpadded.
            m.naive_table_bytes += basis.table.size() * sizeof(double);
            m.naive_metadata_bytes += meta * g.links.size();
        }
        m.naive_static_bytes +=
            g.links.size() * 2 * num_sc_ * sizeof(double);
        m.naive_metadata_bytes +=
            g.links.size() * kFingerprintSize * sizeof(double);
    }
    m.shared_metadata_bytes +=
        views_.size() * sizeof(LinkView) +
        fingerprints_.size() * kFingerprintSize * sizeof(double);
    return m;
}

void MultiLinkCache::invalidate() {
    valid_ = false;
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
        static obs::Counter& invalidations =
            obs::MetricsRegistry::global().counter(
                "control.multilink.invalidations");
        invalidations.add();
    }
}

void MultiLinkCache::note_batch_hits(std::uint64_t n) {
    hits_.fetch_add(n, std::memory_order_relaxed);
    mirror_hits(n);
}

}  // namespace press::core
