// System::optimize_multilink — joint N-link optimization over the shared
// per-transmitter basis (core::MultiLinkCache). The driver mirrors
// optimize_fast's structure — trial pricing, warm-then-read cache
// discipline, per-candidate rng streams, delta coordinate sweeps, winner
// remeasure — but scores every candidate from stacked group responses:
// one row selection per transmitter group serves all of that group's
// links, so per-candidate cost grows with distinct transmitters.
//
// Determinism: for one candidate, group responses are assembled first
// (ascending group id), then links are sounded in a FIXED order — term
// order for composite objectives, the one fused link for single-link
// fused objectives, ascending link id for the general path — so the rng
// draw sequence never depends on grouping, scheduling or kernel flavor.
// Within a mode the results are bit-identical across thread counts and
// dispatch flavors; across modes (composite vs general) the draw order
// differs by construction, so scores are mode-consistent, not
// cross-mode comparable.
#include <algorithm>
#include <chrono>
#include <complex>
#include <limits>

#include "control/batch.hpp"
#include "core/system.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phy/chanest.hpp"
#include "util/contracts.hpp"
#include "util/kernels.hpp"

namespace press::core {

namespace {

/// Post-search accounting: gauges for the scene shape and one histogram
/// of per-link winner scores (noise-free estimator-scale mean SNR, the
/// value the search's soundings converge to). One observation per link
/// per optimize call — cold path, never inside the candidate loop.
void record_multilink_telemetry(std::size_t num_links,
                                std::size_t num_groups,
                                const std::vector<double>& link_scores_db) {
    if (!obs::enabled()) return;
    auto& registry = obs::MetricsRegistry::global();
    registry.gauge("control.multilink.links")
        .set(static_cast<double>(num_links));
    registry.gauge("control.multilink.groups")
        .set(static_cast<double>(num_groups));
    static obs::Histogram& scores = registry.histogram(
        "control.multilink.link_score_db",
        {-20.0, -10.0, -5.0, 0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0,
         40.0});
    double worst = std::numeric_limits<double>::infinity();
    for (double v : link_scores_db) {
        scores.observe(v);
        worst = std::min(worst, v);
    }
    if (!link_scores_db.empty())
        registry.gauge("control.multilink.worst_link_db").set(worst);
}

}  // namespace

control::OptimizationOutcome System::optimize_multilink(
    std::size_t array_id, const control::Objective& objective,
    const control::Searcher& searcher,
    const control::ControlPlaneModel& plane, double time_budget_s,
    util::Rng& rng, std::size_t threads) {
    PRESS_EXPECTS(!links_.empty(), "register links before optimizing");
    PRESS_EXPECTS(time_budget_s > 0.0, "budget must be positive");
    obs::TraceSpan span("core.system.optimize_multilink");
    const surface::ConfigSpace space =
        medium_.array(array_id).config_space();

    // One trial is priced like the serial controller's: batch evaluation
    // speeds up the simulator, not the modeled hardware.
    control::SetConfig probe;
    probe.array_id = 0;
    probe.config.assign(space.num_elements(), 0);
    const double trial_cost = plane.config_trial_time_s(
        probe, links_.size(), medium_.ofdm().num_used());
    const std::size_t max_evals = std::max<std::size_t>(
        1, static_cast<std::size_t>(time_budget_s / trial_cost));

    // Warm the shared basis so batch workers only ever read.
    {
        obs::TraceSpan warm_span("core.system.warm_multilink");
        multi_cache_.warm(medium_, links_);
    }

    const surface::Config baseline =
        medium_.array(array_id).current_config();
    const fault::FaultModel* fm = faults(array_id);

    const std::size_t num_links = links_.size();
    const std::size_t num_groups = multi_cache_.num_groups();
    const std::size_t num_sc = multi_cache_.num_sc();
    std::vector<double> link_noise(num_links);
    for (std::size_t i = 0; i < num_links; ++i)
        link_noise[i] = medium_.estimate_noise_variance(links_[i]);

    // Scoring mode: a composite MultiLinkSpec wins, then a single-link
    // fused spec, then the general Observation path.
    const control::MultiLinkSpec* ml = objective.multilink_spec();
    if (ml != nullptr) {
        for (const control::LinkTerm& t : ml->terms) {
            PRESS_EXPECTS(t.link < num_links,
                          "multi-link term names an unregistered link");
            PRESS_EXPECTS(t.reduce != control::FusedSpec::Kind::kNone,
                          "a multi-link term must reduce to a scalar");
        }
    }
    const control::FusedSpec fused = objective.fused_spec();
    const bool fuse = ml == nullptr &&
                      fused.kind != control::FusedSpec::Kind::kNone &&
                      fused.link < num_links;

    // Which transmitter groups a candidate needs, ascending: the term
    // links' groups (composite), the fused link's group, or all of them.
    std::vector<std::size_t> needed_groups;
    if (ml != nullptr) {
        for (const control::LinkTerm& t : ml->terms)
            needed_groups.push_back(multi_cache_.view(t.link).group);
        std::sort(needed_groups.begin(), needed_groups.end());
        needed_groups.erase(
            std::unique(needed_groups.begin(), needed_groups.end()),
            needed_groups.end());
    } else if (fuse) {
        needed_groups.push_back(multi_cache_.view(fused.link).group);
    } else {
        for (std::size_t g = 0; g < num_groups; ++g)
            needed_groups.push_back(g);
    }
    // Every member of an assembled group is a served link response — the
    // shared-basis hit accounting and the shard task weight both count
    // (candidate x link) tiles.
    std::size_t responses_per_eval = 0;
    for (std::size_t g : needed_groups)
        responses_per_eval += multi_cache_.group_links(g).size();

    // Per-term / per-link segment placements, hoisted off the hot path.
    std::vector<MultiLinkCache::LinkView> term_views;
    if (ml != nullptr)
        for (const control::LinkTerm& t : ml->terms)
            term_views.push_back(multi_cache_.view(t.link));
    std::vector<MultiLinkCache::LinkView> link_views;
    link_views.reserve(num_links);
    for (std::size_t i = 0; i < num_links; ++i)
        link_views.push_back(multi_cache_.view(i));

    const std::size_t repeats = sounding_repeats_;

    // Sounds one link whose noise-free response lives at (hre, him) inside
    // a stacked group response: same r-outer / k-inner draw order as
    // Medium::sound_with_response, combined by the LTF kernel into
    // s.mean_re/_im and s.noise_var. Segment pointers instead of s.h —
    // otherwise identical to optimize_fast's sound_scratch.
    const auto sound_segment = [&link_noise, repeats, num_sc](
                                   std::size_t link_id, const double* hre,
                                   const double* him, util::Rng& crng,
                                   control::EvalScratch& s) {
        const double var = link_noise[link_id];
        s.resize_tracked(s.raw_re, repeats * num_sc);
        s.resize_tracked(s.raw_im, repeats * num_sc);
        s.resize_tracked(s.mean_re, num_sc);
        s.resize_tracked(s.mean_im, num_sc);
        s.resize_tracked(s.noise_var, num_sc);
        for (std::size_t r = 0; r < repeats; ++r) {
            double* rr = s.raw_re.data() + r * num_sc;
            double* ri = s.raw_im.data() + r * num_sc;
            for (std::size_t k = 0; k < num_sc; ++k) {
                const std::complex<double> w = crng.complex_gaussian(var);
                rr[k] = hre[k] + w.real();
                ri[k] = him[k] + w.imag();
            }
        }
        util::kernels::ltf_mean_var(
            util::kernels::active(), s.raw_re.data(), s.raw_im.data(),
            repeats, num_sc, s.mean_re.data(), s.mean_im.data(),
            s.noise_var.data());
    };

    // Reduces the sounding in s to one scalar SNR (dB) via the fused
    // kernels (min exact vs the Observation path; mean blocked-vs-
    // sequential ulps — the FusedSpec contract).
    const auto reduce_sounding = [num_sc](control::FusedSpec::Kind kind,
                                          control::EvalScratch& s) {
        const util::kernels::Dispatch d = util::kernels::active();
        return kind == control::FusedSpec::Kind::kMinSnr
                   ? util::kernels::snr_db_min(
                         d, s.mean_re.data(), s.mean_im.data(),
                         s.noise_var.data(), num_sc, phy::kSnrCapDb,
                         phy::kSnrFloorDb)
                   : util::kernels::snr_db_mean(
                         d, s.mean_re.data(), s.mean_im.data(),
                         s.noise_var.data(), num_sc, phy::kSnrCapDb,
                         phy::kSnrFloorDb);
    };

    // Scores a candidate whose needed group responses are already stacked
    // in s.group_h. Sounding order is fixed per mode (see file comment).
    const auto score_from_groups = [&](util::Rng& crng,
                                       control::EvalScratch& s) -> double {
        if (ml != nullptr) {
            s.resize_tracked(s.term_utility, ml->terms.size());
            for (std::size_t t = 0; t < ml->terms.size(); ++t) {
                const control::LinkTerm& term = ml->terms[t];
                const MultiLinkCache::LinkView& view = term_views[t];
                const util::kernels::SplitVec& wide = s.group_h[view.group];
                sound_segment(term.link, wide.re.data() + view.offset,
                              wide.im.data() + view.offset, crng, s);
                const double v = reduce_sounding(term.reduce, s);
                s.term_utility[t] =
                    control::MultiLinkObjective::term_utility(term, v);
            }
            return control::MultiLinkObjective::combine(
                *ml, s.term_utility.data());
        }
        if (fuse) {
            const MultiLinkCache::LinkView& view = link_views[fused.link];
            const util::kernels::SplitVec& wide = s.group_h[view.group];
            sound_segment(fused.link, wide.re.data() + view.offset,
                          wide.im.data() + view.offset, crng, s);
            return reduce_sounding(fused.kind, s);
        }
        // General path: materialize the Observation from the stacked
        // responses, ascending link id, and hand it to the objective.
        if (s.observation.link_snr_db.size() != num_links)
            s.observation.link_snr_db.resize(num_links);
        for (std::size_t i = 0; i < num_links; ++i) {
            const MultiLinkCache::LinkView& view = link_views[i];
            const util::kernels::SplitVec& wide = s.group_h[view.group];
            sound_segment(i, wide.re.data() + view.offset,
                          wide.im.data() + view.offset, crng, s);
            std::vector<double>& snr = s.observation.link_snr_db[i];
            s.resize_tracked(snr, num_sc);
            util::kernels::snr_db_into(
                util::kernels::active(), s.mean_re.data(), s.mean_im.data(),
                s.noise_var.data(), num_sc, phy::kSnrCapDb, phy::kSnrFloorDb,
                snr.data());
        }
        return objective.score(s.observation);
    };

    const auto ensure_groups = [num_groups](control::EvalScratch& s) {
        // Outer vector sized once per worker; the SplitVecs inside grow to
        // group width on first use and are reused afterwards.
        if (s.group_h.size() != num_groups) s.group_h.resize(num_groups);
    };

    control::BatchEvaluator pool(
        [this, array_id, fm, &baseline, &needed_groups, &ensure_groups,
         &score_from_groups](const surface::Config& c, util::Rng& crng,
                             control::EvalScratch& s) {
            const surface::Config* actual = &c;
            if (fm) {
                fm->distorted_into(c, baseline, crng, s.config);
                actual = &s.config;
            }
            ensure_groups(s);
            for (std::size_t g : needed_groups)
                multi_cache_.group_response_into(medium_, g, array_id,
                                                 *actual, s.group_h[g]);
            return score_from_groups(crng, s);
        },
        rng.engine()(), threads);
    // Shard in (candidate x link) tiles: a 32-link candidate carries 32
    // tiles of work, so claims stay small enough to balance the tail.
    pool.set_task_weight(responses_per_eval);

    // Coordinate sweeps: per-group bases with the swept element's row
    // left out, built once per sweep outside the workers (delta path) or
    // recomputed per candidate (PRESS_DELTA=0) — identical bits, the row
    // is always added last.
    const bool delta = control::coordinate_delta_enabled();
    std::vector<util::kernels::SplitVec> coord_base(num_groups);
    pool.set_coordinate_score(
        [this, array_id, delta, &coord_base, &needed_groups, &ensure_groups,
         &score_from_groups](const control::CoordinateBatch& cb,
                             std::size_t idx, util::Rng& crng,
                             control::EvalScratch& s) {
            const int state = (*cb.states)[idx];
            const util::kernels::Dispatch d = util::kernels::active();
            ensure_groups(s);
            for (std::size_t g : needed_groups) {
                if (delta) {
                    const util::kernels::SplitVec& base = coord_base[g];
                    s.resize_tracked(s.group_h[g], base.size());
                    util::kernels::copy(d, base.re.data(), base.im.data(),
                                        s.group_h[g].re.data(),
                                        s.group_h[g].im.data(), base.size());
                } else {
                    multi_cache_.group_response_base_into(
                        medium_, g, array_id, *cb.base, cb.element,
                        s.group_h[g]);
                }
                multi_cache_.accumulate_group_element_row(
                    g, array_id, cb.element, state, s.group_h[g]);
            }
            return score_from_groups(crng, s);
        });

    control::OptimizationOutcome outcome;
    outcome.trial_cost_s = trial_cost;

    control::SimClock clock;
    const control::BatchEvalFn eval =
        [this, &pool, &clock, trial_cost, responses_per_eval](
            const std::vector<surface::Config>& batch) {
            std::vector<double> scores = pool.evaluate(batch);
            multi_cache_.note_batch_hits(
                static_cast<std::uint64_t>(batch.size()) *
                responses_per_eval);
            clock.advance(trial_cost * static_cast<double>(batch.size()));
            return scores;
        };
    const control::CoordinateEvalFn coord_eval =
        fm ? control::CoordinateEvalFn{}
           : control::CoordinateEvalFn(
                 [this, &pool, &clock, trial_cost, responses_per_eval,
                  delta, array_id, &needed_groups, &coord_base](
                     const surface::Config& base, std::size_t element,
                     const std::vector<int>& states) {
                     if (delta) {
                         for (std::size_t g : needed_groups)
                             multi_cache_.group_response_base_into(
                                 medium_, g, array_id, base, element,
                                 coord_base[g]);
                     }
                     control::CoordinateBatch cb{&base, element, &states};
                     std::vector<double> scores =
                         pool.evaluate_coordinate(cb);
                     multi_cache_.note_batch_hits(
                         static_cast<std::uint64_t>(states.size()) *
                         responses_per_eval);
                     clock.advance(trial_cost *
                                   static_cast<double>(states.size()));
                     return scores;
                 });
    const control::StopFn stop = [&clock, time_budget_s]() {
        return clock.now_s() >= time_budget_s;
    };

    {
        obs::TraceSpan search_span("core.system.search_batched", &clock);
        const auto compute_t0 = std::chrono::steady_clock::now();
        outcome.search =
            searcher.search_batched(space, eval, coord_eval, max_evals,
                                    rng, stop, pool.num_threads() * 2);
        outcome.search.compute_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - compute_t0)
                .count();
    }
    outcome.elapsed_s = clock.now_s();
    outcome.budget_limited = outcome.search.evaluations >= max_evals ||
                             clock.now_s() >= time_budget_s;

    // Winner confirmation over fresh rng streams, priced like any trial.
    outcome.search.best_score_remeasured = outcome.search.best_score;
    if (!outcome.search.best_config.empty()) {
        obs::TraceSpan remeasure_span("core.system.remeasure", &clock);
        constexpr std::size_t kRemeasureEvals = 3;
        const std::vector<double> confirm = eval(std::vector<surface::Config>(
            kRemeasureEvals, outcome.search.best_config));
        double sum = 0.0;
        for (double v : confirm) sum += v;
        outcome.search.remeasure_evals = confirm.size();
        outcome.search.best_score_remeasured =
            sum / static_cast<double>(confirm.size());
    }
    control::record_search_telemetry(searcher.name(), outcome.search);
    pool.publish_worker_stats();

    // Actuate the winner through the normal (fault-distorting) path.
    if (!outcome.search.best_config.empty())
        apply(array_id, outcome.search.best_config);

    // Per-link winner scores for telemetry: noise-free estimator-scale
    // mean SNR of every link under the applied (possibly fault-distorted)
    // configuration, read from the shared basis. Cold path, one pass.
    if (obs::enabled()) {
        util::kernels::SplitVec wide;
        std::vector<double> noise(num_sc);
        std::vector<double> scores_db(num_links, 0.0);
        const surface::Config& applied =
            medium_.array(array_id).current_config();
        for (std::size_t g = 0; g < num_groups; ++g) {
            multi_cache_.group_response_into(medium_, g, array_id, applied,
                                             wide);
            const std::vector<std::size_t>& members =
                multi_cache_.group_links(g);
            for (std::size_t slot = 0; slot < members.size(); ++slot) {
                const std::size_t link_id = members[slot];
                const std::size_t offset =
                    slot * multi_cache_.link_stride();
                noise.assign(num_sc, link_noise[link_id]);
                scores_db[link_id] = util::kernels::snr_db_mean(
                    util::kernels::active(), wide.re.data() + offset,
                    wide.im.data() + offset, noise.data(), num_sc,
                    phy::kSnrCapDb, phy::kSnrFloorDb);
            }
        }
        multi_cache_.note_batch_hits(num_links);
        record_multilink_telemetry(num_links, num_groups, scores_db);
    }
    return outcome;
}

}  // namespace press::core
