#include "core/serve.hpp"

#include <map>
#include <memory>

#include "control/objective.hpp"
#include "control/search.hpp"

namespace press::core {

namespace {

using control::MutateRequest;
using control::OptimizeRequest;
using control::ServiceObjective;
using control::ServiceSearcher;

/// QoS-floor preset constants: a 10 dB per-link floor with a 4 dB/dB
/// hinge — firm enough that the search trades peak links for stragglers.
constexpr double kQosPresetFloorDb = 10.0;
constexpr double kQosPresetWeight = 4.0;

/// True for the composite multi-link presets (selectors >= 3), which run
/// through System::optimize_multilink over the shared basis instead of
/// the single-link optimize_fast path.
bool is_multilink_preset(std::uint8_t selector) {
    switch (static_cast<ServiceObjective>(selector)) {
        case ServiceObjective::kMaxMinFair:
        case ServiceObjective::kSumMean:
        case ServiceObjective::kQosFloor:
        case ServiceObjective::kNullVictim:
            return true;
        default:
            return false;
    }
}

std::unique_ptr<control::Objective> make_objective(std::uint8_t selector,
                                                   std::size_t link_id,
                                                   std::size_t num_links) {
    switch (static_cast<ServiceObjective>(selector)) {
        case ServiceObjective::kMinSnr:
            return std::make_unique<control::MinSnrObjective>(link_id);
        case ServiceObjective::kMeanSnr:
            return std::make_unique<control::MeanSnrObjective>(link_id);
        case ServiceObjective::kMaxMinFair:
            return control::make_max_min_objective(num_links);
        case ServiceObjective::kSumMean:
            return control::make_sum_mean_objective(num_links);
        case ServiceObjective::kQosFloor:
            return control::make_qos_floor_objective(
                num_links, kQosPresetFloorDb, kQosPresetWeight);
        case ServiceObjective::kNullVictim:
            if (num_links < 2) return nullptr;
            return control::make_nulling_objective(num_links, link_id);
    }
    return nullptr;
}

std::unique_ptr<control::Searcher> make_searcher(std::uint8_t selector) {
    switch (static_cast<ServiceSearcher>(selector)) {
        case ServiceSearcher::kGreedy:
            return std::make_unique<control::GreedyCoordinateDescent>();
        case ServiceSearcher::kExhaustive:
            return std::make_unique<control::ExhaustiveSearcher>();
        case ServiceSearcher::kRandom:
            return std::make_unique<control::RandomSearcher>();
        case ServiceSearcher::kAnnealing:
            return std::make_unique<control::SimulatedAnnealingSearcher>();
        case ServiceSearcher::kGenetic:
            return std::make_unique<control::GeneticSearcher>();
    }
    return nullptr;
}

/// Shared mutable state the callback bundle closes over.
struct EngineState {
    util::Rng rng;
    /// Bumped by every landed mutation; folded into scene_revision so
    /// the service can detect a mutation landing mid-cycle.
    std::uint64_t mutations = 0;
    /// Last known-good configuration per array (watchdog restore point).
    std::map<std::size_t, surface::Config> known_good;
};

}  // namespace

control::ServiceEngine make_service_engine(System& system,
                                           const ServeConfig& config) {
    auto state = std::make_shared<EngineState>();
    state->rng = util::Rng(config.seed);
    System* sys = &system;
    const control::ControlPlaneModel plane = config.plane;
    const std::size_t threads = config.threads;

    control::ServiceEngine engine;

    engine.validate = [sys](const OptimizeRequest& req) {
        if (req.array_id >= sys->medium().num_arrays()) return false;
        if (req.link_id >= sys->num_links()) return false;
        if (make_objective(req.objective, req.link_id, sys->num_links()) ==
            nullptr)
            return false;
        if (make_searcher(req.searcher) == nullptr) return false;
        return true;
    };

    engine.validate_mutate = [sys](const MutateRequest& req) {
        if (req.array_id >= sys->medium().num_arrays()) return false;
        const auto& array = sys->medium().array(req.array_id);
        if (req.element >= array.size()) return false;
        surface::Config probe = array.current_config();
        probe[req.element] = req.state;
        return array.config_space().valid(probe);
    };

    engine.optimize = [sys, state, plane, threads](
                          const OptimizeRequest& req,
                          double budget_s) -> control::EngineResult {
        control::EngineResult out;
        const auto objective =
            make_objective(req.objective, req.link_id, sys->num_links());
        const auto searcher = make_searcher(req.searcher);
        if (objective == nullptr || searcher == nullptr) return out;
        // Composite presets score every link through the shared
        // multi-link basis; single-link objectives keep the per-link
        // cache path (and its bench-baselined performance).
        const control::OptimizationOutcome outcome =
            is_multilink_preset(req.objective)
                ? sys->optimize_multilink(req.array_id, *objective,
                                          *searcher, plane, budget_s,
                                          state->rng, threads)
                : sys->optimize_fast(req.array_id, *objective, *searcher,
                                     plane, budget_s, state->rng, threads);
        out.ok = outcome.final_apply_ok &&
                 !outcome.search.best_config.empty() &&
                 outcome.search.best_score > control::kFailedTrialScore;
        out.best_score = outcome.search.best_score_remeasured;
        out.evaluations =
            static_cast<std::uint32_t>(outcome.search.evaluations);
        out.sim_elapsed_s = outcome.elapsed_s;
        out.compute_s = outcome.search.compute_s;
        return out;
    };

    engine.mutate = [sys, state](const MutateRequest& req) {
        if (req.array_id >= sys->medium().num_arrays()) return false;
        const auto& array = sys->medium().array(req.array_id);
        if (req.element >= array.size()) return false;
        surface::Config config = array.current_config();
        config[req.element] = req.state;
        if (!array.config_space().valid(config)) return false;
        sys->apply(req.array_id, config);
        ++state->mutations;
        return true;
    };

    engine.checkpoint = [sys, state]() {
        for (std::size_t id = 0; id < sys->medium().num_arrays(); ++id)
            state->known_good[id] = sys->medium().array(id).current_config();
    };

    engine.revert = [sys, state]() {
        if (state->known_good.empty()) return false;
        for (const auto& [id, config] : state->known_good) {
            if (id < sys->medium().num_arrays() && !config.empty())
                sys->apply(id, config);
        }
        return true;
    };

    engine.scene_revision = [sys, state]() {
        // Configuration applies (optimize_fast's own final apply) must
        // NOT move this stamp — only structural changes and landed
        // mutations do. 0x9E37...: Fibonacci hashing mixes the counter.
        std::uint64_t rev = sys->medium().environment().revision();
        for (std::size_t id = 0; id < sys->medium().num_arrays(); ++id)
            rev = rev * 31 + sys->medium().array(id).structure_revision();
        return rev ^ (state->mutations * 0x9E3779B97F4A7C15ull);
    };

    // Seed the restore point with the boot configuration so a watchdog
    // trip before the first healthy cycle still has somewhere to go.
    engine.checkpoint();

    return engine;
}

}  // namespace press::core
