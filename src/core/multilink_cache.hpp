// Shared multi-link channel basis: N links scored through one cache.
//
// A multi-user scene registers tens to hundreds of TX/RX pairs over the
// same element field. Scoring a candidate with N independent LinkCaches
// costs N row-selection walks per candidate — N passes over the radices /
// row_offset metadata, N scattered table streams — even though every link
// sharing a transmitter selects the *same* row indices (row selection
// depends only on the candidate configuration and the array's element
// arity, never on the receiver).
//
// MultiLinkCache groups links by transmitter (position + antenna facets)
// and stores, per (group, array), ONE stacked wide basis:
//
//     wide row r = [ link a's row r | link b's row r | ... ]
//
// where each member link's segment is that link's ordinary LinkCache row
// (re-radiation CFR of one element state, deinterleaved split-complex),
// padded to link_stride = num_sc rounded up to util::kernels::kLanes.
// A wide row's re segments for all members are contiguous, followed by
// all im segments (the same [re | im] row blocking LinkCache uses, just
// width = members * link_stride). One row selection then serves every
// member link: the candidate accumulation walks the metadata once per
// group and streams one contiguous table, so per-candidate selection cost
// grows with distinct transmitters, not links.
//
// Bit-identity contract: the per-link segment of a group response is
// bit-identical to the same link's LinkCache::response_into output. Both
// copy the identical static CFR and add the identical per-element rows in
// ascending element order through the element-wise kernels, which have no
// cross-position reduction — the segment's position inside the wide row
// cannot change its bits. tests/test_multilink.cpp asserts this.
//
// Memory: the table bytes are essentially the SAME as N per-link caches
// (every (link, element, state) row exists exactly once either way); the
// sharing deduplicates the per-array metadata (radices, row offsets,
// fingerprint validation) and — the real win — the per-candidate
// row-selection work and memory-stream count. memory_stats() reports both
// sides so benchmarks can print the honest comparison.
//
// Invalidation mirrors LinkCache: environment revision, per-array
// structure revisions, and per-link endpoint fingerprints are checked on
// warm(); config sweeps hit, geometry/fault edits rebuild.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "press/config.hpp"
#include "sdr/medium.hpp"
#include "util/kernels.hpp"

namespace press::core {

class MultiLinkCache {
public:
    MultiLinkCache() = default;

    // Same move story as LinkCache: the atomic counters delete the
    // implicit moves, but a System is only moved before workers exist.
    MultiLinkCache(MultiLinkCache&& other) noexcept
        : groups_(std::move(other.groups_)),
          views_(std::move(other.views_)),
          fingerprints_(std::move(other.fingerprints_)),
          array_revisions_(std::move(other.array_revisions_)),
          env_revision_(other.env_revision_),
          num_sc_(other.num_sc_),
          link_stride_(other.link_stride_),
          valid_(other.valid_),
          hits_(other.hits_.exchange(0, std::memory_order_relaxed)),
          rebuilds_(other.rebuilds_.exchange(0, std::memory_order_relaxed)),
          invalidations_(other.invalidations_.exchange(
              0, std::memory_order_relaxed)) {
        other.valid_ = false;
    }
    MultiLinkCache& operator=(MultiLinkCache&& other) noexcept {
        groups_ = std::move(other.groups_);
        views_ = std::move(other.views_);
        fingerprints_ = std::move(other.fingerprints_);
        array_revisions_ = std::move(other.array_revisions_);
        env_revision_ = other.env_revision_;
        num_sc_ = other.num_sc_;
        link_stride_ = other.link_stride_;
        valid_ = other.valid_;
        other.valid_ = false;
        hits_.store(other.hits_.exchange(0, std::memory_order_relaxed),
                    std::memory_order_relaxed);
        rebuilds_.store(
            other.rebuilds_.exchange(0, std::memory_order_relaxed),
            std::memory_order_relaxed);
        invalidations_.store(
            other.invalidations_.exchange(0, std::memory_order_relaxed),
            std::memory_order_relaxed);
        return *this;
    }

    /// Where one link lives inside its group's wide rows: segment `slot`
    /// (ascending link-id order within the group), starting `offset`
    /// doubles into each component span.
    struct LinkView {
        std::size_t group = 0;
        std::size_t slot = 0;
        std::size_t offset = 0;  ///< slot * link_stride()
    };

    /// Counter snapshot (relaxed atomics internally, plain values out).
    struct Stats {
        std::uint64_t hits = 0;      ///< group responses served warm
        std::uint64_t rebuilds = 0;  ///< full basis (re)builds
        std::uint64_t invalidations = 0;
    };

    /// Shared-vs-naive footprint, for the bench's honest comparison. The
    /// `naive_*` side is what N independent LinkCaches would hold for the
    /// same scene (computed from the same layout, not measured).
    struct MemoryStats {
        std::size_t shared_table_bytes = 0;   ///< wide basis tables
        std::size_t shared_static_bytes = 0;  ///< wide static CFRs
        std::size_t shared_metadata_bytes = 0;
        std::size_t naive_table_bytes = 0;
        std::size_t naive_static_bytes = 0;
        std::size_t naive_metadata_bytes = 0;
    };

    /// Builds (or refreshes) the grouped basis for `links` so every
    /// group_response_* call is a pure read. Link ids are positions in
    /// `links`; call again after geometry / fault / endpoint changes
    /// (stale state is detected and rebuilt, warm state is a no-op).
    void warm(const sdr::Medium& medium, const std::vector<sdr::Link>& links);

    /// True when warm() has run and nothing invalidated it since.
    bool warmed() const { return valid_; }

    /// Wide CFR of group `group` — every member link's response, stacked —
    /// with array `array_id`'s states overridden by `config`. Resizes
    /// `out` to group_width(group); requires a warm cache. Reads only
    /// immutable state: safe from concurrent batch workers.
    void group_response_into(const sdr::Medium& medium, std::size_t group,
                             std::size_t array_id,
                             const surface::Config& config,
                             util::kernels::SplitVec& out) const;

    /// Tile-bounded group_response_into() (DESIGN.md §15): the spans are
    /// half-open subcarrier ranges applied inside EVERY member segment —
    /// slot s's doubles [s * link_stride + offset, + len) are written
    /// with exactly the full call's arithmetic, everything outside the
    /// spans is left untouched and must not be read. Spans must be
    /// ascending, non-overlapping and inside [0, num_sc);
    /// phy::RuMask::tile_spans produces exactly that.
    void group_response_ranges_into(const sdr::Medium& medium,
                                    std::size_t group, std::size_t array_id,
                                    const surface::Config& config,
                                    const util::kernels::IndexRange* ranges,
                                    std::size_t num_ranges,
                                    util::kernels::SplitVec& out) const;

    /// Coordinate-sweep base: like group_response_into() but element
    /// `element` of array `array_id` contributes no row (its state in
    /// `config` is ignored). Adding one wide element row afterwards
    /// yields the candidate with the swept row added last — the same
    /// delta arithmetic LinkCache documents, for all members at once.
    void group_response_base_into(const sdr::Medium& medium,
                                  std::size_t group, std::size_t array_id,
                                  const surface::Config& config,
                                  std::size_t element,
                                  util::kernels::SplitVec& out) const;

    /// Adds element `element`'s wide basis row for load state `state`
    /// (array `array_id`) into `h` (a wide group response).
    void accumulate_group_element_row(std::size_t group,
                                      std::size_t array_id,
                                      std::size_t element, int state,
                                      util::kernels::SplitVec& h) const;

    /// The wide-row placement of link `link_id`. Requires a warm cache.
    LinkView view(std::size_t link_id) const;

    /// Member link ids of `group`, ascending. Requires a warm cache.
    const std::vector<std::size_t>& group_links(std::size_t group) const;

    std::size_t num_groups() const { return groups_.size(); }
    std::size_t num_links() const { return views_.size(); }
    std::size_t num_sc() const { return num_sc_; }
    /// Doubles per member segment (num_sc padded to kernels::kLanes).
    std::size_t link_stride() const { return link_stride_; }
    /// Doubles per component span of one wide row of `group`.
    std::size_t group_width(std::size_t group) const;

    MemoryStats memory_stats() const;

    /// Drops the grouped basis (the next warm() rebuilds).
    void invalidate();

    /// Folds `n` warm group reads performed by a batch (same amortized
    /// accounting contract as LinkCache::note_batch_hits; mirrored into
    /// the control.multilink.shared_basis_hits counter).
    void note_batch_hits(std::uint64_t n);

    Stats stats() const {
        Stats s;
        s.hits = hits_.load(std::memory_order_relaxed);
        s.rebuilds = rebuilds_.load(std::memory_order_relaxed);
        s.invalidations = invalidations_.load(std::memory_order_relaxed);
        return s;
    }

private:
    /// One (group, array) stacked basis. Wide row r's re span starts at
    /// table[r * 2 * width], its im span `width` doubles later; member
    /// slot s owns doubles [s * link_stride, s * link_stride + num_sc)
    /// of each span (the tail of the segment is zero padding).
    struct GroupBasis {
        std::vector<int> radices;             ///< states per element
        std::vector<std::size_t> row_offset;  ///< element -> first row
        std::size_t width = 0;                ///< doubles per component
        std::vector<double> table;            ///< rows x [re | im] blocks

        const double* row_re(std::size_t row) const {
            return table.data() + row * 2 * width;
        }
        const double* row_im(std::size_t row) const {
            return row_re(row) + width;
        }
        double* row_re(std::size_t row) {
            return table.data() + row * 2 * width;
        }
        double* row_im(std::size_t row) { return row_re(row) + width; }
    };

    struct Group {
        std::vector<std::size_t> links;  ///< member link ids, ascending
        std::size_t width = 0;           ///< links.size() * link_stride
        util::kernels::SplitVec h_static;  ///< wide static CFR
        std::vector<GroupBasis> arrays;
    };

    /// Full-link fingerprint (both endpoints), same facets as LinkCache.
    static constexpr std::size_t kFingerprintSize = 18;
    using Fingerprint = std::array<double, kFingerprintSize>;

    bool current(const sdr::Medium& medium,
                 const std::vector<sdr::Link>& links) const;
    void rebuild(const sdr::Medium& medium,
                 const std::vector<sdr::Link>& links);

    static constexpr std::size_t kNoSkip = static_cast<std::size_t>(-1);
    static void add_rows(util::kernels::SplitVec& h, const GroupBasis& basis,
                         const surface::Config& config,
                         std::size_t skip_element = kNoSkip);
    /// Span-bounded add_rows: per member slot, only the doubles inside
    /// each subcarrier span receive row terms (ascending element order
    /// per double, so bit-identical to the full walk on those positions).
    static void add_rows_ranges(util::kernels::SplitVec& h,
                                const GroupBasis& basis,
                                const surface::Config& config,
                                std::size_t num_slots,
                                std::size_t link_stride,
                                const util::kernels::IndexRange* ranges,
                                std::size_t num_ranges,
                                std::size_t skip_element);

    void accumulate_group(const sdr::Medium& medium, const Group& group,
                          std::size_t array_id,
                          const surface::Config& config,
                          std::size_t skip_element,
                          util::kernels::SplitVec& out) const;

    std::vector<Group> groups_;
    std::vector<LinkView> views_;          ///< link id -> placement
    std::vector<Fingerprint> fingerprints_;  ///< link id -> endpoints
    std::vector<std::uint64_t> array_revisions_;
    std::uint64_t env_revision_ = 0;
    std::size_t num_sc_ = 0;
    std::size_t link_stride_ = 0;
    bool valid_ = false;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> rebuilds_{0};
    std::atomic<std::uint64_t> invalidations_{0};
};

}  // namespace press::core
