#include "sdr/medium.hpp"

#include <cmath>

#include "em/channel.hpp"
#include "util/contracts.hpp"
#include "util/units.hpp"

namespace press::sdr {

Medium::Medium(em::Environment environment, phy::OfdmParams params)
    : environment_(std::move(environment)), params_(std::move(params)) {}

std::size_t Medium::add_array(surface::Array array) {
    arrays_.push_back(std::move(array));
    return arrays_.size() - 1;
}

surface::Array& Medium::array(std::size_t id) {
    PRESS_EXPECTS(id < arrays_.size(), "array id out of range");
    return arrays_[id];
}

const surface::Array& Medium::array(std::size_t id) const {
    PRESS_EXPECTS(id < arrays_.size(), "array id out of range");
    return arrays_[id];
}

Medium::EndpointKey Medium::endpoint_key(const Link& link) {
    return {link.tx.position.x,           link.tx.position.y,
            link.tx.position.z,           link.rx.position.x,
            link.rx.position.y,           link.rx.position.z,
            link.tx.antenna.peak_gain_dbi(),
            link.rx.antenna.peak_gain_dbi()};
}

const std::vector<em::Path>& Medium::environment_paths(
    const Link& link) const {
    if (env_cache_revision_ != environment_.revision()) {
        env_path_cache_.clear();
        env_cache_revision_ = environment_.revision();
    }
    const EndpointKey key = endpoint_key(link);
    auto it = env_path_cache_.find(key);
    if (it == env_path_cache_.end()) {
        it = env_path_cache_
                 .emplace(key, environment_.trace(link.tx, link.rx,
                                                  params_.carrier_hz()))
                 .first;
    }
    return it->second;
}

std::vector<em::Path> Medium::resolve_paths(const Link& link) const {
    std::vector<em::Path> paths = environment_paths(link);
    for (const surface::Array& a : arrays_) {
        const std::vector<em::Path> extra =
            a.paths(environment_, link.tx, link.rx, params_.carrier_hz());
        paths.insert(paths.end(), extra.begin(), extra.end());
    }
    return paths;
}

util::CVec Medium::frequency_response(const Link& link) const {
    return em::frequency_response(resolve_paths(link),
                                  params_.used_frequencies_hz());
}

std::vector<double> Medium::true_snr_db(const Link& link) const {
    return true_snr_db(link, frequency_response(link));
}

std::vector<double> Medium::true_snr_db(const Link& link,
                                        const util::CVec& h) const {
    const double p_sc = util::dbm_to_watt(link.profile.tx_power_dbm) /
                        static_cast<double>(params_.num_used());
    const double n_sc = util::thermal_noise_watt(
        params_.subcarrier_spacing_hz(), link.profile.noise_figure_db);
    std::vector<double> snr(h.size());
    for (std::size_t k = 0; k < h.size(); ++k) {
        const double sig = p_sc * std::norm(h[k]);
        snr[k] = util::linear_to_db(std::max(sig / n_sc, 1e-30));
    }
    return snr;
}

double Medium::estimate_noise_variance(const Link& link) const {
    // A raw LS estimate is H + w / sqrt(P_sc) with w ~ CN(0, N_sc); its
    // variance in channel units is N_sc / P_sc.
    const double p_sc = util::dbm_to_watt(link.profile.tx_power_dbm) /
                        static_cast<double>(params_.num_used());
    const double n_sc = util::thermal_noise_watt(
        params_.subcarrier_spacing_hz(), link.profile.noise_figure_db);
    return n_sc / p_sc;
}

phy::ChannelEstimate Medium::sound(const Link& link, std::size_t repeats,
                                   util::Rng& rng) const {
    return sound_with_response(link, frequency_response(link), repeats, rng);
}

phy::ChannelEstimate Medium::sound_with_response(const Link& link,
                                                 const util::CVec& h,
                                                 std::size_t repeats,
                                                 util::Rng& rng) const {
    PRESS_EXPECTS(repeats >= 2, "sounding needs at least two repetitions");
    const double var = estimate_noise_variance(link);
    std::vector<util::CVec> raw;
    raw.reserve(repeats);
    for (std::size_t r = 0; r < repeats; ++r) {
        util::CVec est(h.size());
        for (std::size_t k = 0; k < h.size(); ++k)
            est[k] = h[k] + rng.complex_gaussian(var);
        raw.push_back(std::move(est));
    }
    return phy::combine_ltf_estimates(raw);
}

phy::MimoChannelEstimate Medium::sound_mimo(
    const std::vector<em::RadiatingEndpoint>& tx_antennas,
    const std::vector<em::RadiatingEndpoint>& rx_antennas,
    const RadioProfile& profile, std::size_t repeats, util::Rng& rng) const {
    PRESS_EXPECTS(!tx_antennas.empty() && !rx_antennas.empty(),
                  "MIMO sounding needs antennas on both ends");
    PRESS_EXPECTS(repeats >= 1, "need at least one repetition");
    std::vector<std::vector<util::CVec>> columns;
    columns.reserve(tx_antennas.size());
    for (const em::RadiatingEndpoint& tx : tx_antennas) {
        std::vector<util::CVec> column;
        column.reserve(rx_antennas.size());
        for (const em::RadiatingEndpoint& rx : rx_antennas) {
            Link link{tx, rx, profile};
            const util::CVec h = frequency_response(link);
            const double var = estimate_noise_variance(link);
            util::CVec mean(h.size(), util::cd{0.0, 0.0});
            for (std::size_t r = 0; r < repeats; ++r)
                for (std::size_t k = 0; k < h.size(); ++k)
                    mean[k] += (h[k] + rng.complex_gaussian(var)) /
                               static_cast<double>(repeats);
            column.push_back(std::move(mean));
        }
        columns.push_back(std::move(column));
    }
    return phy::assemble_mimo(columns);
}

}  // namespace press::sdr
