// Full time-domain sample chain.
//
// The frequency-domain Medium::sound() path is exact and fast; this module
// provides the slow, honest alternative used by integration tests and the
// quickstart example: build an OFDM frame, convolve it with the fractional-
// delay impulse response of the resolved multipath, add front-end
// impairments (AWGN at the link budget, CFO, phase-noise random walk), and
// run the receiver's parser over the samples. Agreement between the two
// paths validates the frequency-domain shortcut.
#pragma once

#include "phy/frame.hpp"
#include "sdr/medium.hpp"
#include "util/rng.hpp"

namespace press::sdr {

/// Impairment and sampling knobs for the time-domain chain.
struct TimeDomainConfig {
    /// Channel impulse-response length in samples (covers room delay spread
    /// plus interpolation kernel tails at 20 MS/s).
    std::size_t num_taps = 64;
    /// Taps of acausal headroom for the interpolation kernel; the receiver
    /// is assumed synchronized to this offset.
    std::size_t lead_taps = 8;
    /// When true, draw a CFO uniformly in +-profile.max_cfo_hz.
    bool apply_cfo = true;
    /// When true, apply the profile's phase-noise random walk.
    bool apply_phase_noise = true;
    /// When true, the parser estimates and removes CFO before demodulation.
    bool correct_cfo = true;
};

/// Result of one time-domain frame exchange.
struct TimeDomainResult {
    phy::RxFrame rx;
    phy::ChannelEstimate estimate;  ///< combined from the frame's LTFs
    double applied_cfo_hz = 0.0;    ///< ground truth for tests
    double evm_rms = 0.0;           ///< payload EVM after equalization
    std::size_t bit_errors = 0;     ///< payload bit errors vs. ground truth
};

/// Passes `tx_samples` (unit average power) through the link: TX power
/// scaling, multipath convolution, AWGN, CFO, phase noise. The output is
/// aligned so the frame starts at `cfg.lead_taps`.
util::CVec transmit_through(const Medium& medium, const Link& link,
                            const util::CVec& tx_samples, util::Rng& rng,
                            const TimeDomainConfig& cfg,
                            double* applied_cfo_hz = nullptr);

/// End-to-end frame exchange over the link. Returns channel estimates in
/// the same units as Medium::sound(), payload EVM and bit errors.
TimeDomainResult exchange_frame(const Medium& medium, const Link& link,
                                const phy::FrameSpec& spec, util::Rng& rng,
                                const TimeDomainConfig& cfg = {});

}  // namespace press::sdr
