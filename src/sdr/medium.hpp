// The wireless medium: environment + PRESS arrays + OFDM numerology.
//
// Medium is where a measurement comes from in this library. It resolves the
// full multipath (environment paths plus the re-radiation paths of every
// installed PRESS array under its current configuration), synthesizes the
// per-subcarrier channel, and simulates LTF-based channel sounding with the
// thermal-noise link budget of a radio profile.
#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <vector>

#include "em/environment.hpp"
#include "phy/chanest.hpp"
#include "phy/mimo.hpp"
#include "phy/ofdm.hpp"
#include "press/array.hpp"
#include "sdr/profile.hpp"
#include "util/rng.hpp"

namespace press::sdr {

/// A unidirectional link between two placed radios.
struct Link {
    em::RadiatingEndpoint tx;
    em::RadiatingEndpoint rx;
    RadioProfile profile = RadioProfile::warp_v3();
};

/// Environment + arrays + numerology; the object every experiment measures
/// through.
class Medium {
public:
    Medium(em::Environment environment, phy::OfdmParams params);

    /// Mutable access to the scene. Any actual mutation bumps the
    /// environment's revision stamp, which drops the path cache on the
    /// next lookup — so holding this reference across mutations is safe.
    em::Environment& environment() { return environment_; }
    const em::Environment& environment() const { return environment_; }

    const phy::OfdmParams& ofdm() const { return params_; }

    /// Installs an array; returns its id.
    std::size_t add_array(surface::Array array);

    std::size_t num_arrays() const { return arrays_.size(); }
    surface::Array& array(std::size_t id);
    const surface::Array& array(std::size_t id) const;

    /// Every path between the link's endpoints: direct, walls, scatterers,
    /// and each array's element re-radiations under current configurations.
    std::vector<em::Path> resolve_paths(const Link& link) const;

    /// The environment-only paths of a link (direct + walls + scatterers +
    /// static diffuse), cached per endpoint pair; array re-radiation is
    /// excluded. The configuration-independent half of a factored channel.
    const std::vector<em::Path>& environment_paths(const Link& link) const;

    /// Noise-free channel frequency response on the used subcarriers.
    util::CVec frequency_response(const Link& link) const;

    /// Exact per-subcarrier SNR (dB) from the link budget: per-subcarrier
    /// TX power x |H|^2 over thermal noise in one subcarrier bandwidth.
    std::vector<double> true_snr_db(const Link& link) const;

    /// Same link budget applied to a caller-supplied response `h` (e.g.
    /// one reconstructed by a core::LinkCache instead of a fresh trace).
    std::vector<double> true_snr_db(const Link& link,
                                    const util::CVec& h) const;

    /// Per-subcarrier noise-to-signal-scale: the variance of a single raw
    /// LTF channel estimate for this link (channel-units^2).
    double estimate_noise_variance(const Link& link) const;

    /// Simulates `repeats` LTF soundings: each raw estimate is the true CFR
    /// plus complex Gaussian estimator noise at the link budget's level.
    phy::ChannelEstimate sound(const Link& link, std::size_t repeats,
                               util::Rng& rng) const;

    /// Like sound(), but against a caller-supplied true response `h`
    /// instead of re-synthesizing it from a trace. The fast path of a
    /// cached observe: identical noise stream and estimator behavior.
    phy::ChannelEstimate sound_with_response(const Link& link,
                                             const util::CVec& h,
                                             std::size_t repeats,
                                             util::Rng& rng) const;

    /// Sounds an Nt x Nr MIMO channel: TX antennas take turns transmitting
    /// LTFs (orthogonal in time), each RX antenna estimates its row.
    /// `repeats` raw estimates are averaged per entry.
    phy::MimoChannelEstimate sound_mimo(
        const std::vector<em::RadiatingEndpoint>& tx_antennas,
        const std::vector<em::RadiatingEndpoint>& rx_antennas,
        const RadioProfile& profile, std::size_t repeats,
        util::Rng& rng) const;

private:
    // Environment paths depend only on endpoint placement (array paths are
    // re-resolved per configuration); sweeping 64 configurations x 10
    // trials re-traces the same static scene, so cache per endpoint pair.
    using EndpointKey = std::array<double, 8>;
    static EndpointKey endpoint_key(const Link& link);

    em::Environment environment_;
    phy::OfdmParams params_;
    std::vector<surface::Array> arrays_;
    mutable std::map<EndpointKey, std::vector<em::Path>> env_path_cache_;
    /// Environment revision the path cache was filled against; a mismatch
    /// (scene mutated through any Environment mutator) drops the cache.
    mutable std::uint64_t env_cache_revision_ = 0;
};

}  // namespace press::sdr
