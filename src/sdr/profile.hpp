// Radio front-end profiles.
//
// Models the three software radios of the paper's prototype as link-budget
// parameter sets: WARP v3 boards for the Section 3.2.1 link-enhancement
// study, USRP N210s for the Figure-7 harmonization experiment, and a USRP
// X310 with two UBX-160 daughterboards for the Figure-8 2x2 MIMO study.
#pragma once

#include <string>

namespace press::sdr {

/// Front-end parameters of one radio model.
struct RadioProfile {
    std::string name;
    double tx_power_dbm = 15.0;
    double noise_figure_db = 7.0;
    /// Residual carrier frequency offset bound [Hz] for the time-domain
    /// chain (drawn uniformly in +-max_cfo_hz per session).
    double max_cfo_hz = 0.0;
    /// Phase-noise random-walk step (radians per sample) for the
    /// time-domain chain.
    double phase_noise_std = 0.0;
    /// Antennas available at this radio.
    int num_antennas = 1;

    /// WARP v3 (Wi-Fi-like OFDM endpoints of Section 3.1).
    static RadioProfile warp_v3();

    /// USRP N210 (Figure-7 harmonization endpoints).
    static RadioProfile usrp_n210();

    /// USRP X310 + 2x UBX-160 (Figure-8 2x2 MIMO endpoints).
    static RadioProfile usrp_x310();
};

}  // namespace press::sdr
