#include "sdr/timedomain.hpp"

#include <cmath>

#include "em/channel.hpp"
#include "util/contracts.hpp"
#include "util/units.hpp"

namespace press::sdr {

util::CVec transmit_through(const Medium& medium, const Link& link,
                            const util::CVec& tx_samples, util::Rng& rng,
                            const TimeDomainConfig& cfg,
                            double* applied_cfo_hz) {
    PRESS_EXPECTS(!tx_samples.empty(), "no samples to transmit");
    const phy::OfdmParams& params = medium.ofdm();
    const std::vector<em::Path> paths = medium.resolve_paths(link);
    const util::CVec cir =
        em::impulse_response(paths, params.carrier_hz(),
                             params.sample_rate_hz(), cfg.num_taps,
                             cfg.lead_taps);

    // TX power scaling: tx_samples are unit average power.
    const double amp = std::sqrt(util::dbm_to_watt(link.profile.tx_power_dbm));
    util::CVec scaled = util::scale(tx_samples, util::cd{amp, 0.0});

    util::CVec rx = util::convolve(scaled, cir);

    // Front-end impairments.
    double cfo = 0.0;
    if (cfg.apply_cfo && link.profile.max_cfo_hz > 0.0)
        cfo = rng.uniform(-link.profile.max_cfo_hz, link.profile.max_cfo_hz);
    if (applied_cfo_hz != nullptr) *applied_cfo_hz = cfo;

    const double noise_var = util::thermal_noise_watt(
        params.sample_rate_hz(), link.profile.noise_figure_db);
    double phase = 0.0;
    for (std::size_t n = 0; n < rx.size(); ++n) {
        if (cfg.apply_phase_noise && link.profile.phase_noise_std > 0.0)
            phase += rng.gaussian(0.0, link.profile.phase_noise_std);
        const double rot = util::kTwoPi * cfo * static_cast<double>(n) /
                               params.sample_rate_hz() +
                           phase;
        rx[n] = rx[n] * std::polar(1.0, rot) + rng.complex_gaussian(noise_var);
    }
    return rx;
}

TimeDomainResult exchange_frame(const Medium& medium, const Link& link,
                                const phy::FrameSpec& spec, util::Rng& rng,
                                const TimeDomainConfig& cfg) {
    const phy::OfdmParams& params = medium.ofdm();
    phy::TxFrame tx = phy::build_frame(params, spec, rng);

    TimeDomainResult result;
    util::CVec rx_samples = transmit_through(medium, link, tx.samples, rng,
                                             cfg, &result.applied_cfo_hz);

    // The receiver is synchronized to the channel's leading tap: drop the
    // first lead_taps samples so symbol boundaries line up.
    PRESS_EXPECTS(rx_samples.size() >
                      cfg.lead_taps +
                          phy::frame_length_samples(params, spec),
                  "received buffer shorter than the frame");
    util::CVec aligned(rx_samples.begin() + static_cast<long>(cfg.lead_taps),
                       rx_samples.end());

    result.rx = phy::parse_frame(params, spec, aligned, cfg.correct_cfo);

    // Convert estimates to channel units by undoing the known TX power.
    const double amp =
        std::sqrt(util::dbm_to_watt(link.profile.tx_power_dbm));
    std::vector<util::CVec> raw = result.rx.ltf_estimates;
    for (util::CVec& r : raw)
        for (util::cd& v : r) v /= amp;
    result.estimate = phy::combine_ltf_estimates(raw);

    result.evm_rms = phy::evm_rms(result.rx.equalized_data, spec.modulation);
    const std::size_t n_bits =
        std::min(result.rx.payload_bits.size(), tx.payload_bits.size());
    for (std::size_t i = 0; i < n_bits; ++i)
        if (result.rx.payload_bits[i] != tx.payload_bits[i])
            ++result.bit_errors;
    return result;
}

}  // namespace press::sdr
