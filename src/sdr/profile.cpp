#include "sdr/profile.hpp"

namespace press::sdr {

RadioProfile RadioProfile::warp_v3() {
    RadioProfile p;
    p.name = "WARP v3";
    p.tx_power_dbm = 0.0;
    p.noise_figure_db = 10.0;
    p.max_cfo_hz = 600.0;     // ~0.25 ppm at 2.462 GHz after coarse sync
    p.phase_noise_std = 2e-4;
    p.num_antennas = 1;
    return p;
}

RadioProfile RadioProfile::usrp_n210() {
    RadioProfile p;
    p.name = "USRP N210";
    p.tx_power_dbm = 0.0;
    p.noise_figure_db = 11.0;
    p.max_cfo_hz = 900.0;
    p.phase_noise_std = 3e-4;
    p.num_antennas = 1;
    return p;
}

RadioProfile RadioProfile::usrp_x310() {
    RadioProfile p;
    p.name = "USRP X310 + UBX-160";
    p.tx_power_dbm = 2.0;
    p.noise_figure_db = 9.0;
    p.max_cfo_hz = 400.0;
    p.phase_noise_std = 1.5e-4;
    p.num_antennas = 2;
    return p;
}

}  // namespace press::sdr
