#include <cstdio>
#include "core/experiments.hpp"
#include "util/stats.hpp"
using namespace press;
int main() {
    for (std::uint64_t seed = 300; seed < 315; ++seed) {
        core::LinkScenario sc = core::make_fig7_link_scenario(seed);
        auto& arr = sc.system.medium().array(sc.array_id);
        auto space = arr.config_space();
        const std::size_t n = sc.system.medium().ofdm().num_used(), half = n/2;
        double bp = 0, bn = 0;
        for (std::uint64_t c = 0; c < space.size(); ++c) {
            sc.system.apply(sc.array_id, space.at(c));
            auto snr = sc.system.true_snr_db(0);
            double lo = 0, hi = 0;
            for (size_t k = 0; k < half; ++k) lo += snr[k];
            for (size_t k = half; k < n; ++k) hi += snr[k];
            double sel = lo/half - hi/(n-half);
            bp = std::max(bp, sel); bn = std::min(bn, sel);
        }
        // element path amps
        sc.system.apply(sc.array_id, space.at(0));
        auto paths = sc.system.medium().resolve_paths(sc.system.link(0));
        double emax = 0, envmax = 0;
        for (auto& p : paths) (p.kind == em::PathKind::kPressElement ? emax : envmax) = std::max(p.kind == em::PathKind::kPressElement ? emax : envmax, std::abs(p.gain));
        std::printf("seed %llu: sel+ %.2f sel- %.2f elemmax %.1e envmax %.1e\n", (unsigned long long)seed, bp, bn, emax, envmax);
    }
    return 0;
}
