#include <cstdio>
#include "core/experiments.hpp"
#include "util/stats.hpp"
using namespace press;
int main() {
    for (double gain : {10.0, 12.0, 14.0}) {
        core::StudyParams sp; sp.element_gain_dbi = gain;
        std::printf("== element gain %.0f dBi ==\n", gain);
        for (std::uint64_t p = 0; p < 8; ++p) {
            core::LinkScenario sc = core::make_link_scenario(100 + p, false, sp);
            util::Rng rng(7000 + p);
            core::ConfigSweep sweep = core::sweep_configurations(sc, 10, rng);
            auto pair = core::find_extreme_pair(sweep);
            auto moves = core::null_movements(sweep);
            double maxmove = moves.empty() ? -1 : util::max_value(moves);
            auto changes = core::min_snr_changes(sweep);
            std::vector<double> mins;
            for (auto& v : sweep.mean_snr_db) mins.push_back(util::min_value(v));
            std::printf(" p%llu: pairdiff %5.1f maxmove %3.0f frac>10 %.2f minSNR[%5.1f..%5.1f] frac(min<20) %.2f\n",
                (unsigned long long)p, pair.max_diff_db, maxmove,
                util::fraction_above(changes, 10.0), util::min_value(mins), util::max_value(mins),
                util::fraction_below(mins, 20.0));
        }
        core::LinkScenario los = core::make_link_scenario(200, true, sp);
        std::printf(" LoS max true swing %.2f dB\n", core::max_true_swing_db(los));
    }
    util::Rng rng(42);
    auto h = core::find_harmonization_pair(300, 100, 2.5, rng);
    std::printf("fig7: found=%d seed=%llu selA=%.1f selB=%.1f\n", h.found, (unsigned long long)h.seed, h.selectivity_a_db, h.selectivity_b_db);
    return 0;
}
