#include <cstdio>
#include "core/experiments.hpp"
#include "util/stats.hpp"
using namespace press;
int main() {
    // NLoS sweeps across 8 placements
    for (std::uint64_t p = 0; p < 8; ++p) {
        core::LinkScenario sc = core::make_link_scenario(100 + p, false);
        util::Rng rng(7000 + p);
        core::ConfigSweep sweep = core::sweep_configurations(sc, 10, rng);
        auto pair = core::find_extreme_pair(sweep);
        std::vector<double> all;
        for (auto& v : sweep.mean_snr_db) for (double x : v) all.push_back(x);
        auto moves = core::null_movements(sweep);
        double maxmove = moves.empty() ? -1 : util::max_value(moves);
        auto changes = core::min_snr_changes(sweep);
        double frac10 = util::fraction_above(changes, 10.0);
        // fraction of configs with min snr below 20
        std::vector<double> mins;
        for (auto& v : sweep.mean_snr_db) mins.push_back(util::min_value(v));
        double fracbelow20 = util::fraction_below(mins, 20.0);
        std::printf("placement %llu: snr[p5 %5.1f med %5.1f p95 %5.1f] maxpairdiff %5.1f nulls(pairs)=%zu maxmove %4.0f frac(chg>10dB) %.2f frac(min<20) %.2f\n",
            (unsigned long long)p, util::percentile(all,5), util::median(all), util::percentile(all,95),
            pair.max_diff_db, moves.size(), maxmove, frac10, fracbelow20);
    }
    // single-trial swing (26 dB claim)
    {
        core::LinkScenario sc = core::make_link_scenario(104, false);
        util::Rng rng(1);
        std::printf("NLoS max single-trial swing: %.1f dB\n", core::max_single_trial_swing_db(sc, 10, rng));
    }
    // LoS claim
    for (std::uint64_t s = 0; s < 4; ++s) {
        core::LinkScenario sc = core::make_link_scenario(200 + s, true);
        std::printf("LoS seed %llu: max true swing %.2f dB\n", (unsigned long long)s, core::max_true_swing_db(sc));
    }
    // Fig 7
    {
        util::Rng rng(42);
        auto h = core::find_harmonization_pair(300, 40, 2.0, rng);
        std::printf("fig7: found=%d seed=%llu selA=%.1f selB=%.1f\n", h.found, (unsigned long long)h.seed, h.selectivity_a_db, h.selectivity_b_db);
    }
    // Fig 8
    {
        core::MimoScenario sc = core::make_mimo_scenario(500);
        util::Rng rng(9);
        auto m = core::sweep_mimo(sc, 50, rng);
        std::printf("fig8: median gap %.2f dB (best %s worst %s)\n", m.median_gap_db,
            m.config_labels[m.best_config].c_str(), m.config_labels[m.worst_config].c_str());
    }
    return 0;
}
