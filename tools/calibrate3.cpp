#include <cstdio>
#include "core/experiments.hpp"
#include "util/stats.hpp"
using namespace press;
int main() {
    for (double d : {3.0, 2.0, 1.5, 1.0}) {
        core::StudyParams sp; sp.link_distance_m = d;
        for (std::uint64_t s = 200; s < 204; ++s) {
            core::LinkScenario los = core::make_link_scenario(s, true, sp);
            std::printf("LoS d=%.1f seed %llu: swing %.2f dB\n", d, (unsigned long long)s, core::max_true_swing_db(los));
        }
    }
    util::Rng rng(42);
    for (double thr : {2.5, 3.5}) {
      auto h = core::find_harmonization_pair(300, 200, thr, rng);
      std::printf("fig7 thr %.1f: found=%d seed=%llu selA=%.1f selB=%.1f\n", thr, h.found, (unsigned long long)h.seed, h.selectivity_a_db, h.selectivity_b_db);
    }
    return 0;
}
