// press_top — live terminal dashboard for a running pressd.
//
// Connects to the daemon's AF_UNIX SOCK_SEQPACKET socket as an ordinary
// session, sends Subscribe, and renders every pushed TelemetryFrame
// (`press.timeseries/v1`): request rate, latency digest (p50/p99),
// queue depth, the reject-reason breakdown, per-session outbox depths
// against the backpressure watermark, SLO burn rate/compliance, the
// worst-link SNR gauge, and the window's trace exemplars. FlightTap
// frames surface as an alert banner — the daemon just dumped its flight
// recorder (watchdog trip or SLO burn) and the tap names the file.
//
// The same binary is the CI smoke client: --frames N exits after N
// telemetry frames, --capture PATH writes the received stream as one
// `{schema, frames: [...]}` document for validate_telemetry, and
// --plain skips the ANSI screen clearing so output is loggable.
//
//   press_top --socket /tmp/pressd.sock [--interval-us N] [--prefix P]
//             [--frames N] [--timeout-s S] [--capture PATH] [--plain]
//
// Exit code: 0 when at least one telemetry frame arrived (and, with
// --frames N, all N arrived before --timeout-s), 1 otherwise.

#ifdef _WIN32
#include <cstdio>
int main() {
    std::fprintf(stderr, "press_top: needs POSIX sockets\n");
    return 2;
}
#else

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "control/message.hpp"
#include "obs/json.hpp"
#include "obs/timeseries.hpp"

namespace {

using press::control::Decoded;
using press::control::FlightTap;
using press::control::FlightTapReason;
using press::control::Message;
using press::control::Subscribe;
using press::control::TelemetryFrame;
using press::obs::Json;

struct Args {
    std::string socket_path = "/tmp/pressd.sock";
    std::uint32_t interval_us = 500000;
    std::string prefix;
    std::uint64_t frames = 0;  // 0 = run until killed
    double timeout_s = 10.0;   // bound on waiting for the next frame
    std::string capture_path;
    bool plain = false;
};

bool parse_args(int argc, char** argv, Args& args) {
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "press_top: %s needs a value\n",
                             a.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        const char* v = nullptr;
        if (a == "--socket" && (v = next()))
            args.socket_path = v;
        else if (a == "--interval-us" && (v = next()))
            args.interval_us =
                static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
        else if (a == "--prefix" && (v = next()))
            args.prefix = v;
        else if (a == "--frames" && (v = next()))
            args.frames = std::strtoull(v, nullptr, 10);
        else if (a == "--timeout-s" && (v = next()))
            args.timeout_s = std::strtod(v, nullptr);
        else if (a == "--capture" && (v = next()))
            args.capture_path = v;
        else if (a == "--plain")
            args.plain = true;
        else if (v == nullptr && a != "--plain") {
            std::fprintf(stderr, "press_top: unknown flag %s\n", a.c_str());
            return false;
        } else {
            return false;
        }
    }
    return true;
}

double num_or(const Json& obj, const std::string& key, double fallback) {
    if (!obj.is_object() || !obj.contains(key)) return fallback;
    const Json& v = obj.at(key);
    return v.is_number() ? v.as_double() : fallback;
}

/// Counter delta by name from the frame's counters object (0 if absent).
double counter(const Json& frame, const std::string& name) {
    return frame.contains("counters") ? num_or(frame.at("counters"), name, 0.0)
                                      : 0.0;
}

double gauge(const Json& frame, const std::string& name, double fallback) {
    return frame.contains("gauges")
               ? num_or(frame.at("gauges"), name, fallback)
               : fallback;
}

void render(const Json& frame, const std::string& alert, bool plain) {
    if (!plain) std::printf("\x1b[2J\x1b[H");

    const double interval =
        std::max(num_or(frame, "interval_s", 0.0), 1e-9);
    const double served = counter(frame, "service.served");
    const double t_s = num_or(frame, "t_s", 0.0);
    const double revision = num_or(frame, "revision", 0.0);

    std::printf("press_top — t=%.2fs  window=%.2fs  revision=%.0f\n", t_s,
                num_or(frame, "interval_s", 0.0), revision);
    if (!alert.empty()) std::printf("!! %s\n", alert.c_str());

    // Request rate and latency digest.
    double p50 = 0.0, p99 = 0.0, req_count = 0.0;
    if (frame.contains("histograms") &&
        frame.at("histograms").contains("service.request_us")) {
        const Json& digest =
            frame.at("histograms").at("service.request_us");
        p50 = num_or(digest, "p50", 0.0);
        p99 = num_or(digest, "p99", 0.0);
        req_count = num_or(digest, "count", 0.0);
    }
    std::printf("rate     %8.1f req/s   served=%.0f in window (%.0f obs)\n",
                served / interval, served, req_count);
    std::printf("latency  p50=%.0fus  p99=%.0fus\n", p50, p99);

    // Queue and SLO.
    std::printf("queue    depth=%.0f\n",
                num_or(frame, "queue_depth",
                       gauge(frame, "service.queue_depth", 0.0)));
    std::printf("slo      burn=%.2fx  compliance=%.4f  window_req=%.0f  "
                "window_miss=%.0f\n",
                gauge(frame, "service.slo.burn_rate", 0.0),
                gauge(frame, "service.slo.compliance", 1.0),
                gauge(frame, "service.slo.window_requests", 0.0),
                gauge(frame, "service.slo.window_misses", 0.0));
    std::printf("link     worst=%.2f dB\n",
                gauge(frame, "control.multilink.worst_link_db", 0.0));

    // Reject-reason breakdown (window deltas).
    std::printf(
        "rejects  expired=%.0f shed=%.0f queue_full=%.0f backpressure=%.0f "
        "dup=%.0f bad=%.0f\n",
        counter(frame, "service.expired"), counter(frame, "service.shed"),
        counter(frame, "service.queue_full"),
        counter(frame, "service.backpressure"),
        counter(frame, "service.duplicates"),
        counter(frame, "service.bad_requests"));
    std::printf("teleme   sent=%.0f dropped=%.0f taps=%.0f\n",
                counter(frame, "service.telemetry.frames_sent"),
                counter(frame, "service.telemetry.frames_dropped"),
                counter(frame, "service.flight_taps"));

    // Per-session outboxes against the watermark.
    const double watermark = num_or(frame, "outbox_watermark", 0.0);
    if (frame.contains("sessions") && frame.at("sessions").is_object()) {
        std::printf("sessions (outbox / watermark %.0f):\n", watermark);
        for (const auto& [sid, entry] :
             frame.at("sessions").as_object()) {
            const double depth = num_or(entry, "outbox", 0.0);
            const bool sub = entry.is_object() &&
                             entry.contains("subscribed") &&
                             entry.at("subscribed").is_bool() &&
                             entry.at("subscribed").as_bool();
            std::printf("  #%-5s %5.0f%s%s\n", sid.c_str(), depth,
                        sub ? "  [subscriber]" : "",
                        (watermark > 0 && depth >= watermark)
                            ? "  << at watermark"
                            : "");
        }
    }

    // Trace exemplars: the slowest requests of the window, by trace id.
    if (frame.contains("exemplars") && frame.at("exemplars").is_array() &&
        !frame.at("exemplars").as_array().empty()) {
        std::printf("exemplars:\n");
        for (const Json& e : frame.at("exemplars").as_array()) {
            if (!e.is_object()) continue;
            std::printf("  %10.0fus  trace=%s\n", num_or(e, "value_us", 0.0),
                        e.contains("trace_id") && e.at("trace_id").is_string()
                            ? e.at("trace_id").as_string().c_str()
                            : "0x0");
        }
    }
    std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
    Args args;
    if (!parse_args(argc, argv, args)) return 2;

    const int fd = ::socket(AF_UNIX, SOCK_SEQPACKET, 0);
    if (fd < 0) {
        std::perror("press_top: socket");
        return 1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, args.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
        std::perror("press_top: connect");
        ::close(fd);
        return 1;
    }

    std::uint32_t seq = 1;
    {
        press::control::Hello hello;
        const auto frame = encode(Message{hello}, seq++, {});
        (void)::send(fd, frame.data(), frame.size(), 0);
    }
    {
        Subscribe sub;
        sub.prefix = args.prefix;
        sub.interval_us = args.interval_us;
        const auto frame = encode(Message{sub}, seq++, {});
        (void)::send(fd, frame.data(), frame.size(), 0);
    }

    std::vector<std::uint8_t> buffer(64 * 1024);
    std::uint64_t telemetry_frames = 0;
    std::string alert;
    Json::Array captured;
    auto last_frame = std::chrono::steady_clock::now();
    bool timed_out = false;

    while (args.frames == 0 || telemetry_frames < args.frames) {
        pollfd pfd{fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        const auto now = std::chrono::steady_clock::now();
        if (std::chrono::duration<double>(now - last_frame).count() >
            args.timeout_s) {
            std::fprintf(stderr,
                         "press_top: no telemetry for %.1fs, giving up\n",
                         args.timeout_s);
            timed_out = true;
            break;
        }
        if (ready <= 0) continue;
        const ssize_t n = ::recv(fd, buffer.data(), buffer.size(), 0);
        if (n == 0) {
            std::fprintf(stderr, "press_top: daemon closed the session\n");
            break;
        }
        if (n < 0) continue;
        Decoded decoded;
        try {
            decoded = press::control::decode(std::vector<std::uint8_t>(
                buffer.begin(), buffer.begin() + n));
        } catch (const press::control::ProtocolError& e) {
            std::fprintf(stderr, "press_top: bad frame: %s\n", e.what());
            continue;
        }
        if (const auto* telemetry =
                std::get_if<TelemetryFrame>(&decoded.message)) {
            last_frame = now;
            ++telemetry_frames;
            try {
                Json frame = Json::parse(telemetry->payload);
                const std::string violation =
                    press::obs::validate_timeseries(frame);
                if (!violation.empty()) {
                    std::fprintf(stderr,
                                 "press_top: invalid frame: %s\n",
                                 violation.c_str());
                    ::close(fd);
                    return 1;
                }
                render(frame, alert, args.plain);
                if (!args.capture_path.empty())
                    captured.push_back(std::move(frame));
            } catch (const std::exception& e) {
                std::fprintf(stderr, "press_top: unparseable payload: %s\n",
                             e.what());
                ::close(fd);
                return 1;
            }
        } else if (const auto* tap =
                       std::get_if<FlightTap>(&decoded.message)) {
            alert = std::string("flight dump (") +
                    press::control::to_string(
                        static_cast<FlightTapReason>(tap->reason)) +
                    "): " + (tap->path.empty() ? "<write failed>" : tap->path);
            if (args.plain)
                std::printf("!! %s\n", alert.c_str());
        }
        // HelloAck and anything else: informational.
    }
    ::close(fd);

    if (!args.capture_path.empty()) {
        Json doc = Json::object();
        doc["schema"] = "press.timeseries/v1";
        doc["frames"] = Json(std::move(captured));
        std::ofstream out(args.capture_path);
        out << doc.dump() << "\n";
        if (!out) {
            std::fprintf(stderr, "press_top: cannot write %s\n",
                         args.capture_path.c_str());
            return 1;
        }
    }
    if (telemetry_frames == 0) {
        std::fprintf(stderr, "press_top: no telemetry received\n");
        return 1;
    }
    if (args.frames > 0 && (timed_out || telemetry_frames < args.frames))
        return 1;
    std::fprintf(stderr, "press_top: %llu frame(s) received\n",
                 static_cast<unsigned long long>(telemetry_frames));
    return 0;
}
#endif  // _WIN32
